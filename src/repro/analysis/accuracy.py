"""Detection-accuracy evaluation and the Figure 11 parameter sweep."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import PIFTConfig
from repro.android.device import RecordedRun
from repro.analysis.replay import replay


@dataclass(frozen=True)
class AppRun:
    """One app's recorded execution plus its ground truth."""

    name: str
    recorded: RecordedRun
    leaks: bool  # ground truth: does the app actually exfiltrate data?
    category: str = ""


@dataclass
class AccuracyReport:
    """Confusion-matrix accounting over a suite, as the paper reports it."""

    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0
    missed_apps: List[str] = field(default_factory=list)
    false_alarm_apps: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def accuracy(self) -> float:
        """(TP + TN) / total — the paper's headline metric."""
        return (
            (self.true_positives + self.true_negatives) / self.total
            if self.total
            else 0.0
        )

    @property
    def false_positive_rate(self) -> float:
        benign = self.false_positives + self.true_negatives
        return self.false_positives / benign if benign else 0.0

    @property
    def false_negative_rate(self) -> float:
        leaky = self.true_positives + self.false_negatives
        return self.false_negatives / leaky if leaky else 0.0

    def as_dict(self) -> dict:
        """JSON-ready form (the CLI's ``--json`` output)."""
        return {
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "true_negatives": self.true_negatives,
            "false_negatives": self.false_negatives,
            "total": self.total,
            "accuracy": self.accuracy,
            "false_positive_rate": self.false_positive_rate,
            "false_negative_rate": self.false_negative_rate,
            "missed_apps": list(self.missed_apps),
            "false_alarm_apps": list(self.false_alarm_apps),
        }


def evaluate_app(app: AppRun, config: PIFTConfig, telemetry=None) -> bool:
    """Replay one app under ``config``; True when PIFT raises an alarm."""
    return replay(app.recorded, config, telemetry=telemetry).alarm


def evaluate_suite(
    apps: Sequence[AppRun], config: PIFTConfig, telemetry=None
) -> AccuracyReport:
    """Confusion matrix of PIFT verdicts against ground truth."""
    report = AccuracyReport()
    for app in apps:
        predicted = evaluate_app(app, config, telemetry=telemetry)
        if app.leaks and predicted:
            report.true_positives += 1
        elif app.leaks and not predicted:
            report.false_negatives += 1
            report.missed_apps.append(app.name)
        elif not app.leaks and predicted:
            report.false_positives += 1
            report.false_alarm_apps.append(app.name)
        else:
            report.true_negatives += 1
    return report


def sweep(
    apps: Sequence[AppRun],
    window_sizes: Sequence[int] = range(1, 21),
    propagation_caps: Sequence[int] = range(1, 11),
    untainting: bool = True,
) -> "AccuracyGrid":
    """The Figure 11 heatmap: accuracy over NI x NT."""
    grid = np.zeros((len(propagation_caps), len(window_sizes)))
    for row, cap in enumerate(propagation_caps):
        for column, window in enumerate(window_sizes):
            config = PIFTConfig(
                window_size=window, max_propagations=cap, untainting=untainting
            )
            grid[row, column] = evaluate_suite(apps, config).accuracy
    return AccuracyGrid(
        window_sizes=list(window_sizes),
        propagation_caps=list(propagation_caps),
        accuracy=grid,
    )


@dataclass
class AccuracyGrid:
    """Accuracy over the (NI, NT) grid; rows are NT, columns NI."""

    window_sizes: List[int]
    propagation_caps: List[int]
    accuracy: np.ndarray

    def at(self, window_size: int, propagation_cap: int) -> float:
        row = self.propagation_caps.index(propagation_cap)
        column = self.window_sizes.index(window_size)
        return float(self.accuracy[row, column])

    def best(self) -> Tuple[int, int, float]:
        """(NI, NT, accuracy) of the best cell (smallest NI wins ties)."""
        best_value = float(self.accuracy.max())
        for column, window in enumerate(self.window_sizes):
            for row, cap in enumerate(self.propagation_caps):
                if self.accuracy[row, column] == best_value:
                    return window, cap, best_value
        raise RuntimeError("empty grid")

    def render(self) -> str:
        """ASCII heatmap, NT down the side and NI across the top."""
        lines = ["NT\\NI " + " ".join(f"{w:5d}" for w in self.window_sizes)]
        for row, cap in enumerate(self.propagation_caps):
            cells = " ".join(
                f"{self.accuracy[row, column] * 100:5.1f}"
                for column in range(len(self.window_sizes))
            )
            lines.append(f"{cap:5d} {cells}")
        return "\n".join(lines)

"""Detection-accuracy evaluation and the Figure 11 parameter sweep."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import PIFTConfig
from repro.android.device import RecordedRun
from repro.analysis.replay import replay


@dataclass(frozen=True)
class AppRun:
    """One app's recorded execution plus its ground truth."""

    name: str
    recorded: RecordedRun
    leaks: bool  # ground truth: does the app actually exfiltrate data?
    category: str = ""


@dataclass
class AccuracyReport:
    """Confusion-matrix accounting over a suite, as the paper reports it."""

    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0
    missed_apps: List[str] = field(default_factory=list)
    false_alarm_apps: List[str] = field(default_factory=list)

    def record(self, name: str, leaks: bool, predicted: bool) -> None:
        """Classify one app's verdict against its ground truth."""
        if leaks and predicted:
            self.true_positives += 1
        elif leaks and not predicted:
            self.false_negatives += 1
            self.missed_apps.append(name)
        elif not leaks and predicted:
            self.false_positives += 1
            self.false_alarm_apps.append(name)
        else:
            self.true_negatives += 1

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def accuracy(self) -> float:
        """(TP + TN) / total — the paper's headline metric."""
        return (
            (self.true_positives + self.true_negatives) / self.total
            if self.total
            else 0.0
        )

    @property
    def false_positive_rate(self) -> float:
        benign = self.false_positives + self.true_negatives
        return self.false_positives / benign if benign else 0.0

    @property
    def false_negative_rate(self) -> float:
        leaky = self.true_positives + self.false_negatives
        return self.false_negatives / leaky if leaky else 0.0

    def as_dict(self) -> dict:
        """JSON-ready form (the CLI's ``--json`` output)."""
        return {
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "true_negatives": self.true_negatives,
            "false_negatives": self.false_negatives,
            "total": self.total,
            "accuracy": self.accuracy,
            "false_positive_rate": self.false_positive_rate,
            "false_negative_rate": self.false_negative_rate,
            "missed_apps": list(self.missed_apps),
            "false_alarm_apps": list(self.false_alarm_apps),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AccuracyReport":
        """Inverse of :meth:`as_dict` (derived rates are recomputed)."""
        return cls(
            true_positives=payload["true_positives"],
            false_positives=payload["false_positives"],
            true_negatives=payload["true_negatives"],
            false_negatives=payload["false_negatives"],
            missed_apps=list(payload.get("missed_apps", ())),
            false_alarm_apps=list(payload.get("false_alarm_apps", ())),
        )


def evaluate_app(app: AppRun, config: PIFTConfig, telemetry=None) -> bool:
    """Replay one app under ``config``; True when PIFT raises an alarm."""
    return replay(app.recorded, config, telemetry=telemetry).alarm


def evaluate_suite(
    apps: Sequence[AppRun], config: PIFTConfig, telemetry=None
) -> AccuracyReport:
    """Confusion matrix of PIFT verdicts against ground truth."""
    report = AccuracyReport()
    for app in apps:
        report.record(
            app.name, app.leaks, evaluate_app(app, config, telemetry=telemetry)
        )
    return report


def sweep(
    apps: Sequence[AppRun],
    window_sizes: Sequence[int] = range(1, 21),
    propagation_caps: Sequence[int] = range(1, 11),
    untainting: bool = True,
    jobs: int = 1,
    telemetry=None,
    progress=None,
) -> "AccuracyGrid":
    """The Figure 11 heatmap: accuracy over NI x NT.

    Runs on the :mod:`repro.sweep` engine: the grid is expanded to cells
    and evaluated inline (``jobs=1``) or across a worker pool — with
    identical accuracies either way, since every cell replays the same
    recorded runs.
    """
    from repro.sweep import GridSpec, TraceCache, run_sweep

    spec = GridSpec(
        window_sizes=tuple(window_sizes),
        propagation_caps=tuple(propagation_caps),
        untainting=untainting,
    )
    result = run_sweep(
        spec,
        cache=TraceCache(droidbench=list(apps)),
        jobs=jobs,
        telemetry=telemetry,
        progress=progress,
    )
    grid = np.zeros((len(propagation_caps), len(window_sizes)))
    for cell in result.cells:
        grid.flat[cell.index] = cell.accuracy
    return AccuracyGrid(
        window_sizes=list(window_sizes),
        propagation_caps=list(propagation_caps),
        accuracy=grid,
    )


@dataclass
class AccuracyGrid:
    """Accuracy over the (NI, NT) grid; rows are NT, columns NI."""

    window_sizes: List[int]
    propagation_caps: List[int]
    accuracy: np.ndarray

    def at(self, window_size: int, propagation_cap: int) -> float:
        row = self.propagation_caps.index(propagation_cap)
        column = self.window_sizes.index(window_size)
        return float(self.accuracy[row, column])

    def best(self) -> Tuple[int, int, float]:
        """(NI, NT, accuracy) of the best cell (smallest NI wins ties)."""
        best_value = float(self.accuracy.max())
        for column, window in enumerate(self.window_sizes):
            for row, cap in enumerate(self.propagation_caps):
                if self.accuracy[row, column] == best_value:
                    return window, cap, best_value
        raise RuntimeError("empty grid")

    def render(self) -> str:
        """ASCII heatmap, NT down the side and NI across the top."""
        lines = ["NT\\NI " + " ".join(f"{w:5d}" for w in self.window_sizes)]
        for row, cap in enumerate(self.propagation_caps):
            cells = " ".join(
                f"{self.accuracy[row, column] * 100:5.1f}"
                for column in range(len(self.window_sizes))
            )
            lines.append(f"{cap:5d} {cells}")
        return "\n".join(lines)

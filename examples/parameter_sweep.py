#!/usr/bin/env python3
"""Parameter sweep: regenerate the paper's Figure 11 accuracy heatmap.

Records each of the 57 DroidBench-style apps once, then replays every
trace under all 200 (NI, NT) combinations — the same trace-then-analyze
methodology the paper uses with gem5.

Run:  python examples/parameter_sweep.py
"""

import time

from repro.core import PAPER_DEFAULT, PAPER_PERFECT
from repro.analysis.accuracy import evaluate_suite, sweep
from repro.apps.droidbench import record_suite


def main() -> None:
    started = time.time()
    print("recording the 57-app suite ...")
    runs = record_suite()
    print(f"  done in {time.time() - started:.1f}s "
          f"({sum(len(r.recorded.trace) for r in runs)} memory events total)")

    started = time.time()
    print("\nsweeping NI in [1, 20] x NT in [1, 10] ...")
    grid = sweep(runs)
    print(f"  done in {time.time() - started:.1f}s\n")

    print("Figure 11 — accuracy (%) over NI (columns) x NT (rows):")
    print(grid.render())

    default = evaluate_suite(runs, PAPER_DEFAULT)
    perfect = evaluate_suite(runs, PAPER_PERFECT)
    print(
        f"\nat {PAPER_DEFAULT}: accuracy {default.accuracy * 100:.1f}% "
        f"(FP {default.false_positives}/16, FN {default.false_negatives}/41)"
    )
    if default.missed_apps:
        print(f"  the one miss: {default.missed_apps[0]} "
              "(obfuscated flow through the division helper)")
    print(
        f"at {PAPER_PERFECT}: accuracy {perfect.accuracy * 100:.1f}%"
    )
    window, cap, best = grid.best()
    print(f"first 100% cell (smallest NI): NI={window}, NT={cap}")
    print("\npaper: 98% at (13, 3) — 0% FP, 2% FN; 100% at (18, 3).")


if __name__ == "__main__":
    main()

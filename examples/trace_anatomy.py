#!/usr/bin/env python3
"""Trace anatomy: why predictive tracking works (paper §2 and §5.2).

Records the LGRoot malware execution, prints the Figure 2 distance
statistics that motivate the tainting-window design, then replays the
trace under several window settings to show the taint-state overheads of
Figures 14-19 — including the effect of switching untainting off.

Run:  python examples/trace_anatomy.py
"""

from repro.core import PIFTConfig
from repro.analysis.distances import (
    Distribution,
    load_to_load_distances,
    store_to_last_load_distances,
    stores_between_loads,
)
from repro.analysis.overhead import untainting_effect
from repro.apps.malware import record_lgroot_trace


def main() -> None:
    print("recording the LGRoot trace ...")
    recorded = record_lgroot_trace(work=160)
    trace = recorded.trace
    print(
        f"  {recorded.instruction_count} instructions, "
        f"{trace.load_count} loads, {trace.store_count} stores\n"
    )

    store_distances = Distribution.from_samples(
        store_to_last_load_distances(trace), max_value=30
    )
    print("Figure 2a — distance from each store back to the last load:")
    print(f"  mode = {store_distances.mode()}, "
          f"P(d <= 5) = {store_distances.probability_at_most(5):.3f}, "
          f"P(d <= 10) = {store_distances.probability_at_most(10):.3f}")
    print("  -> stores follow their loads closely: a small tainting window "
          "sees them.")

    between = Distribution.from_samples(stores_between_loads(trace), max_value=10)
    print("\nFigure 2b — stores between consecutive loads:")
    print(f"  P(count <= 2) = {between.probability_at_most(2):.3f}")
    print("  -> few candidate stores per window: over-tainting stays bounded.")

    gaps = load_to_load_distances(trace)
    print("\nFigure 2c — distance between consecutive loads:")
    print(f"  mean gap = {sum(gaps) / len(gaps):.2f} instructions")
    print("  -> loads pace the whole execution: windows keep re-anchoring.")

    print("\nFigures 18/19 — what untainting buys (NT = 3):")
    print(f"  {'NI':>4} {'tainted bytes':>16} {'distinct ranges':>18}")
    for effect in untainting_effect(
        recorded, [PIFTConfig(ni, 3) for ni in (5, 10, 15, 20)]
    ):
        print(
            f"  {effect.config.window_size:>4} "
            f"{effect.max_tainted_bytes_with:>7} vs {effect.max_tainted_bytes_without:<7}"
            f"{effect.max_ranges_with:>9} vs {effect.max_ranges_without:<9}"
            f"  (with vs without untainting)"
        )
    print(
        "\n  -> untainting reclaims mistainted stack/staging memory; the "
        "effect\n     concentrates at small windows, exactly as in the paper."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Forensics: who leaked what, and what does off-critical-path cost?

Two library extensions built on the paper's machinery:

1. **Provenance** — one Algorithm-1 instance per source label (the
   multi-bit-tag idea of the paper's §6 relatives) attributes each
   malware sample's leak to the exact sources it stole.
2. **Buffered tracking** — the paper's §1 aside: buffering the load/store
   stream moves PIFT off the critical path "while trading prevention for
   detection".  The demo shows the same leak caught synchronously with a
   blocking sink check, and caught *late* with an immediate one.

Run:  python examples/forensics_report.py
"""

from repro.core import PAPER_DEFAULT
from repro.core.buffered import BufferedPIFT
from repro.analysis.replay import replay_with_provenance
from repro.apps.malware import SAMPLES, run_sample


def provenance_section() -> None:
    print("1. per-source attribution (NI=13, NT=3)")
    print(f"   {'sample':<13}{'declared':<42}attributed by PIFT")
    for sample in SAMPLES:
        device = run_sample(sample, PAPER_DEFAULT, work=8)
        outcomes = replay_with_provenance(device.recorded, PAPER_DEFAULT)
        leaked = sorted(set().union(*outcomes.values())) if outcomes else []
        short = [name.split(".")[-1] for name in leaked]
        print(f"   {sample.name:<13}{','.join(sample.steals):<42}"
              f"{', '.join(short)}")


def buffering_section() -> None:
    print("\n2. off-critical-path tracking (LGRoot, 512-entry FIFO)")
    sample = SAMPLES[0]
    device = run_sample(sample, PAPER_DEFAULT, work=48)
    recorded = device.recorded

    for mode in ("blocking", "immediate"):
        buffered = BufferedPIFT(
            PAPER_DEFAULT,
            capacity=512 if mode == "blocking" else 1_000_000,
            drain_batch=128,
        )
        sources = sorted(recorded.sources, key=lambda s: s.instruction_index)
        checks = sorted(recorded.sink_checks, key=lambda c: c.instruction_index)
        source_i = check_i = 0
        verdicts = []
        for event in recorded.trace:
            while (source_i < len(sources)
                   and sources[source_i].instruction_index
                   <= event.instruction_index):
                buffered.taint_source(sources[source_i].address_range)
                source_i += 1
            while (check_i < len(checks)
                   and checks[check_i].instruction_index
                   <= event.instruction_index):
                check = checks[check_i]
                if mode == "blocking":
                    verdicts.append(
                        buffered.check_blocking(check.address_range))
                else:
                    verdicts.append(buffered.check_immediate(
                        check.address_range, sink_name=check.sink_name))
                check_i += 1
            buffered.on_memory_event(event)
        buffered.drain_all()
        stats = buffered.stats
        if mode == "blocking":
            print(f"   blocking check : leak flagged at the sink = "
                  f"{any(verdicts)} (prevention); the check waited for "
                  f"{stats.blocking_drain_events} buffered events")
        else:
            print(f"   immediate check: leak flagged at the sink = "
                  f"{any(verdicts)}; late detections = "
                  f"{stats.stale_negatives} (detection, not prevention)")
            for late in buffered.late_detections:
                print(f"     -> {late.sink_name} surfaced "
                      f"{late.events_behind} memory events after the send")


def main() -> None:
    provenance_section()
    buffering_section()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: catch a data leak with PIFT.

Builds a tiny spy app for the simulated Android device — it reads the
device ID (IMEI), embeds it in a message, and texts it out — then shows
PIFT flagging the sink while only watching memory loads and stores.

Run:  python examples/quickstart.py
"""

from repro.android import AndroidDevice
from repro.core import PAPER_DEFAULT
from repro.dalvik import MethodBuilder


def build_spy_app(builder: MethodBuilder) -> MethodBuilder:
    """The equivalent Java:

        String id = telephonyManager.getDeviceId();        // source
        String msg = new StringBuilder("stolen id: ")
                         .append(id).toString();
        smsManager.sendTextMessage("+15558675309", null, msg);  // sink
    """
    builder.invoke_static("TelephonyManager.getDeviceId")
    builder.move_result_object(0)
    builder.new_instance(1, "java/lang/StringBuilder")
    builder.invoke_direct("StringBuilder.<init>", 1)
    builder.const_string(2, "stolen id: ")
    builder.invoke("StringBuilder.append", 1, 2)
    builder.invoke("StringBuilder.append", 1, 0)
    builder.invoke("StringBuilder.toString", 1)
    builder.move_result_object(3)
    builder.const_string(4, "+15558675309")
    builder.const(5, 0)
    builder.invoke("SmsManager.sendTextMessage", 4, 5, 3)
    builder.return_void()
    return builder


def main() -> None:
    device = AndroidDevice(config=PAPER_DEFAULT)  # NI=13, NT=3, untainting
    print(f"device up, PIFT configured as {device.config}")
    print(f"device secrets: IMEI={device.secrets.imei}")

    device.install([build_spy_app(MethodBuilder("Spy.main", registers=8)).build()])
    device.run("Spy.main")

    print("\nsink activity:")
    for event in device.sinks:
        flag = "LEAK DETECTED" if event.pift_alarm else "clean"
        print(f"  [{event.channel}] -> {event.destination}: "
              f"{event.payload!r}  ({flag})")

    stats = device.stats
    print(
        f"\nPIFT work done: {stats.loads_observed} loads and "
        f"{stats.stores_observed} stores observed over "
        f"{device.cpu.instruction_count()} instructions;\n"
        f"{stats.taint_operations} taint + {stats.untaint_operations} "
        f"untaint operations; peak taint state "
        f"{stats.max_tainted_bytes} bytes in {stats.max_range_count} ranges."
    )
    assert device.leak_detected
    print("\nquickstart OK: the leak was caught watching only loads/stores.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Compiler hardening: defeating the paper's §4.2 evasion with its §7 idea.

The paper's stated limitation: native code can stretch the distance
between a sensitive load and its store past any reasonable tainting
window.  Its proposed future work: a compiler that relocates unrelated
instructions out of the gap.  This example shows both — the attack
working, and the implemented scheduling pass neutralising it.

Run:  python examples/compiler_hardening.py
"""

from repro.core import MemoryAccess, PIFTConfig, PIFTTracker
from repro.core.ranges import AddressRange
from repro.isa import asm
from repro.isa.cpu import CPU
from repro.isa.scheduler import load_store_distances, tighten_load_store

IMEI = "356938035643809"
SRC_BASE, DST_BASE = 0x1000, 0x2000


def evasion_copy(dummy_instructions: int):
    """JNI-style malicious copy: per character, a tainted load, a dummy
    computation block, then the real store (the paper's §4.2 listing)."""
    program = []
    for i in range(len(IMEI)):
        program.append(asm.patch("r1", SRC_BASE + 2 * i, mnemonic="add"))
        program.append(asm.ldrh("r0", "r1"))  # load IMEI char (tainted)
        for _ in range(dummy_instructions):  # dummy computations
            program.append(asm.add("r2", "r2", 1))
        program.append(asm.patch("r3", DST_BASE + 2 * i, mnemonic="add"))
        program.append(asm.strh("r0", "r3"))  # store it elsewhere
    return program


def run_under_pift(program):
    cpu = CPU()
    tracker = PIFTTracker(PIFTConfig(13, 3))
    tracker.taint_source(AddressRange.from_base_size(SRC_BASE, 2 * len(IMEI)))
    cpu.add_observer(
        lambda record, index, pid: tracker.observe(
            MemoryAccess(record.kind, record.address_range, index, pid)
        )
        if record.is_memory
        else None
    )
    for i, char in enumerate(IMEI):  # place the secret
        cpu.address_space.memory.write_u16(SRC_BASE + 2 * i, ord(char))
    cpu.run(program)
    stolen = bytes(
        cpu.address_space.memory.read_bytes(DST_BASE, 2 * len(IMEI))
    ).decode("utf-16-le")
    caught = tracker.check(AddressRange.from_base_size(DST_BASE, 2 * len(IMEI)))
    return stolen, caught


def main() -> None:
    attack = evasion_copy(dummy_instructions=50)
    distances = load_store_distances(attack)
    print(f"attack program: {len(attack)} instructions, "
          f"load->store distance {max(distances)}")
    stolen, caught = run_under_pift(attack)
    print(f"  data exfiltrated: {stolen == IMEI}; "
          f"PIFT (NI=13) caught it: {caught}")
    assert stolen == IMEI and not caught  # the §4.2 evasion works

    hardened = tighten_load_store(attack)
    distances = load_store_distances(hardened)
    print(f"\nafter the PIFT-aware scheduling pass: "
          f"max load->store distance {max(distances)}")
    stolen, caught = run_under_pift(hardened)
    print(f"  data exfiltrated: {stolen == IMEI}; "
          f"PIFT (NI=13) caught it: {caught}")
    assert stolen == IMEI and caught  # same computation, now visible

    print("\nthe compiler pass preserved the program's behaviour and "
          "collapsed the gap\nthe attacker relied on — the paper's §7 "
          "countermeasure, working.")


if __name__ == "__main__":
    main()

"""Table 1 — native load->store distances within Dalvik bytecodes.

Regenerates the paper's bucket table (distances 1, 2, 3, 4, 5, 6, 9-12,
Unknown) by measuring the translator's actual mterp routines, and checks
the published counts/examples line up.
"""

from repro.dalvik.bytecode import OPCODES, opcode
from repro.analysis.bytecode_stats import (
    load_store_distance_table,
    render_table1,
    routine_for,
)


def test_table1_regeneration(benchmark):
    rows = benchmark(load_store_distance_table, 6)
    print("\n" + render_table1(rows))
    by_label = {row.label: row for row in rows}
    # Paper Table 1 anchor points.
    assert by_label["1"].count == 3  # return, return-wide, return-object
    assert set(by_label["1"].examples) == {
        "return", "return-wide", "return-object"
    }
    assert by_label["Unknown"].count == 47
    assert by_label["2"].count >= 10  # the big move/aget/aput/sput bucket
    benchmark.extra_info["buckets"] = {
        row.label: row.count for row in rows
    }


def test_every_routine_measures_to_its_table_value(benchmark):
    """Benchmark translating the full instruction set; assert agreement."""

    def translate_all():
        measured = {}
        for info in OPCODES:
            if not info.moves_data:
                continue
            routine = routine_for(info)
            measured[info.name] = (
                routine.load_store_distance if routine else None
            )
        return measured

    measured = benchmark(translate_all)
    for info in OPCODES:
        if not info.moves_data:
            continue
        if info.load_store_distance is not None:
            assert measured[info.name] == info.load_store_distance, info.name


def test_paper_examples_in_right_buckets(benchmark):
    expected_rows = {
        1: ["return", "return-wide", "return-object"],
        2: ["move-result", "move/16", "aget", "aput", "sput", "iput-quick"],
        3: ["move-object", "sget-object", "long-to-int", "sget"],
        4: ["iput", "iget-quick", "neg-double"],
        5: ["iget", "iget-object", "int-to-long", "add-int/lit8"],
        6: ["int-to-char", "sub-long", "shl-int/lit8", "iget-volatile"],
    }

    def check():
        mismatches = []
        for distance, names in expected_rows.items():
            for name in names:
                if opcode(name).load_store_distance != distance:
                    mismatches.append(name)
        return mismatches

    mismatches = benchmark(check)
    assert not mismatches
    long_bucket = [
        "mul-long/2addr", "aput-object", "mul-long", "shr-long"
    ]
    for name in long_bucket:
        assert 9 <= opcode(name).load_store_distance <= 12, name
    for name in ["double-to-int", "rem-float", "div-int/lit16"]:
        assert opcode(name).load_store_distance is None, name

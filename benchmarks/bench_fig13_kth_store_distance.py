"""Figure 13 — average distance to the 1st/2nd/3rd store inside windows of
NI = 5, 10, 15, 20 (LGRoot).

Reproduced observation: "the stores are in close proximity of loads, and
as a result, we can taint all the three stores after a load without taint
explosion."
"""

import math

from repro.analysis.distances import mean_kth_store_distances

WINDOW_SIZES = (5, 10, 15, 20)


def test_fig13_kth_store_distances(benchmark, lgroot_trace):
    means = benchmark.pedantic(
        mean_kth_store_distances,
        args=(lgroot_trace.trace, WINDOW_SIZES, 3),
        rounds=1,
        iterations=1,
    )
    print("\nFigure 13: mean distance to the k-th store in the window")
    print(f"{'NI':>5} {'1st':>8} {'2nd':>8} {'3rd':>8}")
    for window in WINDOW_SIZES:
        first, second, third = means[window]
        print(f"{window:>5} {first:>8.2f} {second:>8.2f} {third:>8.2f}")
    for window in WINDOW_SIZES:
        first, second, third = means[window]
        # Ordering (with tolerance: the k-th means average over different
        # load populations, so strict ordering of means need not hold).
        if not math.isnan(second):
            assert second >= first - 1.0
        if not math.isnan(third):
            assert third >= second - 1.0
        # Proximity: the first store sits within a few instructions.
        assert first <= 6.0
        # All stores stay inside the window by construction.
        assert all(
            value <= window for value in (first, second, third)
            if not math.isnan(value)
        )
    benchmark.extra_info["ni20_means"] = [
        round(v, 2) for v in means[20] if not math.isnan(v)
    ]


def test_fig13_first_store_stable_across_windows(benchmark, lgroot_trace):
    """Growing the window does not move the first store: it was already
    near the load (the Figure 13 bars' flat first series)."""
    means = benchmark.pedantic(
        mean_kth_store_distances,
        args=(lgroot_trace.trace, WINDOW_SIZES, 1),
        rounds=1,
        iterations=1,
    )
    firsts = [means[w][0] for w in WINDOW_SIZES]
    assert max(firsts) - min(firsts) < 3.0

"""Dense-regime replay benchmark — the kernel's former blind spot.

The PR-4 kernel classified blocks in numpy but executed every relevant
event in the scalar loop, so taint-dense traces sat at ~1.0x.  The dense
executor runs Algorithm 1's window evolution and range-set commits in
numpy; this benchmark measures the two claims that protect it:

1. **Dense speedup** — a taint-dense replay (most events are in-window
   stores into already-tainted memory, the malware-payload shape) across
   a small ``(NI, NT)`` grid must beat the scalar loop >= 5x with
   bit-identical results (``dense_vectorized_speedup``, regression-gated
   against ``BENCH_history.jsonl``).
2. **Bail-out recovery** — a dense-prefix/sparse-tail trace (taint churn
   that defeats the dense executor, then a long mostly-untainted tail)
   must recover the sparse fast path after the bounded density bail-out
   re-probes (``dense_prefix_recovery``); the pre-fix one-way bail-out
   pinned this at ~1.0x by handing the whole remainder to the scalar
   loop.

Runnable two ways:

* under pytest-benchmark (tier-2): ``pytest benchmarks/bench_dense_replay.py``
* standalone: ``PYTHONPATH=src python benchmarks/bench_dense_replay.py
  [--smoke] [--json BENCH_dense.json] [--history BENCH_history.jsonl]
  [--gate]`` — the CI dense-smoke job runs ``--smoke --gate``.  The gate
  compares the *dimensionless* dense speedup ratio against the history
  median, so it is robust to CI machines of different speeds.
"""

import argparse
import json
import random
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro import perf
from repro.core import PIFTConfig

#: --gate fails when the dense speedup drops below
#: ``(1 - REGRESSION_TOLERANCE)`` times the history baseline.
REGRESSION_TOLERANCE = perf.REGRESSION_TOLERANCE

#: The history-record key this benchmark gates on.
GATE_METRIC = "dense_vectorized_speedup"

#: Hard floors asserted regardless of history (the acceptance criteria).
DENSE_SPEEDUP_FLOOR = 5.0
RECOVERY_FLOOR = 2.0

#: The dense sweep cells: caps >= 3 so the three in-window stores per
#: tainted load all propagate (the taint-dense regime), windows spanning
#: the paper's Figure 14-17 range.
DENSE_CELLS = ((13, 3), (13, 6), (21, 3), (34, 6))

SOURCE_LO, SOURCE_HI = 0, 4_095
SCRATCH_LO, SCRATCH_HI = 8_192, 73_727


def dense_recorded_run(events: int = 120_000, seed: int = 2026):
    """A taint-dense recorded run: Algorithm 1 fires on almost every event.

    A payload loop reads the tainted source and immediately writes into a
    tainted working buffer — every load opens a window, every store is an
    in-window propagation into already-tainted memory.  This is the dense
    half of the sweep grid (and the regime hardware DIFT offload engines
    are built for): nothing is skippable, so the pre-filter alone gains
    nothing and vectorised *execution* has to carry the speedup.
    """
    from repro.android.device import (
        RecordedRun, SinkCheck, SourceRegistration,
    )
    from repro.core.events import load, store
    from repro.core.ranges import AddressRange

    rng = random.Random(seed)
    run = RecordedRun()
    run.sources.append(
        SourceRegistration(AddressRange(SOURCE_LO, SOURCE_HI), 0, "imei")
    )
    run.sources.append(
        SourceRegistration(AddressRange(SCRATCH_LO, SCRATCH_HI), 0, "buffer")
    )
    index = 0
    for i in range(events):
        index += 1
        phase = i % 4
        if phase == 0:
            a = SOURCE_LO + rng.randrange(0, SOURCE_HI - SOURCE_LO - 8)
            run.trace.append(load(a, a + 3, index))
        else:
            a = SCRATCH_LO + rng.randrange(0, SCRATCH_HI - SCRATCH_LO - 8)
            run.trace.append(store(a, a + 7, index))
    run.trace.note_instruction(index + 1)
    run.sink_checks.append(
        SinkCheck(
            AddressRange(SCRATCH_LO, SCRATCH_LO + 63),
            index + 1, "network", "socket",
        )
    )
    return run


def dense_prefix_sparse_tail_run(
    prefix: int = 8_000, tail: int = 400_000, seed: int = 7
):
    """Taint/untaint churn prefix, then a long mostly-untainted tail.

    The prefix alternates fresh-range taints with overlapping untaints,
    so every store is a content mutation — the dense executor's mutation
    budget trips and the density bail-out engages.  The tail is the
    sparse regime the kernel earns ~90x on; recovering it after the
    prefix is exactly what the bounded re-probe exists for.
    """
    from repro.android.device import (
        RecordedRun, SinkCheck, SourceRegistration,
    )
    from repro.core.events import load, store
    from repro.core.ranges import AddressRange

    rng = random.Random(seed)
    run = RecordedRun()
    run.sources.append(
        SourceRegistration(AddressRange(SOURCE_LO, SOURCE_HI), 0, "imei")
    )
    index = 0
    for i in range(prefix):
        index += 1
        phase = i % 3
        if phase == 0:
            run.trace.append(load(SOURCE_LO, SOURCE_LO + 3, index))
        elif phase == 1:
            a = 100_000 + i * 16
            run.trace.append(store(a, a + 3, index))
        else:
            a = 100_000 + (i - 1) * 16
            run.trace.append(store(a, a + 3, index))
    for _ in range(tail):
        index += rng.randint(1, 3)
        a = 10_000_000 + rng.randrange(0, 1_000_000)
        maker = load if rng.random() < 0.5 else store
        run.trace.append(maker(a, a + 3, index))
    run.trace.note_instruction(index + 1)
    run.sink_checks.append(
        SinkCheck(
            AddressRange(SOURCE_LO, SOURCE_LO + 63),
            index + 1, "network", "socket",
        )
    )
    return run


def _replay_fingerprint(result) -> str:
    return json.dumps(
        {
            "stats": result.stats.as_dict(),
            "verdicts": [
                (o.sink_name, o.channel, o.instruction_index, o.pid,
                 o.tainted)
                for o in result.sink_outcomes
            ],
        },
        sort_keys=True,
    )


def measure_dense(events: int = 120_000, rounds: int = 3) -> dict:
    """Dense replay across DENSE_CELLS, scalar vs vectorised."""
    from repro.analysis.replay import replay

    recorded = dense_recorded_run(events=events)
    recorded.trace.columns().arrays()  # warm the shared one-time caches
    cells = []
    scalar_total = 0.0
    vector_total = 0.0
    identical = True
    for window_size, cap in DENSE_CELLS:
        timings = {}
        fingerprints = {}
        for vectorized in (False, True):
            config = PIFTConfig(window_size, cap, vectorized=vectorized)
            best = float("inf")
            for _ in range(rounds):
                started = time.perf_counter()
                result = replay(recorded, config)
                best = min(best, time.perf_counter() - started)
            timings[vectorized] = best
            fingerprints[vectorized] = _replay_fingerprint(result)
        cell_identical = fingerprints[True] == fingerprints[False]
        identical = identical and cell_identical
        scalar_total += timings[False]
        vector_total += timings[True]
        cells.append({
            "window_size": window_size,
            "max_propagations": cap,
            "scalar_seconds": timings[False],
            "vectorized_seconds": timings[True],
            "speedup": timings[False] / timings[True],
            "identical": cell_identical,
        })
    return {
        "events": len(recorded.trace),
        "cells": cells,
        "scalar_seconds": scalar_total,
        "vectorized_seconds": vector_total,
        "speedup": scalar_total / vector_total if vector_total else 0.0,
        "identical": identical,
    }


def measure_recovery(
    prefix: int = 8_000, tail: int = 400_000, rounds: int = 3
) -> dict:
    """Dense-prefix/sparse-tail replay, scalar vs vectorised."""
    from repro.analysis.replay import replay

    recorded = dense_prefix_sparse_tail_run(prefix=prefix, tail=tail)
    recorded.trace.columns().arrays()
    config = PIFTConfig(50, 1)
    timings = {}
    fingerprints = {}
    for vectorized in (False, True):
        cell = replace(config, vectorized=vectorized)
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            result = replay(recorded, cell)
            best = min(best, time.perf_counter() - started)
        timings[vectorized] = best
        fingerprints[vectorized] = _replay_fingerprint(result)
    return {
        "prefix_events": prefix,
        "tail_events": tail,
        "scalar_seconds": timings[False],
        "vectorized_seconds": timings[True],
        "speedup": timings[False] / timings[True] if timings[True] else 0.0,
        "identical": fingerprints[True] == fingerprints[False],
    }


# -- pytest-benchmark entry points ------------------------------------------


def test_dense_replay_speedup(benchmark):
    """The dense executor must beat the scalar loop >= 5x on taint-dense
    replays with bit-identical observable results."""
    from repro.analysis.replay import replay

    recorded = dense_recorded_run(events=80_000)
    recorded.trace.columns().arrays()
    scalar_config = PIFTConfig(13, 3, vectorized=False)
    vector_config = replace(scalar_config, vectorized=True)
    started = time.perf_counter()
    scalar_result = replay(recorded, scalar_config)
    scalar_seconds = time.perf_counter() - started
    vector_result = benchmark.pedantic(
        lambda: replay(recorded, vector_config), rounds=3, iterations=1
    )
    assert _replay_fingerprint(vector_result) == _replay_fingerprint(
        scalar_result
    )
    vector_seconds = benchmark.stats.stats.mean
    speedup = scalar_seconds / vector_seconds
    print(f"\ndense executor: {scalar_seconds:.3f}s scalar vs "
          f"{vector_seconds:.3f}s vectorized ({speedup:.1f}x)")
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= DENSE_SPEEDUP_FLOOR


def test_dense_prefix_recovery(benchmark):
    """After the churn prefix forces the density bail-out, the bounded
    re-probe must recover the sparse fast path on the tail."""
    from repro.analysis.replay import replay

    recorded = dense_prefix_sparse_tail_run(prefix=6_000, tail=200_000)
    recorded.trace.columns().arrays()
    scalar_config = PIFTConfig(50, 1, vectorized=False)
    vector_config = replace(scalar_config, vectorized=True)
    started = time.perf_counter()
    scalar_result = replay(recorded, scalar_config)
    scalar_seconds = time.perf_counter() - started
    vector_result = benchmark.pedantic(
        lambda: replay(recorded, vector_config), rounds=3, iterations=1
    )
    assert _replay_fingerprint(vector_result) == _replay_fingerprint(
        scalar_result
    )
    speedup = scalar_seconds / benchmark.stats.stats.mean
    print(f"\ndense-prefix recovery: {speedup:.1f}x")
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= RECOVERY_FLOOR


# -- standalone mode ---------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="PIFT dense-regime replay benchmark (standalone mode)"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="reduced event counts for CI")
    parser.add_argument("--json", metavar="PATH", default="BENCH_dense.json",
                        help="write results here (default BENCH_dense.json)")
    parser.add_argument("--history", metavar="PATH",
                        default="BENCH_history.jsonl",
                        help="append one summary line per run here "
                             "(default BENCH_history.jsonl)")
    parser.add_argument("--gate", action="store_true",
                        help="fail if the dense speedup regressed "
                             f">{REGRESSION_TOLERANCE:.0%} vs the history "
                             "baseline (median of prior runs)")
    args = parser.parse_args(argv)

    if args.smoke:
        dense = measure_dense(events=80_000)
        recovery = measure_recovery(prefix=6_000, tail=200_000)
    else:
        dense = measure_dense(events=160_000)
        recovery = measure_recovery(prefix=8_000, tail=400_000)
    print(
        f"dense replay: {dense['speedup']:.1f}x over scalar across "
        f"{len(dense['cells'])} cells x {dense['events']} events "
        f"(identical={dense['identical']})",
        file=sys.stderr,
    )
    print(
        f"dense-prefix recovery: {recovery['speedup']:.1f}x "
        f"(identical={recovery['identical']})",
        file=sys.stderr,
    )
    payload = {
        "mode": "smoke" if args.smoke else "full",
        "dense": dense,
        "recovery": recovery,
    }
    print(json.dumps(payload, indent=2))
    with open(args.json, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)

    history_path = Path(args.history)
    history = perf.load_history(history_path, GATE_METRIC)
    gate_ok, baseline = perf.check_regression(
        history, dense["speedup"], GATE_METRIC
    )
    perf.append_history(history_path, {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": payload["mode"],
        "dense_vectorized_speedup": dense["speedup"],
        "dense_events": dense["events"],
        "dense_prefix_recovery": recovery["speedup"],
        "identical": dense["identical"] and recovery["identical"],
    })
    if baseline is not None:
        print(
            f"regression gate: current {dense['speedup']:.1f}x vs "
            f"baseline {baseline:.1f}x (median of {len(history)} runs) "
            f"-> {'ok' if gate_ok else 'REGRESSED'}",
            file=sys.stderr,
        )

    ok = dense["identical"] and recovery["identical"]
    ok = ok and dense["speedup"] >= DENSE_SPEEDUP_FLOOR
    ok = ok and recovery["speedup"] >= RECOVERY_FLOOR
    if args.gate:
        ok = ok and gate_ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

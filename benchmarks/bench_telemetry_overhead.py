"""Telemetry overhead on the tracker hot path — off vs metrics vs logging.

The telemetry design promise is graded cost:

* **off** (the default) — the tracker's ``observe`` is the untouched
  Algorithm-1 method; telemetry must cost nothing,
* **metrics-only** — counters and gauges update in-process but no events
  are serialized,
* **full logging** — every taint-state mutation is also JSON-encoded
  into the JSONL event stream (here an in-memory buffer, so the numbers
  isolate encoding cost from disk).

Each benchmark reports its sustained event rate; the summary test
consolidates all three into one JSON blob (``extra_info``) for the
acceptance check and for regression tracking across PRs.
"""

import io
import time

import pytest

from repro.core import PAPER_DEFAULT, PIFTTracker
from repro.telemetry import Telemetry, TelemetryWriter


@pytest.fixture(scope="module")
def event_stream(lgroot_trace):
    return list(lgroot_trace.trace)


@pytest.fixture(scope="module")
def source_ranges(lgroot_trace):
    return [source.address_range for source in lgroot_trace.sources]


def _run(events, sources, telemetry=None):
    tracker = PIFTTracker(PAPER_DEFAULT, telemetry=telemetry)
    for source in sources:
        tracker.taint_source(source)
    tracker.run(events)
    return tracker


def _telemetry_metrics_only():
    return Telemetry().preregister_standard()


def _telemetry_full_logging():
    return Telemetry(
        writer=TelemetryWriter(io.StringIO())
    ).preregister_standard()


def test_overhead_telemetry_off(benchmark, event_stream, source_ranges):
    tracker = benchmark(_run, event_stream, source_ranges)
    rate = len(event_stream) / benchmark.stats["mean"]
    print(f"\ntelemetry off: {rate:,.0f} events/s")
    benchmark.extra_info["events_per_second"] = round(rate)
    assert tracker.stats.loads_observed > 0


def test_overhead_metrics_only(benchmark, event_stream, source_ranges):
    tracker = benchmark(
        _run, event_stream, source_ranges, _telemetry_metrics_only()
    )
    rate = len(event_stream) / benchmark.stats["mean"]
    print(f"\nmetrics only: {rate:,.0f} events/s")
    benchmark.extra_info["events_per_second"] = round(rate)
    assert tracker.stats.loads_observed > 0


def test_overhead_full_logging(benchmark, event_stream, source_ranges):
    tracker = benchmark(
        _run, event_stream, source_ranges, _telemetry_full_logging()
    )
    rate = len(event_stream) / benchmark.stats["mean"]
    print(f"\nfull logging: {rate:,.0f} events/s")
    benchmark.extra_info["events_per_second"] = round(rate)
    assert tracker.stats.loads_observed > 0


def test_overhead_summary(benchmark, event_stream, source_ranges):
    """All three modes, interleaved, in one place.

    Interleaving the timed runs cancels machine drift; best-of-N per
    mode gives a low-noise rate.  ``extra_info`` carries the three
    headline numbers so ``--benchmark-json`` output is self-contained.
    """

    modes = {
        "off": lambda: None,
        "metrics": _telemetry_metrics_only,
        "logging": _telemetry_full_logging,
    }
    best = {name: float("inf") for name in modes}
    for _ in range(3):
        for name, make in modes.items():
            start = time.perf_counter()
            _run(event_stream, source_ranges, make())
            best[name] = min(best[name], time.perf_counter() - start)

    rates = {
        name: round(len(event_stream) / seconds)
        for name, seconds in best.items()
    }
    summary = {
        "events": len(event_stream),
        "events_per_second": rates,
        "metrics_slowdown": round(best["metrics"] / best["off"], 3),
        "logging_slowdown": round(best["logging"] / best["off"], 3),
    }
    benchmark.extra_info.update(summary)
    print(
        f"\ntelemetry overhead over {summary['events']} events: "
        f"off {rates['off']:,} ev/s, "
        f"metrics {rates['metrics']:,} ev/s "
        f"(x{summary['metrics_slowdown']}), "
        f"logging {rates['logging']:,} ev/s "
        f"(x{summary['logging_slowdown']})"
    )

    # Keep the benchmark fixture exercised so pytest-benchmark records a
    # timing row for this test too (one cheap representative run).
    benchmark(_run, event_stream, source_ranges)

    # Sanity, not a perf gate: every mode still tracked correctly.
    assert all(rate > 0 for rate in rates.values())

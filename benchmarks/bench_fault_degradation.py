"""Extension — graceful degradation under deterministic fault injection.

The paper evaluates PIFT on a lossless simulator; a hardware deployment
faces a lossy one.  This bench sweeps the event-loss rate (and, in full
mode, other fault sites) against the DroidBench suite and the malware
samples, producing the accuracy-vs-fault-rate curve and the
detection-latency-under-loss table.

Runnable two ways:

* under pytest-benchmark (tier-2): ``pytest benchmarks/bench_fault_degradation.py``
* standalone: ``PYTHONPATH=src python benchmarks/bench_fault_degradation.py
  [--smoke] [--json out.json]`` — the CI smoke job runs ``--smoke``.
"""

import argparse
import json
import sys

from repro.core import PAPER_DEFAULT, OverflowPolicy, PIFTConfig
from repro.analysis.degradation import (
    DEFAULT_RATES,
    degradation_curve,
    detection_latency_table,
    record_malware_runs,
)

#: Reduced sweep for the CI smoke job: fewer rates, smaller malware work.
SMOKE_RATES = (0.0, 1e-2, 1e-1)

#: Rates harsh enough to actually bend the accuracy curve (full mode).
EXTREME_RATES = (0.0, 1e-1, 0.3, 0.5, 0.8)

SEED = 1


def build_curve(apps, rates=DEFAULT_RATES, config=PAPER_DEFAULT, work=16):
    """The acceptance artifact: accuracy + malware detections per rate."""
    return degradation_curve(
        apps,
        config,
        rates=rates,
        seed=SEED,
        site="event_loss",
        malware_runs=record_malware_runs(work=work),
    )


# -- pytest-benchmark entry points ------------------------------------------


def test_droidbench_degradation_curve(benchmark, suite_runs):
    """Accuracy at (13, 3) is monotone non-increasing in the loss rate."""
    curve = benchmark.pedantic(
        lambda: build_curve(suite_runs), rounds=1, iterations=1
    )
    accuracies = [p.accuracy for p in curve.points]
    print("\naccuracy over loss rates "
          f"{[p.rate for p in curve.points]}: {accuracies}")
    assert curve.accuracy_non_increasing()
    # Loss rate 0 reproduces the paper's 98% headline cell exactly.
    assert curve.points[0].rate == 0.0
    assert curve.points[0].accuracy > 0.98
    assert curve.points[0].fault_stats.total_injections == 0
    # All seven malware samples are detected on the lossless path.
    assert curve.points[0].malware_detected == curve.points[0].malware_total == 7
    assert curve.malware_non_increasing()
    benchmark.extra_info["curve"] = json.dumps(curve.as_dict())


def test_degradation_is_deterministic(benchmark, suite_runs):
    """The same seed reproduces the curve bit-for-bit."""
    def both():
        kwargs = dict(rates=(0.0, 1e-2, 1e-1), seed=SEED)
        return (
            degradation_curve(suite_runs, PAPER_DEFAULT, **kwargs),
            degradation_curve(suite_runs, PAPER_DEFAULT, **kwargs),
        )

    first, second = benchmark.pedantic(both, rounds=1, iterations=1)
    assert first.as_dict() == second.as_dict()


def test_extreme_loss_actually_degrades(benchmark, suite_runs):
    """Past ~10% loss, accuracy visibly decays — the curve is not vacuous."""
    curve = benchmark.pedantic(
        lambda: degradation_curve(
            suite_runs, PAPER_DEFAULT, rates=EXTREME_RATES, seed=SEED
        ),
        rounds=1,
        iterations=1,
    )
    assert curve.accuracy_non_increasing()
    assert curve.points[-1].accuracy < curve.points[0].accuracy
    print("\nextreme-loss accuracy: "
          f"{[(p.rate, round(p.accuracy, 3)) for p in curve.points]}")


def test_detection_latency_under_loss(benchmark, lgroot_trace):
    """The buffered design point's latency table under rising loss.

    BLOCK never force-drops, so any degradation in these rows comes from
    the injected event loss alone — the lossless row must be clean.
    """
    rows = benchmark.pedantic(
        lambda: detection_latency_table(
            lgroot_trace,
            PAPER_DEFAULT,
            rates=SMOKE_RATES,
            seed=SEED,
            policy=OverflowPolicy.BLOCK,
            capacity=128,
            drain_batch=32,
        ),
        rounds=1,
        iterations=1,
    )
    assert [row.rate for row in rows] == list(SMOKE_RATES)
    assert rows[0].forced_drops == 0 and rows[0].degraded_checks == 0
    assert rows[0].missed == 0
    # At 10% loss the run certainly lost events: checks carry the flag.
    assert rows[-1].degraded_checks >= 1
    for row in rows:
        print(f"\n{row.as_dict()}")
    benchmark.extra_info["latency"] = json.dumps(
        [row.as_dict() for row in rows]
    )


# -- standalone mode ---------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="PIFT fault-degradation sweep (standalone mode)"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sweep for CI (fewer apps and rates)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the curve JSON to this file")
    args = parser.parse_args(argv)

    from repro.apps.droidbench import all_apps, record_suite

    if args.smoke:
        apps = record_suite(all_apps()[:12])
        rates = SMOKE_RATES
    else:
        apps = record_suite()
        rates = DEFAULT_RATES

    curve = build_curve(apps, rates=rates)
    latency = detection_latency_table(
        record_malware_runs(work=16)[0].recorded,
        PAPER_DEFAULT,
        rates=rates,
        seed=SEED,
        policy=OverflowPolicy.DROP_OLDEST,
        capacity=128,
        drain_batch=32,
    )
    payload = {
        "mode": "smoke" if args.smoke else "full",
        "curve": curve.as_dict(),
        "latency": [row.as_dict() for row in latency],
        "accuracy_non_increasing": curve.accuracy_non_increasing(),
        "malware_non_increasing": curve.malware_non_increasing(),
    }
    print(json.dumps(payload, indent=2))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)

    ok = (
        curve.accuracy_non_increasing()
        and curve.points[0].malware_detected == curve.points[0].malware_total
    )
    if not args.smoke:
        ok = ok and curve.points[0].accuracy > 0.98
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

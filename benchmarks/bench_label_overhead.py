"""Label-overhead benchmark — what do colour masks cost the hot path?

The coloured tracker (:class:`repro.core.tracker.ColourTracker`) carries
a 64-bit provenance mask per taint interval so sink hits can be
attributed to their source colours.  Its union projection is
byte-identical to the plain single-bit tracker, so the only acceptable
price is *time* — and this benchmark bounds that price:

1. **Label overhead ratio** — ``plain_seconds / coloured_seconds`` over
   a multi-source replay (higher is better; 1.0 = free).  Gated against
   ``BENCH_history.jsonl`` (``label_overhead_ratio``), with a hard floor
   asserted regardless of history: colour masks may not make replay more
   than ~6x slower even on this trace, which is deliberately adversarial
   — four colours round-robin into one shared scratch, so nearly every
   taint store ORs new bits into covered ranges (mask churn defeats both
   interval coalescing and the dense executor's absorbed test; measured
   overhead sits near ~3.5x here vs ~1x on phase-local traces, where one
   colour dominates at a time and intervals coalesce back to plain-
   RangeSet structure).
2. **Union parity** — the coloured replay's verdict bits must equal the
   plain replay's, cell for cell, on the same trace (the differential
   suite's oracle, re-checked here so the timing claim is about
   equivalent work).

Runnable two ways:

* under pytest-benchmark (tier-2):
  ``pytest benchmarks/bench_label_overhead.py``
* standalone: ``PYTHONPATH=src python benchmarks/bench_label_overhead.py
  [--smoke] [--json BENCH_labels.json] [--history BENCH_history.jsonl]
  [--gate]`` — the CI colour-parity-smoke job runs ``--smoke --gate``.
  The gated metric is a dimensionless ratio of two runs on the same
  machine, so it is robust to CI hosts of different speeds.
"""

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro import perf
from repro.core import PIFTConfig

REGRESSION_TOLERANCE = perf.REGRESSION_TOLERANCE

#: The history-record key this benchmark gates on.
GATE_METRIC = "label_overhead_ratio"

#: Hard floor asserted regardless of history: coloured replay may cost
#: at most ~6x the plain replay on the same (adversarial mask-churn)
#: trace.  A catastrophe backstop — drift within the floor is what the
#: history-median ``--gate`` is for.
OVERHEAD_FLOOR = 0.15

#: (NI, NT) cells the overhead is summed over — the paper default plus a
#: wide-window point where bulk dense commits dominate.
CELLS = ((13, 3), (34, 6))

SOURCE_SIZE = 4_096
SCRATCH_LO, SCRATCH_HI = 1 << 20, (1 << 20) + 65_535

#: Source names double as provenance colours (the DroidBench pattern).
SOURCES = ("imei", "location", "phone_number", "sim_serial")


def coloured_recorded_run(events: int = 120_000, seed: int = 2026):
    """A multi-source recorded run: four secrets, one shared scratch.

    Each source owns a disjoint range; the event loop round-robins loads
    across the sources and stores into the shared scratch buffer, so
    windows of different colours interleave and commits carry distinct
    masks — the worst realistic case for per-interval mask bookkeeping
    (single-colour traces coalesce back to plain-RangeSet structure).
    """
    from repro.android.device import (
        RecordedRun, SinkCheck, SourceRegistration,
    )
    from repro.core.events import load, store
    from repro.core.ranges import AddressRange

    rng = random.Random(seed)
    run = RecordedRun()
    source_ranges = []
    for slot, name in enumerate(SOURCES):
        lo = slot * 2 * SOURCE_SIZE
        source_ranges.append((lo, lo + SOURCE_SIZE - 1))
        run.sources.append(
            SourceRegistration(
                AddressRange(lo, lo + SOURCE_SIZE - 1), 0, name
            )
        )
    index = 0
    for i in range(events):
        index += 1
        if i % 4 == 0:
            lo, hi = source_ranges[(i // 4) % len(source_ranges)]
            a = lo + rng.randrange(0, hi - lo - 8)
            run.trace.append(load(a, a + 3, index))
        else:
            a = SCRATCH_LO + rng.randrange(0, SCRATCH_HI - SCRATCH_LO - 8)
            run.trace.append(store(a, a + 7, index))
    run.trace.note_instruction(index + 1)
    for offset, (sink, channel) in enumerate(
        (("network", "socket"), ("sms", "sms"), ("log", "log"))
    ):
        run.sink_checks.append(
            SinkCheck(
                AddressRange(
                    SCRATCH_LO + offset * 4_096,
                    SCRATCH_LO + offset * 4_096 + 255,
                ),
                index + 1, sink, channel,
            )
        )
    return run


def _verdict_bits(result):
    return [
        (o.sink_name, o.channel, o.instruction_index, o.pid, o.tainted)
        for o in result.sink_outcomes
    ]


def measure_overhead(events: int = 120_000, rounds: int = 3) -> dict:
    """Plain vs coloured replay over CELLS on the same recorded run."""
    from repro.analysis.replay import replay, replay_coloured

    recorded = coloured_recorded_run(events=events)
    recorded.trace.columns().arrays()  # warm the shared one-time caches
    cells = []
    plain_total = 0.0
    coloured_total = 0.0
    union_identical = True
    attributed = 0
    for window_size, cap in CELLS:
        config = PIFTConfig(window_size, cap)
        timings = {}
        results = {}
        for label, fn in (("plain", replay), ("coloured", replay_coloured)):
            best = float("inf")
            for _ in range(rounds):
                started = time.perf_counter()
                result = fn(recorded, config)
                best = min(best, time.perf_counter() - started)
            timings[label] = best
            results[label] = result
        cell_identical = _verdict_bits(results["plain"]) == _verdict_bits(
            results["coloured"]
        )
        union_identical = union_identical and cell_identical
        attributed += sum(
            1 for o in results["coloured"].sink_outcomes if o.colours
        )
        plain_total += timings["plain"]
        coloured_total += timings["coloured"]
        cells.append({
            "window_size": window_size,
            "max_propagations": cap,
            "plain_seconds": timings["plain"],
            "coloured_seconds": timings["coloured"],
            "overhead_ratio": timings["plain"] / timings["coloured"],
            "union_identical": cell_identical,
        })
    return {
        "events": len(recorded.trace),
        "sources": len(SOURCES),
        "cells": cells,
        "plain_seconds": plain_total,
        "coloured_seconds": coloured_total,
        "overhead_ratio": (
            plain_total / coloured_total if coloured_total else 0.0
        ),
        "union_identical": union_identical,
        "attributed_sinks": attributed,
    }


# -- pytest-benchmark entry points ------------------------------------------


def test_label_overhead(benchmark):
    """Colour masks may cost at most ~6x on an adversarial multi-source
    replay, with the union projection bit-identical to the plain
    tracker."""
    from repro.analysis.replay import replay, replay_coloured

    recorded = coloured_recorded_run(events=60_000)
    recorded.trace.columns().arrays()
    config = PIFTConfig(13, 3)
    started = time.perf_counter()
    plain_result = replay(recorded, config)
    plain_seconds = time.perf_counter() - started
    coloured_result = benchmark.pedantic(
        lambda: replay_coloured(recorded, config), rounds=3, iterations=1
    )
    assert _verdict_bits(coloured_result) == _verdict_bits(plain_result)
    assert any(o.colours for o in coloured_result.sink_outcomes)
    ratio = plain_seconds / benchmark.stats.stats.mean
    print(f"\nlabel overhead: {plain_seconds:.3f}s plain vs "
          f"{benchmark.stats.stats.mean:.3f}s coloured "
          f"(ratio {ratio:.2f})")
    benchmark.extra_info["label_overhead_ratio"] = ratio
    assert ratio >= OVERHEAD_FLOOR


# -- standalone mode ---------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="PIFT colour-label overhead benchmark (standalone mode)"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="reduced event counts for CI")
    parser.add_argument("--json", metavar="PATH",
                        default="BENCH_labels.json",
                        help="write results here (default BENCH_labels.json)")
    parser.add_argument("--history", metavar="PATH",
                        default="BENCH_history.jsonl",
                        help="append one summary line per run here "
                             "(default BENCH_history.jsonl)")
    parser.add_argument("--gate", action="store_true",
                        help="fail if the label overhead ratio regressed "
                             f">{REGRESSION_TOLERANCE:.0%} vs the history "
                             "baseline (median of prior runs)")
    args = parser.parse_args(argv)

    overhead = measure_overhead(events=60_000 if args.smoke else 160_000)
    print(
        f"label overhead: ratio {overhead['overhead_ratio']:.2f} "
        f"(plain {overhead['plain_seconds']:.3f}s / coloured "
        f"{overhead['coloured_seconds']:.3f}s) across "
        f"{len(overhead['cells'])} cells x {overhead['events']} events, "
        f"{overhead['sources']} sources "
        f"(union_identical={overhead['union_identical']}, "
        f"{overhead['attributed_sinks']} attributed sinks)",
        file=sys.stderr,
    )
    payload = {
        "mode": "smoke" if args.smoke else "full",
        "overhead": overhead,
    }
    print(json.dumps(payload, indent=2))
    with open(args.json, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)

    history_path = Path(args.history)
    history = perf.load_history(history_path, GATE_METRIC)
    gate_ok, baseline = perf.check_regression(
        history, overhead["overhead_ratio"], GATE_METRIC
    )
    perf.append_history(history_path, {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": payload["mode"],
        "label_overhead_ratio": overhead["overhead_ratio"],
        "label_events": overhead["events"],
        "label_sources": overhead["sources"],
        "union_identical": overhead["union_identical"],
    })
    if baseline is not None:
        print(
            f"regression gate: current {overhead['overhead_ratio']:.2f} vs "
            f"baseline {baseline:.2f} (median of {len(history)} runs) "
            f"-> {'ok' if gate_ok else 'REGRESSED'}",
            file=sys.stderr,
        )

    ok = overhead["union_identical"]
    ok = ok and overhead["attributed_sinks"] > 0
    ok = ok and overhead["overhead_ratio"] >= OVERHEAD_FLOOR
    if args.gate:
        ok = ok and gate_ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

"""Ablation — PIFT versus full register-level DIFT (the paper's §2 cost
argument and the accuracy trade it buys).

* Work: full DIFT mutates taint state on (almost) every instruction; PIFT
  only reacts to loads and stores — "at least an order of magnitude less
  frequent than arbitrary CPU operations" in event terms, and PIFT's
  actual state mutations are rarer still.
* Accuracy: the byte-exact oracle and PIFT agree on every sink verdict of
  the paper's running example at the (13, 3) operating point.
"""

from repro.core import PAPER_DEFAULT, MemoryAccess, PIFTTracker
from repro.android import AndroidDevice
from repro.baseline import FullDIFTTracker
from repro.dalvik import MethodBuilder


def _run_example():
    device = AndroidDevice(config=PAPER_DEFAULT, keep_full_trace=True)
    b = MethodBuilder("Ex.main", registers=14)
    b.invoke_static("TelephonyManager.getDeviceId")
    b.move_result_object(0)
    b.new_instance(1, "java/lang/StringBuilder")
    b.invoke_direct("StringBuilder.<init>", 1)
    b.const_string(2, "id=")
    b.invoke("StringBuilder.append", 1, 2)
    b.invoke("StringBuilder.append", 1, 0)
    b.invoke("StringBuilder.toString", 1)
    b.move_result_object(3)
    b.const_string(4, "+15551234567")
    b.const(5, 0)
    b.invoke("SmsManager.sendTextMessage", 4, 5, 3)
    b.return_void()
    device.install([b.build()])
    device.run("Ex.main")
    return device


def _run_lgroot():
    from repro.apps.malware import SAMPLES

    device = AndroidDevice(config=PAPER_DEFAULT, keep_full_trace=True)
    sample = SAMPLES[0]  # LGRoot, with its background workload
    device.install(sample.build(device, 64))
    device.run(sample.entry)
    return device


def test_event_rate_comparison(benchmark):
    device = benchmark.pedantic(_run_lgroot, rounds=1, iterations=1)
    instructions = device.cpu.instruction_count()
    records = device.full_trace.records

    baseline = FullDIFTTracker()
    for source in device.recorded.sources:
        baseline.taint_source(source.address_range)
    baseline.run(records)

    pift_mutations = device.stats.total_operations
    pift_events = device.stats.loads_observed + device.stats.stores_observed
    baseline_ops = (
        baseline.stats.propagation_operations
        + baseline.stats.memory_taint_operations
    )
    print(
        f"\ninstructions executed:      {instructions}"
        f"\nfull-DIFT taint operations: {baseline_ops}"
        f" ({baseline_ops / instructions:.2f} per instruction)"
        f"\nPIFT memory events:         {pift_events}"
        f" ({pift_events / instructions:.2f} per instruction)"
        f"\nPIFT state mutations:       {pift_mutations}"
        f" ({pift_mutations / instructions:.3f} per instruction)"
    )
    # Full tracking works on (almost) every instruction.  PIFT's state
    # mutations are many times rarer.  (The paper's "order of magnitude"
    # contrasts loads/stores with all CPU ops on real ARM code; this
    # mterp-style substrate is unusually memory-dense — virtual registers
    # live in memory — which is the very property PIFT exploits.)
    assert baseline_ops > instructions * 0.5
    assert pift_mutations * 5 < baseline_ops


def test_verdict_agreement_with_oracle(benchmark):
    device = benchmark.pedantic(_run_example, rounds=1, iterations=1)
    baseline = FullDIFTTracker()
    for source in device.recorded.sources:
        baseline.taint_source(source.address_range)
    baseline.run(device.full_trace.records)
    for check in device.recorded.sink_checks:
        oracle_verdict = baseline.check(check.address_range)
        pift_verdict = device.hw.tracker.check(check.address_range)
        print(
            f"\nsink {check.sink_name}: oracle={oracle_verdict} "
            f"pift={pift_verdict}"
        )
        assert oracle_verdict == pift_verdict


def test_pift_state_is_superset_at_sink(benchmark):
    """PIFT deliberately over-taints: the oracle's tainted bytes at the
    sink are a subset of PIFT's (no under-tainting on this flow)."""
    device = benchmark.pedantic(_run_example, rounds=1, iterations=1)
    baseline = FullDIFTTracker()
    for source in device.recorded.sources:
        baseline.taint_source(source.address_range)
    baseline.run(device.full_trace.records)
    pift_state = device.hw.tracker.state(0)
    missing = 0
    for oracle_range in baseline.memory_taint:
        for address in range(oracle_range.start, oracle_range.end + 1):
            if not pift_state.covers_address(address):
                missing += 1
    oracle_bytes = baseline.tainted_bytes
    pift_bytes = device.hw.tracker.tainted_bytes
    print(
        f"\noracle tainted bytes: {oracle_bytes}, "
        f"PIFT tainted bytes: {pift_bytes}, "
        f"oracle bytes PIFT misses: {missing}"
    )
    assert pift_bytes >= oracle_bytes
    # The sink-relevant flow is fully covered (small incidental gaps from
    # untainting clean overwrites are acceptable).
    assert missing <= oracle_bytes * 0.2

"""Extension — per-source leak attribution (Raksha-style labelled taint).

The paper's detector answers "is this sink payload sensitive?"; its §6
hardware relatives (Raksha, FlexiTaint) carry multi-bit tags so a verdict
also says *which* policy/source fired.  The ProvenanceTracker runs one
Algorithm-1 instance per source label over the same recorded stream; this
bench attributes every malware sample's leak to the exact set of stolen
sources.
"""

from repro.core.config import PIFTConfig
from repro.analysis.replay import replay_with_provenance
from repro.apps.malware import SAMPLES, run_sample

#: Source-name label expected for each MalwareSample.steals entry.
LABEL_OF = {
    "device_id": "TelephonyManager.getDeviceId",
    "phone_number": "TelephonyManager.getLine1Number",
    "sim_serial": "TelephonyManager.getSimSerialNumber",
    "location": "LocationManager.getLastKnownLocation",
}


def test_malware_leaks_attributed_to_exact_sources(benchmark):
    config = PIFTConfig(13, 3)

    def attribute_all():
        attributions = {}
        for sample in SAMPLES:
            device = run_sample(sample, config, work=8)
            outcomes = replay_with_provenance(device.recorded, config)
            leaked = set()
            for labels in outcomes.values():
                leaked |= labels
            attributions[sample.name] = leaked
        return attributions

    attributions = benchmark.pedantic(attribute_all, rounds=1, iterations=1)
    print("\nper-source attribution at (13, 3):")
    for sample in SAMPLES:
        leaked = attributions[sample.name]
        expected = {LABEL_OF[item] for item in sample.steals}
        print(f"  {sample.name:<12} declared={sorted(expected)}")
        print(f"  {'':<12} detected={sorted(leaked)}")
        # Every source the sample declares must be attributed, and nothing
        # that is not derived from a declared source may appear.
        assert expected <= leaked, sample.name
        assert leaked <= expected, sample.name


def test_attribution_agrees_with_single_bit_tracking(benchmark):
    """The union of labelled verdicts equals the plain tracker's verdict."""
    from repro.analysis.replay import replay

    config = PIFTConfig(13, 3)

    def compare():
        disagreements = 0
        for sample in SAMPLES:
            device = run_sample(sample, config, work=8)
            plain = replay(device.recorded, config)
            labelled = replay_with_provenance(device.recorded, config)
            for position, outcome in enumerate(plain.sink_outcomes):
                if bool(labelled[position]) != outcome.tainted:
                    disagreements += 1
        return disagreements

    disagreements = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\nlabelled-vs-plain disagreements: {disagreements}")
    assert disagreements == 0

"""Shared fixtures for the reproduction benchmarks.

Expensive artifacts (the LGRoot trace, the recorded 57-app suite) are
produced once per session and shared across benchmark files.

Run with ``pytest benchmarks/ --benchmark-only -s`` to also see the
regenerated tables and figure series printed to stdout.
"""

import pytest

from repro.apps.droidbench import record_suite
from repro.apps.malware import record_lgroot_trace


@pytest.fixture(scope="session")
def lgroot_trace():
    """The LGRoot malware execution trace (paper Figures 2, 12-19)."""
    return record_lgroot_trace(work=160)


@pytest.fixture(scope="session")
def suite_runs():
    """All 57 DroidBench-style apps, recorded once (paper Figure 11)."""
    return record_suite()

"""Figure 10 — top-30 Dalvik opcode frequencies: applications (1.2M lines)
vs system libraries (1.3M lines), with each data-mover's Table 1 distance.

Reproduced observation: "Most of the frequently appearing bytecodes have a
short load-store distance"; the one exception in apps is aput-object
(distance 10, due to type checking).
"""

from repro.apps.corpus import app_corpus, library_corpus
from repro.analysis.bytecode_stats import render_top_opcodes, top_opcodes


def _short_distance_share(rows):
    movers = [r for r in rows if r.moves_data]
    short = [
        r for r in movers
        if r.load_store_distance is not None and r.load_store_distance <= 6
    ]
    return sum(r.share for r in short) / sum(r.share for r in movers)


def test_fig10a_applications(benchmark):
    corpus = app_corpus()
    rows = benchmark(top_opcodes, corpus, 30)
    print("\n" + render_top_opcodes(rows, "(a) Applications (1.2M lines)"))
    assert rows[0].name == "invoke-virtual"
    assert abs(rows[0].share - 0.1106) < 0.002
    names = [r.name for r in rows]
    assert "aput-object" in names  # the long-distance outlier
    outlier = next(r for r in rows if r.name == "aput-object")
    assert outlier.load_store_distance == 10
    assert _short_distance_share(rows) > 0.80
    benchmark.extra_info["top1"] = rows[0].name
    benchmark.extra_info["short_distance_share"] = round(
        _short_distance_share(rows), 4
    )


def test_fig10b_system_libraries(benchmark):
    corpus = library_corpus()
    rows = benchmark(top_opcodes, corpus, 30)
    print("\n" + render_top_opcodes(rows, "(b) System libraries (1.3M lines)"))
    assert [r.name for r in rows[:3]] == [
        "invoke-virtual", "iget-object", "move-result-object",
    ]
    # aput-object appears "more frequently in applications" (paper) — it is
    # not in the libraries' top 30 at all.
    assert "aput-object" not in [r.name for r in rows]
    assert _short_distance_share(rows) > 0.85


def test_fig10_suite_corpus_cross_check(benchmark):
    """Count opcodes over this repo's own 57 apps the same way the paper
    counts dex lines, confirming data-movers dominate here too."""
    from repro.android import AndroidDevice
    from repro.apps.corpus import corpus_from_methods
    from repro.apps.droidbench import all_apps

    def build_counts():
        methods = []
        for app in all_apps():
            device = AndroidDevice()
            methods.extend(app.build(device))
        return corpus_from_methods(methods)

    counts = benchmark.pedantic(build_counts, rounds=1, iterations=1)
    rows = top_opcodes(counts, 15)
    print("\n" + render_top_opcodes(rows, "(c) This repo's DroidBench suite"))
    assert counts["invoke-virtual"] > 0
    assert counts["const-string"] > 0

"""Ablation — the §3.3 taint-storage design space.

Compares, over the recorded DroidBench suite at the paper's operating
point:
* unbounded software RangeSet (reference),
* 32KB cache-of-ranges with LRU spill to main memory (no accuracy loss),
* tiny cache with DROP policy (false negatives appear),
* fixed-granularity (word / cache-line) tainting (over-tainting; the
  paper's noted false-positive risk).
"""

from repro.core.config import PAPER_DEFAULT
from repro.core.ranges import RangeSet
from repro.core.taint_storage import (
    BoundedRangeCache,
    EvictionPolicy,
    entry_capacity,
)
from repro.analysis.accuracy import AccuracyReport
from repro.analysis.replay import replay


def _evaluate(suite_runs, state_factory):
    report = AccuracyReport()
    for run in suite_runs:
        alarm = replay(
            run.recorded, PAPER_DEFAULT, state_factory=state_factory
        ).alarm
        if run.leaks and alarm:
            report.true_positives += 1
        elif run.leaks:
            report.false_negatives += 1
            report.missed_apps.append(run.name)
        elif alarm:
            report.false_positives += 1
            report.false_alarm_apps.append(run.name)
        else:
            report.true_negatives += 1
    return report


def test_paper_storage_matches_unbounded(benchmark, suite_runs):
    def run_both():
        unbounded = _evaluate(suite_runs, RangeSet)
        paper = _evaluate(
            suite_runs,
            lambda: BoundedRangeCache(
                capacity_entries=entry_capacity(32 * 1024),
                policy=EvictionPolicy.SPILL,
            ),
        )
        return unbounded, paper

    unbounded, paper = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(
        f"\nunbounded RangeSet:      accuracy {unbounded.accuracy * 100:.1f}%"
        f"\n32KB cache-of-ranges:    accuracy {paper.accuracy * 100:.1f}%"
    )
    assert paper.accuracy == unbounded.accuracy
    assert paper.false_positives == 0


def test_drop_policy_degrades(benchmark, suite_runs):
    def run_drop():
        return _evaluate(
            suite_runs,
            lambda: BoundedRangeCache(
                capacity_entries=2, policy=EvictionPolicy.DROP
            ),
        )

    report = benchmark.pedantic(run_drop, rounds=1, iterations=1)
    print(
        f"\ndrop-2 storage: accuracy {report.accuracy * 100:.1f}%, "
        f"FN={report.false_negatives} "
        f"(missed: {', '.join(report.missed_apps[:5])}...)"
    )
    # Dropping evicted ranges loses sensitive flows: strictly worse.
    assert report.false_negatives > 1
    # But never produces false alarms.
    assert report.false_positives == 0


def test_fixed_granularity_overtaints(benchmark, suite_runs):
    """Word-granularity keeps accuracy here; coarse cache-line granularity
    starts flagging benign apps — the over-tainting risk the paper notes."""
    def run_granularities():
        results = {}
        for bits in (2, 5, 8):
            results[bits] = _evaluate(
                suite_runs,
                lambda bits=bits: BoundedRangeCache(
                    capacity_entries=4096, granularity_bits=bits
                ),
            )
        return results

    results = benchmark.pedantic(run_granularities, rounds=1, iterations=1)
    print("\nfixed-granularity tainting at (13, 3):")
    for bits, report in results.items():
        print(
            f"  2^{bits}-byte blocks: accuracy {report.accuracy * 100:5.1f}% "
            f"FP={report.false_positives} FN={report.false_negatives} "
            f"{report.false_alarm_apps[:3]}"
        )
    # Word granularity must not lose any detections.
    assert results[2].false_negatives <= 1
    # Coarser blocks can only increase (or keep) the false-positive count.
    assert results[8].false_positives >= results[2].false_positives

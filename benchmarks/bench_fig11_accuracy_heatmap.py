"""Figure 11 — DroidBench accuracy over the full (NI, NT) grid.

Paper claims being reproduced:
* accuracy at (13, 3) is ~98% — 0% false positives, one false negative;
* 100% accuracy first reached at (18, 3);
* GPS-leaking apps are missed for NI < 10;
* accuracy is monotone non-decreasing in NI;
* no false positives anywhere on the 200-cell grid.
"""

import numpy as np

from repro.core.config import PIFTConfig
from repro.analysis.accuracy import evaluate_suite, sweep


def test_fig11_full_grid(benchmark, suite_runs):
    grid = benchmark.pedantic(
        sweep,
        args=(suite_runs,),
        kwargs=dict(window_sizes=range(1, 21), propagation_caps=range(1, 11)),
        rounds=1,
        iterations=1,
    )
    print("\nFigure 11: accuracy (%) over NI (columns) x NT (rows)")
    print(grid.render())
    # The paper's operating points.
    assert grid.at(13, 3) == max(0.0, (57 - 1) / 57)
    assert grid.at(18, 3) == 1.0
    # Monotone in NI along the NT=3 row.
    row = grid.accuracy[grid.propagation_caps.index(3)]
    assert np.all(np.diff(row) >= -1e-12)
    # 100% is NOT reached below NI=18 at NT=3.
    for window in range(1, 18):
        assert grid.at(window, 3) < 1.0, window
    benchmark.extra_info["accuracy_13_3"] = round(grid.at(13, 3), 4)
    benchmark.extra_info["accuracy_18_3"] = round(grid.at(18, 3), 4)
    benchmark.extra_info["best"] = grid.best()


def test_fig11_no_false_positives_anywhere(benchmark, suite_runs):
    def count_false_positives():
        total = 0
        for window in range(1, 21):
            for cap in range(1, 11):
                report = evaluate_suite(suite_runs, PIFTConfig(window, cap))
                total += report.false_positives
        return total

    false_positives = benchmark.pedantic(
        count_false_positives, rounds=1, iterations=1
    )
    print(f"\nfalse positives over all 200 grid cells: {false_positives}")
    assert false_positives == 0  # "In all experiments, no false positive"


def test_fig11_operating_point_confusion_matrix(benchmark, suite_runs):
    report = benchmark(evaluate_suite, suite_runs, PIFTConfig(13, 3))
    print(
        f"\n(13,3): TP={report.true_positives} FP={report.false_positives} "
        f"TN={report.true_negatives} FN={report.false_negatives} "
        f"accuracy={report.accuracy * 100:.1f}% "
        f"FPR={report.false_positive_rate * 100:.0f}% "
        f"FNR={report.false_negative_rate * 100:.0f}%"
    )
    assert report.true_positives == 40
    assert report.true_negatives == 16
    assert report.false_positives == 0
    assert report.false_negatives == 1
    assert abs(report.false_negative_rate - 1 / 41) < 1e-9

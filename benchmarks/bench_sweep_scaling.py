"""Extension — sweep scaling, batch fast path, and the vectorised kernel.

Measures the three performance claims the replay stack makes:

1. **Batch fast path** — replaying a recorded suite through
   ``observe_columns`` is measurably faster than the per-event
   ``observe`` loop, with identical results.
2. **Parallel scaling** — fanning a grid across ``--jobs N`` worker
   processes beats the serial run wall-clock while staying bit-identical.
3. **Vectorised kernel** — on a long mostly-untainted replay (the
   regime PIFT targets), the numpy pre-filter kernel
   (``repro.core.vectorized``) beats the scalar column loop by >= 5x
   with bit-identical verdicts and stats.
4. **Digest payloads** — with an ``ArtifactStore`` backing the cache,
   pool workers receive store digests instead of pickled suites; the
   transfer saving (pickled payload bytes, with vs without a store)
   must exceed 50%.

Runnable two ways:

* under pytest-benchmark (tier-2): ``pytest benchmarks/bench_sweep_scaling.py``
* standalone: ``PYTHONPATH=src python benchmarks/bench_sweep_scaling.py
  [--smoke] [--json BENCH_sweep.json] [--history BENCH_history.jsonl]
  [--gate]`` — the CI smoke job runs ``--smoke --gate``; every
  standalone run appends one JSON line to the history file, and
  ``--gate`` exits non-zero if the kernel speedup regressed more than
  :data:`REGRESSION_TOLERANCE` against the history baseline.  The gate
  compares the *dimensionless* vectorised-vs-scalar speedup ratio, not
  absolute throughput, so it is robust to CI machines of different
  speeds.
"""

import argparse
import json
import os
import pickle
import random
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro import perf
from repro.core import PIFTConfig
from repro.sweep import GridSpec, TraceCache, run_sweep

#: --gate fails when the measured kernel speedup drops below
#: ``(1 - REGRESSION_TOLERANCE)`` times the history baseline.
REGRESSION_TOLERANCE = perf.REGRESSION_TOLERANCE

#: The history-record key this benchmark gates on.
GATE_METRIC = "vectorized_speedup"

#: The full measurement grid: 4x4 configs x 2 rates = 32 cells.
FULL_GRID = GridSpec(
    window_sizes=(1, 5, 13, 20),
    propagation_caps=(1, 3, 6, 10),
    rates=(0.0, 1e-2),
    seed=1,
)

#: Reduced grid for the CI smoke job.
SMOKE_GRID = GridSpec(
    window_sizes=(5, 13),
    propagation_caps=(2, 3),
    rates=(0.0,),
    seed=1,
)


def primed_cache() -> TraceCache:
    cache = TraceCache()
    cache.prime(droidbench=True)
    cache.prime_replay_state()
    return cache


# -- vectorised-kernel measurement -------------------------------------------


def synthetic_recorded_run(events: int = 150_000, seed: int = 11):
    """A long, mostly-untainted recorded run — the kernel's target regime.

    One source, periodic tainted loads whose in-window stores land in a
    small scratch region, periodic wide scratch stores that untaint, and
    a sea of background accesses in a disjoint heap region.  Taint stays
    small and localised, so the overwhelming majority of events are
    irrelevant — exactly the shape of a real app trace between source
    touches.
    """
    from repro.android.device import (
        RecordedRun, SinkCheck, SourceRegistration,
    )
    from repro.core.events import load, store
    from repro.core.ranges import AddressRange

    rng = random.Random(seed)
    run = RecordedRun()
    run.sources.append(
        SourceRegistration(AddressRange(1000, 1003), 0, "imei")
    )
    index = 0
    for i in range(events):
        index += rng.randint(1, 3)
        if i % 5000 == 0:
            run.trace.append(load(1000, 1003, index))
        elif i % 5000 < 4:
            a = 1000 + rng.randrange(0, 1000)
            run.trace.append(store(a, a + 3, index))
        elif i % 9000 == 8999:
            run.trace.append(store(1000, 2000, index))
        else:
            a = 100_000 + rng.randrange(0, 1_000_000)
            maker = load if rng.random() < 0.5 else store
            run.trace.append(maker(a, a + 3, index))
    run.trace.note_instruction(index + 1)
    run.sink_checks.append(
        SinkCheck(AddressRange(1000, 1063), index + 1, "network", "socket")
    )
    return run


def _replay_fingerprint(result) -> str:
    return json.dumps(
        {
            "stats": result.stats.as_dict(),
            "verdicts": [
                (o.sink_name, o.channel, o.instruction_index, o.pid,
                 o.tainted)
                for o in result.sink_outcomes
            ],
        },
        sort_keys=True,
    )


def measure_vectorized(events: int = 150_000, rounds: int = 3) -> dict:
    """Replay the synthetic run scalar vs vectorised; best-of-``rounds``."""
    from repro.analysis.replay import replay

    recorded = synthetic_recorded_run(events=events)
    # Warm the one-time caches (column encoding + numpy arrays); both
    # strategies share them, and best-of-rounds would hide the cost from
    # whichever strategy runs second anyway.
    recorded.trace.columns().arrays()
    config = PIFTConfig(13, 3)
    timings = {}
    fingerprints = {}
    for vectorized in (False, True):
        cell = replace(config, vectorized=vectorized)
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            result = replay(recorded, cell)
            best = min(best, time.perf_counter() - started)
        timings[vectorized] = best
        fingerprints[vectorized] = _replay_fingerprint(result)
    identical = fingerprints[True] == fingerprints[False]
    speedup = timings[False] / timings[True] if timings[True] else 0.0
    return {
        "events": len(recorded.trace),
        "scalar_seconds": timings[False],
        "vectorized_seconds": timings[True],
        "scalar_events_per_second": len(recorded.trace) / timings[False],
        "vectorized_events_per_second": len(recorded.trace) / timings[True],
        "speedup": speedup,
        "identical": identical,
    }


# -- store payload transfer saving -------------------------------------------


def measure_transfer_saving(cache: TraceCache, store_dir) -> dict:
    """Pickled worker-payload bytes: full suites vs store path + digests.

    Every pool worker receives ``cache.payload()`` under spawn; with a
    backing store the payload carries content digests instead of the
    recorded suites, and the workers read the store themselves.
    """
    from repro.store import ArtifactStore

    without_store = len(pickle.dumps(cache.payload()))
    store = ArtifactStore(store_dir)
    backed = TraceCache(backing_store=store)
    backed.droidbench_runs()  # records once, persists, then serves digests
    with_store = len(pickle.dumps(backed.payload()))
    saving = 1.0 - (with_store / without_store) if without_store else 0.0
    return {
        "payload_bytes_without_store": without_store,
        "payload_bytes_with_store": with_store,
        "transfer_saving": saving,
    }


# -- BENCH_history.jsonl + regression gate (delegates to repro.perf) ----------


def load_history(path: Path) -> list:
    """All prior records for this benchmark's gate metric."""
    return perf.load_history(path, GATE_METRIC)


def append_history(path: Path, record: dict) -> None:
    perf.append_history(path, record)


def baseline_speedup(history: list) -> float:
    """The gate baseline: median speedup of the recorded history."""
    return perf.baseline(history, GATE_METRIC)


def check_regression(history: list, current: float) -> tuple:
    """(ok, baseline) — ok is False when current regressed > tolerance."""
    return perf.check_regression(history, current, GATE_METRIC)


# -- pytest-benchmark entry points ------------------------------------------


def test_batch_replay_beats_per_event(benchmark, suite_runs):
    """The column fast path outruns per-event observe on the same work."""
    from repro.core.events import EventColumns
    from repro.core.tracker import PIFTTracker

    config = PIFTConfig(13, 3)
    runs = suite_runs
    columns = [EventColumns.from_events(app.recorded.trace) for app in runs]

    def per_event():
        total = 0
        for app in runs:
            tracker = PIFTTracker(config)
            for event in app.recorded.trace:
                tracker.observe(event)
            total += tracker.stats.instructions_observed
        return total

    def batched():
        total = 0
        for encoded in columns:
            tracker = PIFTTracker(config)
            tracker.observe_batch(encoded)
            total += tracker.stats.instructions_observed
        return total

    started = time.perf_counter()
    baseline = per_event()
    per_event_seconds = time.perf_counter() - started
    fast = benchmark.pedantic(batched, rounds=3, iterations=1)
    assert fast == baseline  # identical accounting, only faster
    batched_seconds = benchmark.stats.stats.mean
    speedup = per_event_seconds / batched_seconds
    print(f"\nbatch fast path: {per_event_seconds:.3f}s per-event vs "
          f"{batched_seconds:.3f}s batched ({speedup:.2f}x)")
    benchmark.extra_info["per_event_seconds"] = per_event_seconds
    benchmark.extra_info["speedup"] = speedup
    assert speedup > 1.0


def test_vectorized_kernel_speedup(benchmark):
    """The numpy kernel must beat the scalar loop >= 5x on the synthetic
    mostly-untainted replay, with bit-identical observable results."""
    from repro.analysis.replay import replay

    recorded = synthetic_recorded_run(events=120_000)
    scalar_config = PIFTConfig(13, 3, vectorized=False)
    vector_config = replace(scalar_config, vectorized=True)

    # Warm the one-time caches (column encoding + numpy arrays) so the
    # timed rounds compare the replay loops, not trace encoding.
    recorded.trace.columns().arrays()

    started = time.perf_counter()
    scalar_result = replay(recorded, scalar_config)
    scalar_seconds = time.perf_counter() - started
    vector_result = benchmark.pedantic(
        lambda: replay(recorded, vector_config), rounds=3, iterations=1
    )
    assert _replay_fingerprint(vector_result) == _replay_fingerprint(
        scalar_result
    )
    vector_seconds = benchmark.stats.stats.mean
    speedup = scalar_seconds / vector_seconds
    print(f"\nvectorized kernel: {scalar_seconds:.3f}s scalar vs "
          f"{vector_seconds:.3f}s vectorized ({speedup:.1f}x)")
    benchmark.extra_info["scalar_seconds"] = scalar_seconds
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= 5.0


def test_parallel_sweep_matches_serial(benchmark, suite_runs):
    """jobs=2 returns byte-identical cells to jobs=1 on a real grid."""
    cache = TraceCache(droidbench=suite_runs)
    cache.prime_replay_state()
    serial = run_sweep(SMOKE_GRID, cache=cache, jobs=1)
    parallel = benchmark.pedantic(
        lambda: run_sweep(SMOKE_GRID, cache=cache, jobs=2),
        rounds=1, iterations=1,
    )
    assert json.dumps(serial.as_dict(), sort_keys=True) == json.dumps(
        parallel.as_dict(), sort_keys=True
    )


# -- standalone mode ---------------------------------------------------------


def measure(grid: GridSpec, jobs_axis, cache: TraceCache) -> dict:
    """Run the grid at each worker count; verify parity; report timings."""
    runs = []
    reference = None
    for jobs in jobs_axis:
        result = run_sweep(grid, cache=cache, jobs=jobs)
        digest = json.dumps(result.as_dict(), sort_keys=True)
        if reference is None:
            reference = digest
        timings = result.timings()
        timings["identical_to_serial"] = digest == reference
        runs.append(timings)
        print(
            f"jobs={jobs}: {timings['wall_seconds']:.2f}s wall, "
            f"{len(timings['workers'])} worker pids, "
            f"identical={timings['identical_to_serial']}",
            file=sys.stderr,
        )
    serial_wall = runs[0]["wall_seconds"]
    for row in runs:
        row["speedup_vs_serial"] = (
            serial_wall / row["wall_seconds"] if row["wall_seconds"] else 0.0
        )
    return {
        "grid_cells": len(grid),
        "jobs_axis": list(jobs_axis),
        "runs": runs,
        "all_identical": all(row["identical_to_serial"] for row in runs),
        "best_speedup": max(row["speedup_vs_serial"] for row in runs),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="PIFT sweep-engine scaling benchmark (standalone mode)"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid for CI (fewer cells, jobs 1-2)")
    parser.add_argument("--json", metavar="PATH", default="BENCH_sweep.json",
                        help="write results here (default BENCH_sweep.json)")
    parser.add_argument("--history", metavar="PATH",
                        default="BENCH_history.jsonl",
                        help="append one summary line per run here "
                             "(default BENCH_history.jsonl)")
    parser.add_argument("--gate", action="store_true",
                        help="fail if the vectorized speedup regressed "
                             f">{REGRESSION_TOLERANCE:.0%} vs the history "
                             "baseline (median of prior runs)")
    args = parser.parse_args(argv)

    cache = primed_cache()
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count() or 1
    if args.smoke:
        grid, jobs_axis = SMOKE_GRID, (1, 2)
    else:
        grid, jobs_axis = FULL_GRID, (1, 2, min(8, max(2, cpus)))

    # Same replay size in both modes, so smoke (CI) and full history
    # records gate against each other like-for-like.  The measurement is
    # cheap (~0.3s) — the grid scaling below dominates either way.
    vectorized = measure_vectorized(events=200_000)
    print(
        f"vectorized kernel: {vectorized['speedup']:.1f}x over scalar "
        f"on {vectorized['events']} events "
        f"(identical={vectorized['identical']})",
        file=sys.stderr,
    )
    import tempfile

    with tempfile.TemporaryDirectory(prefix="pift-bench-store-") as store_dir:
        transfer = measure_transfer_saving(cache, store_dir)
    print(
        f"store transfer saving: {transfer['transfer_saving']:.1%} "
        f"({transfer['payload_bytes_without_store']:,} -> "
        f"{transfer['payload_bytes_with_store']:,} payload bytes)",
        file=sys.stderr,
    )
    payload = {
        "mode": "smoke" if args.smoke else "full",
        "available_cpus": cpus,
        "vectorized": vectorized,
        "transfer": transfer,
        "scaling": measure(grid, jobs_axis, cache),
    }
    print(json.dumps(payload, indent=2))
    with open(args.json, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)

    history_path = Path(args.history)
    history = load_history(history_path)
    gate_ok, baseline = check_regression(history, vectorized["speedup"])
    append_history(history_path, {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": payload["mode"],
        "vectorized_speedup": vectorized["speedup"],
        "vectorized_events_per_second": (
            vectorized["vectorized_events_per_second"]
        ),
        "scalar_events_per_second": vectorized["scalar_events_per_second"],
        "events": vectorized["events"],
        "sweep_best_speedup": payload["scaling"]["best_speedup"],
        "transfer_saving": transfer["transfer_saving"],
        "identical": vectorized["identical"],
    })
    if baseline is not None:
        print(
            f"regression gate: current {vectorized['speedup']:.1f}x vs "
            f"baseline {baseline:.1f}x (median of {len(history)} runs) "
            f"-> {'ok' if gate_ok else 'REGRESSED'}",
            file=sys.stderr,
        )

    ok = payload["scaling"]["all_identical"] and vectorized["identical"]
    # Digest payloads must actually shrink what each worker receives.
    ok = ok and transfer["transfer_saving"] > 0.5
    if args.gate:
        ok = ok and gate_ok
    if not args.smoke and cpus > 1:
        # With real cores available, parallel must beat serial wall-clock.
        # (On a single-CPU box the pool can only add overhead; parity is
        # still asserted, the speedup claim is not testable.)
        ok = ok and payload["scaling"]["best_speedup"] > 1.0
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

"""Extension — parallel sweep engine scaling and batch fast-path speedup.

Measures the two performance claims the ``repro.sweep`` engine makes:

1. **Batch fast path** — replaying a recorded suite through
   ``observe_columns`` is measurably faster than the per-event
   ``observe`` loop, with identical results.
2. **Parallel scaling** — fanning a grid across ``--jobs N`` worker
   processes beats the serial run wall-clock while staying bit-identical.

Runnable two ways:

* under pytest-benchmark (tier-2): ``pytest benchmarks/bench_sweep_scaling.py``
* standalone: ``PYTHONPATH=src python benchmarks/bench_sweep_scaling.py
  [--smoke] [--json BENCH_sweep.json]`` — the CI smoke job runs
  ``--smoke``; the default output file is ``BENCH_sweep.json``.
"""

import argparse
import json
import os
import sys
import time

from repro.core import PIFTConfig
from repro.sweep import GridSpec, TraceCache, run_sweep

#: The full measurement grid: 4x4 configs x 2 rates = 32 cells.
FULL_GRID = GridSpec(
    window_sizes=(1, 5, 13, 20),
    propagation_caps=(1, 3, 6, 10),
    rates=(0.0, 1e-2),
    seed=1,
)

#: Reduced grid for the CI smoke job.
SMOKE_GRID = GridSpec(
    window_sizes=(5, 13),
    propagation_caps=(2, 3),
    rates=(0.0,),
    seed=1,
)


def primed_cache() -> TraceCache:
    cache = TraceCache()
    cache.prime(droidbench=True)
    cache.prime_replay_state()
    return cache


# -- pytest-benchmark entry points ------------------------------------------


def test_batch_replay_beats_per_event(benchmark, suite_runs):
    """The column fast path outruns per-event observe on the same work."""
    from repro.core.events import EventColumns
    from repro.core.tracker import PIFTTracker

    config = PIFTConfig(13, 3)
    runs = suite_runs
    columns = [EventColumns.from_events(app.recorded.trace) for app in runs]

    def per_event():
        total = 0
        for app in runs:
            tracker = PIFTTracker(config)
            for event in app.recorded.trace:
                tracker.observe(event)
            total += tracker.stats.instructions_observed
        return total

    def batched():
        total = 0
        for encoded in columns:
            tracker = PIFTTracker(config)
            tracker.observe_batch(encoded)
            total += tracker.stats.instructions_observed
        return total

    started = time.perf_counter()
    baseline = per_event()
    per_event_seconds = time.perf_counter() - started
    fast = benchmark.pedantic(batched, rounds=3, iterations=1)
    assert fast == baseline  # identical accounting, only faster
    batched_seconds = benchmark.stats.stats.mean
    speedup = per_event_seconds / batched_seconds
    print(f"\nbatch fast path: {per_event_seconds:.3f}s per-event vs "
          f"{batched_seconds:.3f}s batched ({speedup:.2f}x)")
    benchmark.extra_info["per_event_seconds"] = per_event_seconds
    benchmark.extra_info["speedup"] = speedup
    assert speedup > 1.0


def test_parallel_sweep_matches_serial(benchmark, suite_runs):
    """jobs=2 returns byte-identical cells to jobs=1 on a real grid."""
    cache = TraceCache(droidbench=suite_runs)
    cache.prime_replay_state()
    serial = run_sweep(SMOKE_GRID, cache=cache, jobs=1)
    parallel = benchmark.pedantic(
        lambda: run_sweep(SMOKE_GRID, cache=cache, jobs=2),
        rounds=1, iterations=1,
    )
    assert json.dumps(serial.as_dict(), sort_keys=True) == json.dumps(
        parallel.as_dict(), sort_keys=True
    )


# -- standalone mode ---------------------------------------------------------


def measure(grid: GridSpec, jobs_axis, cache: TraceCache) -> dict:
    """Run the grid at each worker count; verify parity; report timings."""
    runs = []
    reference = None
    for jobs in jobs_axis:
        result = run_sweep(grid, cache=cache, jobs=jobs)
        digest = json.dumps(result.as_dict(), sort_keys=True)
        if reference is None:
            reference = digest
        timings = result.timings()
        timings["identical_to_serial"] = digest == reference
        runs.append(timings)
        print(
            f"jobs={jobs}: {timings['wall_seconds']:.2f}s wall, "
            f"{len(timings['workers'])} worker pids, "
            f"identical={timings['identical_to_serial']}",
            file=sys.stderr,
        )
    serial_wall = runs[0]["wall_seconds"]
    for row in runs:
        row["speedup_vs_serial"] = (
            serial_wall / row["wall_seconds"] if row["wall_seconds"] else 0.0
        )
    return {
        "grid_cells": len(grid),
        "jobs_axis": list(jobs_axis),
        "runs": runs,
        "all_identical": all(row["identical_to_serial"] for row in runs),
        "best_speedup": max(row["speedup_vs_serial"] for row in runs),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="PIFT sweep-engine scaling benchmark (standalone mode)"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid for CI (fewer cells, jobs 1-2)")
    parser.add_argument("--json", metavar="PATH", default="BENCH_sweep.json",
                        help="write results here (default BENCH_sweep.json)")
    args = parser.parse_args(argv)

    cache = primed_cache()
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count() or 1
    if args.smoke:
        grid, jobs_axis = SMOKE_GRID, (1, 2)
    else:
        grid, jobs_axis = FULL_GRID, (1, 2, min(8, max(2, cpus)))

    payload = {
        "mode": "smoke" if args.smoke else "full",
        "available_cpus": cpus,
        "scaling": measure(grid, jobs_axis, cache),
    }
    print(json.dumps(payload, indent=2))
    with open(args.json, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)

    ok = payload["scaling"]["all_identical"]
    if not args.smoke and cpus > 1:
        # With real cores available, parallel must beat serial wall-clock.
        # (On a single-CPU box the pool can only add overhead; parity is
        # still asserted, the speedup claim is not testable.)
        ok = ok and payload["scaling"]["best_speedup"] > 1.0
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

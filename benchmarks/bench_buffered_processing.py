"""Extension — off-critical-path (buffered) tracking: §1's trade quantified.

    "…it is possible to move information-flow tracking off the critical
    path in the architecture, such that the load–store stream is buffered
    for delayed processing at a more convenient time (while trading
    prevention for detection, of course)."

The bench replays the LGRoot stream through a bounded FIFO and measures
both sink-check disciplines: blocking (prevention: drain, then answer)
and immediate (detection: answer from stale state, reconcile later).
"""

from repro.core import PAPER_DEFAULT
from repro.core.buffered import BufferedPIFT


def _feed(buffered, recorded, check_mode: str):
    sources = sorted(recorded.sources, key=lambda s: s.instruction_index)
    checks = sorted(recorded.sink_checks, key=lambda c: c.instruction_index)
    source_i = check_i = 0
    verdicts = []
    for event in recorded.trace:
        while (
            source_i < len(sources)
            and sources[source_i].instruction_index <= event.instruction_index
        ):
            buffered.taint_source(sources[source_i].address_range)
            source_i += 1
        while (
            check_i < len(checks)
            and checks[check_i].instruction_index <= event.instruction_index
        ):
            check = checks[check_i]
            if check_mode == "blocking":
                verdicts.append(buffered.check_blocking(check.address_range))
            else:
                verdicts.append(
                    buffered.check_immediate(
                        check.address_range, sink_name=check.sink_name
                    )
                )
            check_i += 1
        buffered.on_memory_event(event)
    buffered.drain_all()
    for check in checks[check_i:]:
        if check_mode == "blocking":
            verdicts.append(buffered.check_blocking(check.address_range))
        else:
            verdicts.append(
                buffered.check_immediate(
                    check.address_range, sink_name=check.sink_name
                )
            )
    return verdicts


def test_blocking_checks_preserve_prevention(benchmark, lgroot_trace):
    def run():
        buffered = BufferedPIFT(PAPER_DEFAULT, capacity=512, drain_batch=128)
        verdicts = _feed(buffered, lgroot_trace, "blocking")
        return buffered, verdicts

    buffered, verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = buffered.stats
    print(
        f"\nblocking discipline: {stats.blocking_checks} checks had to wait "
        f"for {stats.blocking_drain_events} buffered events in total; "
        f"max queue depth {stats.max_queue_depth}"
    )
    # Prevention semantics: the leak is flagged at the sink, synchronously.
    assert any(verdicts)
    assert stats.stale_negatives == 0


def test_immediate_checks_trade_prevention_for_detection(benchmark, lgroot_trace):
    def run():
        # A capacity larger than the trace tail keeps the flow in flight at
        # sink time — the worst case for prevention.
        buffered = BufferedPIFT(
            PAPER_DEFAULT, capacity=1_000_000, drain_batch=4096
        )
        verdicts = _feed(buffered, lgroot_trace, "immediate")
        return buffered, verdicts

    buffered, verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = buffered.stats
    print(
        f"\nimmediate discipline: {stats.immediate_checks} checks answered "
        f"from stale state; {stats.stale_negatives} would-be misses "
        f"reported late (max queue depth {stats.max_queue_depth})"
    )
    # Detection semantics: nothing is lost — every in-flight leak missed at
    # the sink surfaces as a late detection after the drain.
    missed_then_found = stats.stale_negatives
    assert (any(verdicts) and not missed_then_found) or missed_then_found > 0
    if missed_then_found:
        (late, *_) = buffered.late_detections
        print(
            f"late detection of {late.sink_name}: the answer lagged the CPU "
            f"by {late.events_behind} memory events"
        )


def test_small_buffer_bounds_staleness(benchmark, lgroot_trace):
    def run():
        buffered = BufferedPIFT(PAPER_DEFAULT, capacity=64, drain_batch=32)
        _feed(buffered, lgroot_trace, "immediate")
        return buffered

    buffered = benchmark.pedantic(run, rounds=1, iterations=1)
    # The FIFO watermark bounds how far taint state can lag the CPU.
    assert buffered.stats.max_queue_depth <= 64
    print(
        f"\ncapacity-64 FIFO: {buffered.stats.drains} drains, "
        f"{buffered.stats.events_drained} events, "
        f"{buffered.stats.stale_negatives} stale answers"
    )

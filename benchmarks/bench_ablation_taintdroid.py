"""Ablation — three-way tracker comparison on the DroidBench suite.

The paper positions PIFT between TaintDroid (software, variable-level,
per-instruction interpreter instrumentation) and hardware full DIFT.
Running PIFT and a TaintDroid-style tracker side by side on the same
executions exposes their complementary blind spots:

* PIFT (13, 3): misses the division-laundered flow (window too short),
  zero false positives;
* TaintDroid-style: exact on register dataflow (catches the division
  flow), but false-alarms on array-granularity apps and misses the pure
  control-flow obfuscations that PIFT catches by temporal locality.
"""

from repro.core.config import PIFTConfig
from repro.android import AndroidDevice
from repro.baseline import TaintDroidTracker
from repro.apps.droidbench import all_apps


def _run_suite_with_both():
    rows = []
    for app in all_apps():
        device = AndroidDevice(config=PIFTConfig(13, 3))
        tracker = TaintDroidTracker().attach(device.vm)
        device.install(app.build(device))
        device.run(app.entry)
        rows.append(
            (app.name, app.leaks, device.leak_detected, tracker.leak_detected)
        )
    return rows


def _score(rows, column):
    correct = sum(1 for _, truth, pift, td in rows
                  if (pift if column == "pift" else td) == truth)
    fps = [name for name, truth, pift, td in rows
           if not truth and (pift if column == "pift" else td)]
    fns = [name for name, truth, pift, td in rows
           if truth and not (pift if column == "pift" else td)]
    return correct / len(rows), fps, fns


def test_three_way_tracker_comparison(benchmark):
    rows = benchmark.pedantic(_run_suite_with_both, rounds=1, iterations=1)
    pift_acc, pift_fps, pift_fns = _score(rows, "pift")
    td_acc, td_fps, td_fns = _score(rows, "td")
    print(
        f"\nDroidBench (57 apps) at the paper's operating point:"
        f"\n  PIFT (13,3):      {pift_acc * 100:5.1f}%  FP={len(pift_fps)}"
        f" FN={len(pift_fns)} {pift_fns}"
        f"\n  TaintDroid-style: {td_acc * 100:5.1f}%  FP={len(td_fps)}"
        f" {td_fps}"
        f"\n                    FN={len(td_fns)} {td_fns}"
    )
    # PIFT's published profile.
    assert pift_acc > 0.98 and not pift_fps
    assert pift_fns == ["ImplicitFlows.ImplicitFlow2"]
    # TaintDroid's documented profile: array-granularity false positives...
    assert set(td_fps) == {
        "ArraysAndLists.ArrayAccess1",
        "ArraysAndLists.ArrayAccess2",
        "ArraysAndLists.ListAccess1",
    }
    # ...misses pure control-flow obfuscation (PIFT catches those two)...
    assert set(td_fns) == {
        "ImplicitFlows.ImplicitFlow1",
        "ImplicitFlows.ImplicitFlow3",
    }
    # ...and catches the division flow PIFT misses at (13, 3).
    assert "ImplicitFlows.ImplicitFlow2" not in td_fns
    benchmark.extra_info["pift_accuracy"] = round(pift_acc, 4)
    benchmark.extra_info["taintdroid_accuracy"] = round(td_acc, 4)

"""Figures 18 and 19 — the effect of untainting on the maximum tainted
size and on the number of distinct ranges (LGRoot, NT = 3).

Reproduced observations:
* untainting yields large reductions in tainted-region size (the paper
  sees ~26x at NI=5, NT=3) and in range count (>60x there);
* without untainting, varying the window size makes little difference;
* with untainting, shorter windows keep significantly less state.
"""

from repro.core.config import PIFTConfig
from repro.analysis.overhead import untainting_effect

CONFIGS = [PIFTConfig(ni, 3) for ni in (5, 10, 15, 20)]


def test_fig18_19_untainting_effect(benchmark, lgroot_trace):
    effects = benchmark.pedantic(
        untainting_effect, args=(lgroot_trace, CONFIGS), rounds=1, iterations=1
    )
    print("\nFigures 18/19: effect of untainting (NT = 3)")
    print(f"{'NI':>4} {'bytes w/':>10} {'bytes w/o':>10} {'x':>6} "
          f"{'ranges w/':>10} {'ranges w/o':>11} {'x':>6}")
    for effect in effects:
        print(
            f"{effect.config.window_size:>4} "
            f"{effect.max_tainted_bytes_with:>10} "
            f"{effect.max_tainted_bytes_without:>10} "
            f"{effect.size_reduction_factor:>6.1f} "
            f"{effect.max_ranges_with:>10} "
            f"{effect.max_ranges_without:>11} "
            f"{effect.range_reduction_factor:>6.1f}"
        )
    for effect in effects:
        # Untainting never keeps more tainted BYTES.  (Range counts may
        # fluctuate slightly upward: removing the middle of a range splits
        # it into two fragments.)
        assert effect.max_tainted_bytes_with <= effect.max_tainted_bytes_without
        assert effect.max_ranges_with <= effect.max_ranges_without + 8
    # Significant reduction at the small-window end.  The paper sees 26x /
    # 60x on a 4.5-billion-instruction trace; the factor scales with how
    # long mistaint has to accumulate, so this ~10^5-instruction trace
    # shows the same direction at a smaller magnitude (see EXPERIMENTS.md).
    smallest = effects[0]
    assert smallest.size_reduction_factor >= 1.5
    assert smallest.range_reduction_factor >= 2.0
    # Untainting helps most at the small-window end (the paper's shape).
    factors = [e.size_reduction_factor for e in effects]
    assert factors[0] == max(factors)
    # ...with untainting, the shortest window keeps the least state.
    with_untaint = [e.max_tainted_bytes_with for e in effects]
    assert with_untaint[0] == min(with_untaint)
    benchmark.extra_info["size_reduction_ni5"] = round(
        smallest.size_reduction_factor, 1
    )
    benchmark.extra_info["range_reduction_ni5"] = round(
        smallest.range_reduction_factor, 1
    )


def test_untainting_preserves_detection(benchmark, suite_runs):
    """The paper: 'untaintings do not degrade the detection accuracy while
    significantly reducing the tainted regions'."""
    from repro.core.config import PAPER_DEFAULT
    from repro.analysis.accuracy import evaluate_suite

    def both():
        with_untaint = evaluate_suite(suite_runs, PAPER_DEFAULT)
        without_untaint = evaluate_suite(
            suite_runs, PAPER_DEFAULT.with_untainting(False)
        )
        return with_untaint, without_untaint

    with_untaint, without_untaint = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    print(
        f"\naccuracy with untainting:    {with_untaint.accuracy * 100:.1f}%"
        f"\naccuracy without untainting: {without_untaint.accuracy * 100:.1f}%"
    )
    assert with_untaint.accuracy >= without_untaint.accuracy - 1e-9
    assert with_untaint.false_positives == 0

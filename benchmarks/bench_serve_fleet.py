"""Fleet throughput and migration latency of the `repro serve` daemon.

Two service-level numbers on top of the tracker microbenchmarks:

* **Fleet throughput** — events/sec sustained end-to-end through the
  daemon (JSON framing, unix socket, router, shard FIFOs, drain
  workers) by N concurrent devices streaming synthetic runs, measured
  via :func:`repro.serve.fleet.run_fleet_sync` — the same harness that
  proves parity, so the number is for *verified-correct* streaming.
* **Drain latency** — the wall-clock cost of one admin ``drain`` +
  ``restore`` round-trip (snapshot over the wire and back) against a
  shard with live state, i.e. how long a key is parked during a
  migration.

Runnable two ways:

* under pytest-benchmark (tier-2): ``pytest benchmarks/bench_serve_fleet.py``
* standalone: ``PYTHONPATH=src python benchmarks/bench_serve_fleet.py
  [--smoke] [--json BENCH_serve.json] [--history BENCH_history.jsonl]
  [--gate]`` — appends one summary line to the shared history file and,
  with ``--gate``, exits non-zero if ``serve_throughput_eps`` regressed
  more than 25% against the history median (:mod:`repro.perf`).  Like
  the tracker gate, the metric is calibration-normalised (daemon
  events/s divided by a plain-Python loop's ops/s in the same process),
  so it is dimensionless and robust across CI machines; the raw
  events/s ride along in the record as ``serve_events_per_second``.
"""

import argparse
import asyncio
import json
import sys
import time

import pytest

from repro import perf
from repro.android.device import RecordedRun, SinkCheck, SourceRegistration
from repro.core.config import PIFTConfig
from repro.core.events import EventTrace, load, store
from repro.core.ranges import AddressRange
from repro.serve.client import AdminClient, DeviceClient
from repro.serve.fleet import run_fleet_sync
from repro.serve.router import ShardRouter
from repro.serve.server import PIFTServer

#: The history-record key this benchmark gates on (normalised).
GATE_METRIC = "serve_throughput_eps"

CONFIG = PIFTConfig(5, 2)


def make_run(rounds, pids=(0, 1)):
    """A leak-and-check run, sized by ``rounds`` events per pid."""
    events, sources, checks = [], [], []
    top = 0
    for i, pid in enumerate(pids):
        src = 0x1000 + 0x100000 * i
        dst = 0x8000 + 0x100000 * i
        sources.append(
            SourceRegistration(
                AddressRange(src, src + 0xF), 0, f"src-{pid}", pid=pid
            )
        )
        index = 1
        for r in range(rounds):
            events.append(load(src, src + 3, index, pid))
            events.append(store(dst + 4 * (r % 64), dst + 4 * (r % 64) + 3,
                                index + 1, pid))
            index += 3
        checks.append(
            SinkCheck(AddressRange(dst, dst + 255), index,
                      f"sink-{pid}", "net", pid=pid)
        )
        top = max(top, index + 1)
    return RecordedRun(
        trace=EventTrace(events, instruction_count=top),
        sources=sources,
        sink_checks=checks,
    )


def make_suite(runs, rounds):
    return [(f"bench-{i}", make_run(rounds)) for i in range(runs)]


def run_bench_fleet(runs=8, rounds=400, devices=4):
    report = run_fleet_sync(
        make_suite(runs, rounds), devices=devices, config=CONFIG
    )
    assert report["parity"], "benchmark fleet lost parity"
    return report


# -- pytest-benchmark entries ------------------------------------------------


def test_fleet_throughput(benchmark):
    report = benchmark.pedantic(run_bench_fleet, rounds=1, iterations=1)
    print(f"\nfleet: {report['events_per_s']:,.0f} events/s "
          f"({report['devices']} devices, {report['runs']} runs)")
    benchmark.extra_info["events_per_s"] = report["events_per_s"]
    assert report["parity"]


def test_drain_restore_latency(benchmark):
    latency = benchmark.pedantic(
        lambda: measure_drain_latency(rounds=200, cycles=10),
        rounds=1, iterations=1,
    )
    print(f"\ndrain+restore round-trip: {latency['drain_ms_median']:.2f} ms "
          f"median over {latency['cycles']} cycles")
    assert latency["drain_ms_median"] > 0


# -- standalone measurements -------------------------------------------------


def calibration_rate(iterations=1_000_000, rounds=3):
    """Machine-speed yardstick (same species as the tracker gate's)."""
    best = float("inf")
    for _ in range(rounds):
        acc = 0
        started = time.perf_counter()
        for i in range(iterations):
            if acc <= i:
                acc += 1
        best = min(best, time.perf_counter() - started)
    return iterations / best


def measure_throughput(runs, rounds, devices=4, best_of=3):
    """Best-of-N fleet events/s plus the normalised gate metric."""
    best = None
    for _ in range(best_of):
        report = run_bench_fleet(runs=runs, rounds=rounds, devices=devices)
        if best is None or report["events_per_s"] > best["events_per_s"]:
            best = report
    calibration = calibration_rate()
    return {
        "devices": best["devices"],
        "runs": best["runs"],
        "events_streamed": best["events_streamed"],
        "elapsed_s": best["elapsed_s"],
        "events_per_second": best["events_per_s"],
        "calibration_ops_per_second": calibration,
        GATE_METRIC: best["events_per_s"] / calibration,
    }


def measure_drain_latency(rounds=2000, cycles=20):
    """Median admin drain+restore round-trip against a loaded shard."""
    import tempfile

    recorded = make_run(rounds, pids=(0,))

    async def scenario():
        with tempfile.TemporaryDirectory(prefix="pift-bench-") as tmp:
            path = f"{tmp}/serve.sock"
            router = ShardRouter(CONFIG, workers=2)
            server = PIFTServer(router)
            await server.start(unix_path=path)
            client = await DeviceClient.connect("bench", unix_path=path)
            await client.stream_run(recorded)
            admin = await AdminClient.connect(unix_path=path)
            samples = []
            for cycle in range(cycles):
                started = time.perf_counter()
                snapshot = await admin.drain("bench", 0)
                await admin.restore(snapshot, worker=cycle % 2)
                samples.append(time.perf_counter() - started)
            snapshot_bytes = len(json.dumps(snapshot))
            await admin.close()
            await client.end()
            await server.stop()
            return samples, snapshot_bytes

    samples, snapshot_bytes = asyncio.run(scenario())
    samples.sort()
    return {
        "cycles": cycles,
        "shard_events": len(recorded.trace.events),
        "snapshot_bytes": snapshot_bytes,
        "drain_ms_median": samples[len(samples) // 2] * 1000,
        "drain_ms_worst": samples[-1] * 1000,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="PIFT serve fleet benchmark (standalone mode)"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="smaller fleet workload for CI")
    parser.add_argument("--json", metavar="PATH",
                        default="BENCH_serve.json",
                        help="write results here (default BENCH_serve.json)")
    parser.add_argument("--history", metavar="PATH",
                        default="BENCH_history.jsonl",
                        help="append one summary line per run here "
                             "(default BENCH_history.jsonl)")
    parser.add_argument("--gate", action="store_true",
                        help="fail if normalised fleet throughput "
                             f"regressed >{perf.REGRESSION_TOLERANCE:.0%} "
                             "vs the history baseline (median)")
    args = parser.parse_args(argv)

    if args.smoke:
        throughput = measure_throughput(runs=6, rounds=150, best_of=2)
        latency = measure_drain_latency(rounds=400, cycles=10)
    else:
        throughput = measure_throughput(runs=12, rounds=600)
        latency = measure_drain_latency(rounds=4000, cycles=30)
    payload = {
        "mode": "smoke" if args.smoke else "full",
        "throughput": throughput,
        "drain_latency": latency,
    }
    print(
        f"fleet: {throughput['events_per_second']:,.0f} events/s over "
        f"{throughput['events_streamed']} events "
        f"({throughput['devices']} devices); drain+restore "
        f"{latency['drain_ms_median']:.2f} ms median "
        f"({latency['snapshot_bytes']} snapshot bytes); "
        f"normalized {throughput[GATE_METRIC]:.4f}",
        file=sys.stderr,
    )
    print(json.dumps(payload, indent=2))
    with open(args.json, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)

    history = perf.load_history(args.history, GATE_METRIC)
    gate_ok, baseline = perf.check_regression(
        history, throughput[GATE_METRIC], GATE_METRIC
    )
    perf.append_history(args.history, {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": payload["mode"],
        GATE_METRIC: throughput[GATE_METRIC],
        "serve_events_per_second": throughput["events_per_second"],
        "calibration_ops_per_second": (
            throughput["calibration_ops_per_second"]
        ),
        "drain_ms_median": latency["drain_ms_median"],
        "devices": throughput["devices"],
    })
    if baseline is not None:
        print(
            f"regression gate: current {throughput[GATE_METRIC]:.4f} vs "
            f"baseline {baseline:.4f} (median of {len(history)} runs) "
            f"-> {'ok' if gate_ok else 'REGRESSED'}",
            file=sys.stderr,
        )
    return 0 if (gate_ok or not args.gate) else 1


if __name__ == "__main__":
    sys.exit(main())

"""Extension — queue-backend resilience under worker mortality.

The fault-tolerant queue backend (``run_sweep(backend="queue")``) claims
two things the pool backend cannot:

1. **Survival** — a sweep with workers being SIGKILLed mid-cell still
   completes, without ``--resume``, and the grid is bit-identical to a
   fault-free serial run (leases requeue the lost cells; pure cells
   recompute identical results).
2. **Bounded overhead** — at 20% per-attempt worker mortality
   (``kill-workers:0.2``), wall time stays within
   :data:`MAX_MORTALITY_RATIO` (1.5x) of the fault-free queue run on the
   same grid.  Dead workers only cost the lost attempt's partial work,
   a short requeue backoff, and a respawn — all overlapped with the
   surviving workers' progress.

Runnable two ways:

* under pytest-benchmark (tier-2):
  ``pytest benchmarks/bench_queue_resilience.py``
* standalone: ``PYTHONPATH=src python benchmarks/bench_queue_resilience.py
  [--smoke] [--json BENCH_queue.json] [--history BENCH_history.jsonl]
  [--gate]`` — ``--gate`` exits non-zero when parity breaks, when chaos
  failed to actually kill workers, or when the mortality ratio exceeds
  the bar.  The ratio is dimensionless (chaos wall / fault-free wall on
  the same machine, same grid), so the gate is robust to CI hosts of
  different speeds.
"""

import argparse
import json
import sys
import time

from repro import perf
from repro.sweep import (
    BackoffPolicy,
    ChaosPlan,
    GridSpec,
    TraceCache,
    run_sweep,
)

#: Chaos wall time must stay within this factor of the fault-free queue
#: run at 20% per-attempt worker mortality.
MAX_MORTALITY_RATIO = 1.5

#: The smoke grid's bar carries slack: with only 32 cells a handful of
#: deaths is a much larger fraction of the wall time, and CI runners are
#: slow and noisy — the 1.5x headline claim is measured on the full grid.
SMOKE_MAX_MORTALITY_RATIO = 2.0

#: Per-attempt SIGKILL probability the headline claim is measured at.
MORTALITY = 0.2

#: Deterministic seed for the chaos schedule (and backoff jitter).
CHAOS_SEED = 7

#: The history-record key this benchmark tracks (lower is better; the
#: gate is the absolute MAX_MORTALITY_RATIO bar, not history-relative).
GATE_METRIC = "mortality_ratio"

#: 48 cells — enough work that respawn/backoff overhead amortises the
#: way it does on real grids (on a handful of cells a single death is a
#: large fraction of the wall time and the ratio is pure noise).
FULL_GRID = GridSpec(
    window_sizes=(1, 5, 13, 20),
    propagation_caps=(1, 3, 6, 10),
    rates=(0.0, 1e-2, 1e-1),
    seed=1,
)

#: Reduced grid for the CI smoke job (parity still asserted; the ratio
#: is measured best-of-two against the relaxed smoke bar).
SMOKE_GRID = GridSpec(
    window_sizes=(1, 5, 13, 20),
    propagation_caps=(1, 3, 6, 10),
    rates=(0.0, 1e-2),
    seed=1,
)

#: Snappy failure handling for benchmark-scale cells: cells finish in
#: tens of milliseconds, so second-scale production defaults would
#: measure the backoff policy, not the dispatcher.
QUEUE_OPTIONS = {
    "lease_timeout": 5.0,
    "heartbeat_interval": 0.05,
    "backoff": BackoffPolicy(base=0.02, cap=0.2, seed=CHAOS_SEED),
}


def primed_cache() -> TraceCache:
    cache = TraceCache()
    cache.prime(droidbench=True)
    cache.prime_replay_state()
    return cache


def _digest(result) -> str:
    return json.dumps(result.as_dict(), sort_keys=True)


def measure_resilience(
    grid: GridSpec, cache: TraceCache, jobs: int = 4, trials: int = 2
) -> dict:
    """Serial reference, fault-free queue, chaos queue; best-of-trials."""
    serial = run_sweep(grid, cache=cache, jobs=1)
    reference = _digest(serial)
    chaos_plan = ChaosPlan.parse(f"kill-workers:{MORTALITY}", seed=CHAOS_SEED)

    clean_wall = chaos_wall = float("inf")
    deaths = retries = restarts = 0
    identical = True
    for _ in range(trials):
        started = time.perf_counter()
        clean = run_sweep(
            grid, cache=cache, jobs=jobs,
            backend="queue", backend_options=dict(QUEUE_OPTIONS),
        )
        clean_wall = min(clean_wall, time.perf_counter() - started)
        identical = identical and _digest(clean) == reference

        started = time.perf_counter()
        chaos = run_sweep(
            grid, cache=cache, jobs=jobs,
            backend="queue",
            backend_options={**QUEUE_OPTIONS, "chaos": chaos_plan},
        )
        chaos_wall = min(chaos_wall, time.perf_counter() - started)
        identical = identical and _digest(chaos) == reference
        deaths = chaos.worker_deaths
        retries = chaos.retries
        restarts = chaos.worker_restarts
        identical = identical and not chaos.poisoned

    ratio = chaos_wall / clean_wall if clean_wall else float("inf")
    return {
        "grid_cells": len(grid),
        "jobs": jobs,
        "mortality": MORTALITY,
        "clean_wall_seconds": clean_wall,
        "chaos_wall_seconds": chaos_wall,
        "mortality_ratio": ratio,
        "worker_deaths": deaths,
        "retries": retries,
        "worker_restarts": restarts,
        "identical": identical,
    }


# -- pytest-benchmark entry points ------------------------------------------


def test_queue_backend_matches_pool(benchmark, suite_runs):
    """Fault-free queue backend is bit-identical to serial and the pool."""
    cache = TraceCache(droidbench=suite_runs)
    cache.prime_replay_state()
    serial = run_sweep(SMOKE_GRID, cache=cache, jobs=1)
    queued = benchmark.pedantic(
        lambda: run_sweep(
            SMOKE_GRID, cache=cache, jobs=2,
            backend="queue", backend_options=dict(QUEUE_OPTIONS),
        ),
        rounds=1, iterations=1,
    )
    assert _digest(queued) == _digest(serial)
    assert queued.worker_deaths == 0 and not queued.poisoned


def test_chaos_mortality_parity_and_overhead(benchmark, suite_runs):
    """20% mortality: grid survives bit-identical, overhead bounded."""
    cache = TraceCache(droidbench=suite_runs)
    cache.prime_replay_state()
    serial = run_sweep(FULL_GRID, cache=cache, jobs=1)
    chaos_plan = ChaosPlan.parse(f"kill-workers:{MORTALITY}", seed=CHAOS_SEED)

    started = time.perf_counter()
    clean = run_sweep(
        FULL_GRID, cache=cache, jobs=4,
        backend="queue", backend_options=dict(QUEUE_OPTIONS),
    )
    clean_wall = time.perf_counter() - started
    chaos = benchmark.pedantic(
        lambda: run_sweep(
            FULL_GRID, cache=cache, jobs=4,
            backend="queue",
            backend_options={**QUEUE_OPTIONS, "chaos": chaos_plan},
        ),
        rounds=1, iterations=1,
    )
    chaos_wall = benchmark.stats.stats.mean
    assert _digest(clean) == _digest(serial)
    assert _digest(chaos) == _digest(serial)
    assert chaos.worker_deaths > 0, "chaos schedule killed nobody"
    assert not chaos.poisoned
    ratio = chaos_wall / clean_wall
    print(
        f"\nqueue resilience: {clean_wall:.2f}s fault-free vs "
        f"{chaos_wall:.2f}s at {MORTALITY:.0%} mortality "
        f"({ratio:.2f}x, {chaos.worker_deaths} deaths, "
        f"{chaos.retries} retries)"
    )
    benchmark.extra_info["mortality_ratio"] = ratio
    benchmark.extra_info["worker_deaths"] = chaos.worker_deaths
    assert ratio <= MAX_MORTALITY_RATIO


# -- standalone mode ---------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="PIFT queue-backend resilience benchmark (standalone)"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid + relaxed ratio bar for CI")
    parser.add_argument("--json", metavar="PATH", default="BENCH_queue.json",
                        help="write results here (default BENCH_queue.json)")
    parser.add_argument("--history", metavar="PATH",
                        default="BENCH_history.jsonl",
                        help="append one summary line per run here "
                             "(default BENCH_history.jsonl)")
    parser.add_argument("--gate", action="store_true",
                        help=f"fail unless the grid survives bit-identical "
                             f"with workers actually dying and the wall-time "
                             f"ratio stays <= {MAX_MORTALITY_RATIO}x")
    args = parser.parse_args(argv)

    cache = primed_cache()
    grid = SMOKE_GRID if args.smoke else FULL_GRID
    bar = SMOKE_MAX_MORTALITY_RATIO if args.smoke else MAX_MORTALITY_RATIO
    result = measure_resilience(grid, cache, trials=2)
    print(
        f"queue resilience: {result['clean_wall_seconds']:.2f}s fault-free "
        f"vs {result['chaos_wall_seconds']:.2f}s at "
        f"{result['mortality']:.0%} mortality "
        f"({result['mortality_ratio']:.2f}x, "
        f"{result['worker_deaths']} deaths, {result['retries']} retries, "
        f"{result['worker_restarts']} respawns, "
        f"identical={result['identical']})",
        file=sys.stderr,
    )
    payload = {"mode": "smoke" if args.smoke else "full", **result}
    print(json.dumps(payload, indent=2))
    with open(args.json, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    perf.append_history(args.history, {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": payload["mode"],
        GATE_METRIC: result["mortality_ratio"],
        "worker_deaths": result["worker_deaths"],
        "retries": result["retries"],
        "identical": result["identical"],
    })

    ok = result["identical"] and result["worker_deaths"] > 0
    if args.gate:
        ok = ok and result["mortality_ratio"] <= bar
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

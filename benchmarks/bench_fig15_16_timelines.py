"""Figures 15 and 16 — tainted-region size and cumulative taint/untaint
operations over time, for the paper's parameter combinations, on LGRoot.

Reproduced observations:
* larger windows keep more state: the (NI, 3) curves order by NI;
* the cumulative operation count grows with the window parameters;
* quiet periods ("inactivity on the sensitive data") leave flat stretches
  in both curves.
"""

from repro.core.config import PIFTConfig
from repro.analysis.overhead import taint_timelines

CONFIGS = [
    PIFTConfig(5, 1), PIFTConfig(5, 3),
    PIFTConfig(10, 3), PIFTConfig(15, 3), PIFTConfig(20, 3),
]


def _series(timeline, points=8):
    if not timeline:
        return []
    step = max(len(timeline) // points, 1)
    return timeline[::step]


def test_fig15_tainted_size_over_time(benchmark, lgroot_trace):
    timelines = benchmark.pedantic(
        taint_timelines, args=(lgroot_trace, CONFIGS), rounds=1, iterations=1
    )
    print("\nFigure 15: tainted bytes over time (sampled)")
    finals = {}
    peaks = {}
    for config in CONFIGS:
        timeline = timelines[config]
        peaks[config] = max((p.tainted_bytes for p in timeline), default=0)
        finals[config] = timeline[-1].tainted_bytes if timeline else 0
        samples = " ".join(
            f"{p.instruction_index}:{p.tainted_bytes}B"
            for p in _series(timeline)
        )
        print(f"  {config}: peak={peaks[config]}B  {samples}")
    # Curve ordering by window size at NT=3.
    assert peaks[PIFTConfig(10, 3)] <= peaks[PIFTConfig(15, 3)] + 64
    assert peaks[PIFTConfig(5, 3)] <= peaks[PIFTConfig(20, 3)]
    # NT matters at fixed NI.
    assert peaks[PIFTConfig(5, 1)] <= peaks[PIFTConfig(5, 3)]
    benchmark.extra_info["peaks"] = {
        str(c): peaks[c] for c in CONFIGS
    }


def test_fig16_operation_counts_over_time(benchmark, lgroot_trace):
    timelines = benchmark.pedantic(
        taint_timelines, args=(lgroot_trace, CONFIGS), rounds=1, iterations=1
    )
    print("\nFigure 16: cumulative taint+untaint operations (sampled)")
    totals = {}
    for config in CONFIGS:
        timeline = timelines[config]
        totals[config] = (
            timeline[-1].cumulative_operations if timeline else 0
        )
        samples = " ".join(
            f"{p.instruction_index}:{p.cumulative_operations}"
            for p in _series(timeline)
        )
        print(f"  {config}: total={totals[config]}  {samples}")
    # Bigger windows perform at least as many operations.
    assert totals[PIFTConfig(5, 3)] <= totals[PIFTConfig(20, 3)]
    assert totals[PIFTConfig(5, 1)] <= totals[PIFTConfig(5, 3)]
    # Cumulative counts are monotone within each curve by construction.
    for config in CONFIGS:
        ops = [p.cumulative_operations for p in timelines[config]]
        assert all(b >= a for a, b in zip(ops, ops[1:]))


def test_fig15_quiet_period_is_flat(benchmark, lgroot_trace):
    """Between the theft and the send, LGRoot's cover activity touches no
    sensitive data: the tainted-size curve has a long flat stretch."""
    timelines = benchmark.pedantic(
        taint_timelines, args=(lgroot_trace, [PIFTConfig(5, 2)]),
        rounds=1, iterations=1,
    )
    timeline = timelines[PIFTConfig(5, 2)]
    assert len(timeline) >= 2
    gaps = [
        b.instruction_index - a.instruction_index
        for a, b in zip(timeline, timeline[1:])
    ]
    span = timeline[-1].instruction_index - timeline[0].instruction_index
    assert max(gaps) > span * 0.10  # a flat stretch >10% of the active span

"""Extension — cross-process telemetry relay overhead on a parallel sweep.

The :class:`~repro.telemetry.relay.TelemetryRelay` ships every pool
worker's cell spans, heartbeats and metric deltas back to the parent hub
while a ``--jobs N`` sweep runs.  That observability must stay cheap:
the telemetered sweep may cost at most :data:`OVERHEAD_BOUND` (10%)
extra wall time over the telemetry-off sweep of the same grid, and the
grid results must stay byte-identical either way.

Runnable two ways:

* under pytest-benchmark (tier-2): ``pytest benchmarks/bench_relay_overhead.py``
* standalone: ``PYTHONPATH=src python benchmarks/bench_relay_overhead.py
  [--smoke] [--json BENCH_relay.json] [--history BENCH_history.jsonl]
  [--gate]`` — the CI smoke job runs ``--smoke --gate``; every
  standalone run appends one JSON line to the history file, and
  ``--gate`` exits non-zero when the off/on wall-time ratio either
  regressed more than :data:`REGRESSION_TOLERANCE` against the history
  baseline (median of prior runs) or fell below the absolute floor
  ``1 / (1 + OVERHEAD_BOUND)``.  The gated metric is a dimensionless
  ratio of two runs on the same machine, so it is robust to CI hosts of
  different speeds.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro import perf
from repro.sweep import GridSpec, TraceCache, run_sweep
from repro.telemetry import Telemetry

#: --gate fails when the off/on ratio drops more than this fraction
#: below the history baseline.
REGRESSION_TOLERANCE = perf.REGRESSION_TOLERANCE

#: The history-record key this benchmark gates on.
GATE_METRIC = "relay_off_over_on"

#: The relay may add at most this fraction of wall time to a sweep.
OVERHEAD_BOUND = 0.10

#: Absolute gate floor: wall_off / wall_on at exactly 10% overhead.
RATIO_FLOOR = 1.0 / (1.0 + OVERHEAD_BOUND)

#: Full measurement grid: 4x3 configs x 2 rates = 24 cells at jobs=2.
FULL_GRID = GridSpec(
    window_sizes=(1, 5, 13, 20),
    propagation_caps=(1, 3, 6),
    rates=(0.0, 1e-2),
    seed=1,
)

#: Reduced grid for the CI smoke job.  12 cells, not 4: the gate is a
#: wall-time *ratio*, and a sub-0.2s sweep leaves scheduler noise worth
#: several percent of the measurement.
SMOKE_GRID = GridSpec(
    window_sizes=(1, 5, 13, 20),
    propagation_caps=(2, 3, 6),
    rates=(0.0,),
    seed=1,
)

JOBS = 2


def primed_cache() -> TraceCache:
    cache = TraceCache()
    cache.prime(droidbench=True)
    cache.prime_replay_state()
    return cache


def _grid_digest(result) -> str:
    return json.dumps(result.as_dict(), sort_keys=True)


def _relay_accounting(telemetry: Telemetry) -> dict:
    """Parent-side relay counters from the hub's metric snapshot."""
    sweep = telemetry.snapshot().get("sweep", {})

    def value(name):
        return sweep.get(name, {}).get("value", 0)

    return {
        "events_merged": value("sweep.relay.events_merged"),
        "heartbeats": value("sweep.relay.heartbeats"),
        "dropped_events": value("sweep.relay.dropped_events"),
    }


def measure_relay_overhead(
    grid: GridSpec, cache: TraceCache, jobs: int = JOBS, rounds: int = 3
) -> dict:
    """Best-of-``rounds`` wall time, telemetry off vs on, same grid.

    The telemetered run gets a fresh :class:`Telemetry` hub each round
    so the relay (worker bootstrap, queue drain thread, heartbeats,
    metric merging) is exercised end to end exactly as ``--telemetry``
    would; the off run is the plain pool path.
    """
    timings = {}
    digests = {}
    accounting = {}
    for telemetered in (False, True):
        best = float("inf")
        for _ in range(rounds):
            telemetry = Telemetry() if telemetered else None
            started = time.perf_counter()
            result = run_sweep(grid, cache=cache, jobs=jobs,
                               telemetry=telemetry)
            best = min(best, time.perf_counter() - started)
            if telemetered:
                accounting = _relay_accounting(telemetry)
        timings[telemetered] = best
        digests[telemetered] = _grid_digest(result)
    identical = digests[False] == digests[True]
    ratio = timings[False] / timings[True] if timings[True] else 0.0
    overhead = (timings[True] / timings[False] - 1.0) if timings[False] else 0.0
    return {
        "grid_cells": len(grid),
        "jobs": jobs,
        "rounds": rounds,
        "wall_seconds_off": timings[False],
        "wall_seconds_on": timings[True],
        "relay_off_over_on": ratio,
        "relay_overhead": overhead,
        "identical": identical,
        "relay": accounting,
    }


# -- BENCH_history.jsonl + regression gate (delegates to repro.perf) ----------


def load_history(path: Path) -> list:
    """All prior records for this benchmark's gate metric."""
    return perf.load_history(path, GATE_METRIC)


def append_history(path: Path, record: dict) -> None:
    perf.append_history(path, record)


def check_regression(history: list, current: float) -> tuple:
    """(ok, baseline) — ok is False when current regressed > tolerance."""
    return perf.check_regression(history, current, GATE_METRIC)


# -- pytest-benchmark entry point --------------------------------------------


def test_relay_overhead_within_bound(benchmark, suite_runs):
    """Telemetered jobs=2 sweep: <=10% overhead, byte-identical grid."""
    cache = TraceCache(droidbench=suite_runs)
    cache.prime_replay_state()

    started = time.perf_counter()
    plain = run_sweep(SMOKE_GRID, cache=cache, jobs=JOBS)
    off_seconds = time.perf_counter() - started

    hubs = []

    def telemetered():
        hub = Telemetry()
        hubs.append(hub)
        return run_sweep(SMOKE_GRID, cache=cache, jobs=JOBS, telemetry=hub)

    relayed = benchmark.pedantic(telemetered, rounds=3, iterations=1)
    assert _grid_digest(relayed) == _grid_digest(plain)
    accounting = _relay_accounting(hubs[-1])
    assert accounting["events_merged"] > 0  # the relay actually ran
    on_seconds = benchmark.stats.stats.min
    ratio = off_seconds / on_seconds if on_seconds else 0.0
    print(f"\nrelay overhead: {off_seconds:.3f}s off vs {on_seconds:.3f}s on "
          f"(off/on {ratio:.3f}, floor {RATIO_FLOOR:.3f})")
    benchmark.extra_info["wall_seconds_off"] = off_seconds
    benchmark.extra_info["relay_off_over_on"] = ratio
    assert ratio >= RATIO_FLOOR


# -- standalone mode ---------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="PIFT telemetry-relay overhead benchmark (standalone)"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid for CI (4 cells)")
    parser.add_argument("--json", metavar="PATH", default="BENCH_relay.json",
                        help="write results here (default BENCH_relay.json)")
    parser.add_argument("--history", metavar="PATH",
                        default="BENCH_history.jsonl",
                        help="append one summary line per run here "
                             "(default BENCH_history.jsonl)")
    parser.add_argument("--gate", action="store_true",
                        help="fail if the off/on ratio regressed "
                             f">{REGRESSION_TOLERANCE:.0%} vs the history "
                             f"baseline or fell below {RATIO_FLOOR:.3f} "
                             f"({OVERHEAD_BOUND:.0%} overhead)")
    args = parser.parse_args(argv)

    cache = primed_cache()
    grid = SMOKE_GRID if args.smoke else FULL_GRID
    measured = measure_relay_overhead(grid, cache)
    print(
        f"relay overhead: {measured['wall_seconds_off']:.2f}s off vs "
        f"{measured['wall_seconds_on']:.2f}s on over "
        f"{measured['grid_cells']} cells at jobs={measured['jobs']} "
        f"(off/on {measured['relay_off_over_on']:.3f}, "
        f"overhead {measured['relay_overhead']:+.1%}, "
        f"identical={measured['identical']}); relay merged "
        f"{measured['relay']['events_merged']} events, "
        f"{measured['relay']['heartbeats']} heartbeats, "
        f"{measured['relay']['dropped_events']} dropped",
        file=sys.stderr,
    )
    payload = {"mode": "smoke" if args.smoke else "full", **measured}
    print(json.dumps(payload, indent=2))
    with open(args.json, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)

    history_path = Path(args.history)
    history = load_history(history_path)
    gate_ok, baseline = check_regression(
        history, measured["relay_off_over_on"]
    )
    append_history(history_path, {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": payload["mode"],
        "relay_off_over_on": measured["relay_off_over_on"],
        "relay_overhead": measured["relay_overhead"],
        "wall_seconds_off": measured["wall_seconds_off"],
        "wall_seconds_on": measured["wall_seconds_on"],
        "grid_cells": measured["grid_cells"],
        "jobs": measured["jobs"],
        "identical": measured["identical"],
    })
    if baseline is not None:
        print(
            f"regression gate: current {measured['relay_off_over_on']:.3f} "
            f"vs baseline {baseline:.3f} (median of {len(history)} runs) "
            f"-> {'ok' if gate_ok else 'REGRESSED'}",
            file=sys.stderr,
        )

    ok = measured["identical"]
    ok = ok and measured["relay"]["events_merged"] > 0
    if args.gate:
        ok = ok and gate_ok
        ok = ok and measured["relay_off_over_on"] >= RATIO_FLOOR
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

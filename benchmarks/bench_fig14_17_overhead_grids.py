"""Figures 14 and 17 — maximum tainted-address size and distinct-range
count over the (NI, NT) grid, on the LGRoot trace.

Reproduced observations:
* tainted regions grow with both window parameters (Figure 14);
* NT outweighs NI in its effect on the tainted-region size;
* for NI <= 10 the number of distinct ranges stays small (the paper sees
  < 100 on its trace), so a small on-chip taint memory suffices
  (Figure 17 and the 32KB sizing argument of §3.3).
"""

import numpy as np

from repro.analysis.overhead import overhead_grids

GRID_KWARGS = dict(window_sizes=range(1, 21), propagation_caps=range(1, 11))


def test_fig14_max_tainted_size_grid(benchmark, lgroot_trace):
    sizes, _ = benchmark.pedantic(
        overhead_grids, args=(lgroot_trace,), kwargs=GRID_KWARGS,
        rounds=1, iterations=1,
    )
    print("\nFigure 14: max tainted bytes over NI (cols) x NT (rows)")
    print(sizes.render("bytes"))
    values = sizes.values
    # Growth with parameters: the top-right cell dominates bottom-left.
    assert sizes.at(20, 10) >= sizes.at(1, 1)
    # Monotone along NT for the largest window.
    column = values[:, -1]
    assert np.all(np.diff(column) >= -1e-9)
    # NT outweighs NI for long windows (paper: "NT becomes a critical
    # factor for long windows"): at NI=20, raising NT 1 -> 10 grows the
    # tainted region more than raising NI 15 -> 20 does at NT=1.
    nt_span = sizes.at(20, 10) - sizes.at(20, 1)
    ni_span = sizes.at(20, 1) - sizes.at(15, 1)
    assert nt_span >= ni_span - 1e-9
    benchmark.extra_info["max_bytes_20_10"] = int(sizes.at(20, 10))
    benchmark.extra_info["max_bytes_13_3"] = int(sizes.at(13, 3))


def test_fig17_distinct_range_grid(benchmark, lgroot_trace):
    _, counts = benchmark.pedantic(
        overhead_grids, args=(lgroot_trace,), kwargs=GRID_KWARGS,
        rounds=1, iterations=1,
    )
    print("\nFigure 17: max distinct ranges over NI (cols) x NT (rows)")
    print(counts.render("ranges"))
    # Paper: "For window sizes not larger than NI = 10, there were less
    # than 100 distinct ranges at any time instant over the trace."  The
    # bound is workload-dependent; this trace stays within the same order
    # of magnitude (a couple of hundred), still trivially on-chip.
    for window in range(1, 11):
        for cap in range(1, 11):
            assert counts.at(window, cap) < 250, (window, cap)
    # The 32KB cache-of-ranges (2730 entries) would hold every observed
    # range without spilling, across the entire grid.
    assert counts.values.max() < 2730
    benchmark.extra_info["max_ranges_ni10"] = int(
        counts.values[:, :10].max()
    )
    benchmark.extra_info["max_ranges_grid"] = int(counts.values.max())

"""Tracker hot-path throughput — the cost side of the paper's design.

PIFT's premise is that per-event work is tiny: a range-overlap lookup per
load, a bounded insert/remove per store.  These microbenchmarks measure
the software model's sustained event rate on the LGRoot stream for the
tracker configurations that matter:

* the unbounded software RangeSet reference,
* the paper's 32KB cache-of-ranges hardware model,
* untainting on vs off,
* the full-DIFT baseline's per-record cost, for contrast.

Runnable two ways:

* under pytest-benchmark (tier-2): ``pytest benchmarks/bench_tracker_throughput.py``
* standalone: ``PYTHONPATH=src python benchmarks/bench_tracker_throughput.py
  [--smoke] [--json BENCH_tracker.json] [--history BENCH_history.jsonl]
  [--gate]`` — appends one summary line to the shared history file and,
  with ``--gate``, exits non-zero if the *normalised* tracker throughput
  regressed more than 25% against the history median
  (:mod:`repro.perf`).  The gated metric divides tracker events/s by a
  plain-Python calibration loop's ops/s measured in the same process, so
  it is dimensionless and robust to CI machines of different speeds.
"""

import argparse
import json
import sys
import time

import pytest

from repro import perf
from repro.core import PAPER_DEFAULT, PIFTConfig, PIFTTracker
from repro.core.taint_storage import BoundedRangeCache, entry_capacity

#: The history-record key this benchmark gates on.
GATE_METRIC = "tracker_normalized"


@pytest.fixture(scope="module")
def event_stream(lgroot_trace):
    return list(lgroot_trace.trace)


@pytest.fixture(scope="module")
def source_ranges(lgroot_trace):
    return [source.address_range for source in lgroot_trace.sources]


def _run_tracker(events, sources, config, state_factory=None):
    kwargs = {"state_factory": state_factory} if state_factory else {}
    tracker = PIFTTracker(config, **kwargs)
    for source in sources:
        tracker.taint_source(source)
    tracker.run(events)
    return tracker


def test_throughput_reference_rangeset(benchmark, event_stream, source_ranges):
    tracker = benchmark(
        _run_tracker, event_stream, source_ranges, PAPER_DEFAULT
    )
    events_per_second = len(event_stream) / benchmark.stats["mean"]
    print(f"\nRangeSet tracker: {events_per_second:,.0f} events/s "
          f"({len(event_stream)} events)")
    benchmark.extra_info["events"] = len(event_stream)
    assert tracker.stats.loads_observed > 0


def test_throughput_paper_hardware_model(benchmark, event_stream, source_ranges):
    factory = lambda: BoundedRangeCache(entry_capacity(32 * 1024))
    tracker = benchmark(
        _run_tracker, event_stream, source_ranges, PAPER_DEFAULT, factory
    )
    print(f"\n32KB cache-of-ranges model over {len(event_stream)} events")
    assert tracker.stats.loads_observed > 0


def test_throughput_untainting_off(benchmark, event_stream, source_ranges):
    tracker = benchmark(
        _run_tracker,
        event_stream,
        source_ranges,
        PAPER_DEFAULT.with_untainting(False),
    )
    assert tracker.stats.untaint_operations == 0


def test_untainting_keeps_state_small_hence_fast(
    benchmark, event_stream, source_ranges
):
    """Untainting's point is bounding the state per-event lookups run
    against; the range-count high-water marks make that visible."""
    def run_both():
        return (
            _run_tracker(event_stream, source_ranges, PAPER_DEFAULT),
            _run_tracker(
                event_stream, source_ranges,
                PAPER_DEFAULT.with_untainting(False),
            ),
        )

    with_untaint, without_untaint = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert (
        with_untaint.stats.max_range_count
        <= without_untaint.stats.max_range_count + 8
    )


def test_throughput_full_dift_baseline(benchmark):
    """Per-record cost of the byte-exact baseline on the same workload."""
    from repro.core.ranges import AddressRange
    from repro.baseline import FullDIFTTracker
    from repro.android import AndroidDevice
    from repro.apps.malware import SAMPLES

    device = AndroidDevice(config=PAPER_DEFAULT, keep_full_trace=True)
    device.install(SAMPLES[0].build(device, 64))
    device.run(SAMPLES[0].entry)
    records = device.full_trace.records
    sources = [s.address_range for s in device.recorded.sources]

    def run_baseline():
        baseline = FullDIFTTracker()
        for source in sources:
            baseline.taint_source(source)
        baseline.run(records)
        return baseline

    baseline = benchmark(run_baseline)
    print(f"\nfull DIFT over {len(records)} records "
          f"({baseline.stats.instructions_processed} instructions)")
    assert baseline.stats.instructions_processed == len(records)


# -- standalone mode: calibrated throughput + regression gate ----------------


def calibration_rate(iterations: int = 1_000_000, rounds: int = 3) -> float:
    """Machine-speed yardstick: plain-Python compare/add loop, ops/s.

    The tracker hot path is interpreted Python (compares, attribute
    walks, small-int arithmetic); a loop of the same species tracks the
    interpreter speed of the machine, so events/s divided by this rate
    is a dimensionless per-machine constant.
    """
    best = float("inf")
    for _ in range(rounds):
        acc = 0
        started = time.perf_counter()
        for i in range(iterations):
            if acc <= i:
                acc += 1
        best = min(best, time.perf_counter() - started)
    return iterations / best


def measure_throughput(work: int = 160, rounds: int = 3) -> dict:
    """RangeSet tracker events/s on the LGRoot stream, best-of-rounds."""
    from repro.apps.malware import record_lgroot_trace

    recorded = record_lgroot_trace(work=work)
    events = list(recorded.trace)
    sources = [s.address_range for s in recorded.sources]
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        tracker = _run_tracker(events, sources, PAPER_DEFAULT)
        best = min(best, time.perf_counter() - started)
    assert tracker.stats.loads_observed > 0
    calibration = calibration_rate()
    events_per_second = len(events) / best
    return {
        "work": work,
        "events": len(events),
        "tracker_seconds": best,
        "events_per_second": events_per_second,
        "calibration_ops_per_second": calibration,
        GATE_METRIC: events_per_second / calibration,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="PIFT tracker-throughput benchmark (standalone mode)"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="smaller LGRoot workload for CI")
    parser.add_argument("--json", metavar="PATH",
                        default="BENCH_tracker.json",
                        help="write results here (default BENCH_tracker.json)")
    parser.add_argument("--history", metavar="PATH",
                        default="BENCH_history.jsonl",
                        help="append one summary line per run here "
                             "(default BENCH_history.jsonl)")
    parser.add_argument("--gate", action="store_true",
                        help="fail if normalized tracker throughput "
                             f"regressed >{perf.REGRESSION_TOLERANCE:.0%} "
                             "vs the history baseline (median)")
    args = parser.parse_args(argv)

    payload = {
        "mode": "smoke" if args.smoke else "full",
        "throughput": measure_throughput(work=40 if args.smoke else 160),
    }
    throughput = payload["throughput"]
    print(
        f"tracker: {throughput['events_per_second']:,.0f} events/s over "
        f"{throughput['events']} events; calibration "
        f"{throughput['calibration_ops_per_second']:,.0f} ops/s; "
        f"normalized {throughput[GATE_METRIC]:.3f}",
        file=sys.stderr,
    )
    print(json.dumps(payload, indent=2))
    with open(args.json, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)

    history = perf.load_history(args.history, GATE_METRIC)
    gate_ok, baseline = perf.check_regression(
        history, throughput[GATE_METRIC], GATE_METRIC
    )
    perf.append_history(args.history, {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": payload["mode"],
        GATE_METRIC: throughput[GATE_METRIC],
        "events_per_second": throughput["events_per_second"],
        "calibration_ops_per_second": (
            throughput["calibration_ops_per_second"]
        ),
        "events": throughput["events"],
    })
    if baseline is not None:
        print(
            f"regression gate: current {throughput[GATE_METRIC]:.3f} vs "
            f"baseline {baseline:.3f} (median of {len(history)} runs) "
            f"-> {'ok' if gate_ok else 'REGRESSED'}",
            file=sys.stderr,
        )
    return 0 if (gate_ok or not args.gate) else 1


if __name__ == "__main__":
    sys.exit(main())

"""Tracker hot-path throughput — the cost side of the paper's design.

PIFT's premise is that per-event work is tiny: a range-overlap lookup per
load, a bounded insert/remove per store.  These microbenchmarks measure
the software model's sustained event rate on the LGRoot stream for the
tracker configurations that matter:

* the unbounded software RangeSet reference,
* the paper's 32KB cache-of-ranges hardware model,
* untainting on vs off,
* the full-DIFT baseline's per-record cost, for contrast.
"""

import pytest

from repro.core import PAPER_DEFAULT, PIFTConfig, PIFTTracker
from repro.core.taint_storage import BoundedRangeCache, entry_capacity


@pytest.fixture(scope="module")
def event_stream(lgroot_trace):
    return list(lgroot_trace.trace)


@pytest.fixture(scope="module")
def source_ranges(lgroot_trace):
    return [source.address_range for source in lgroot_trace.sources]


def _run_tracker(events, sources, config, state_factory=None):
    kwargs = {"state_factory": state_factory} if state_factory else {}
    tracker = PIFTTracker(config, **kwargs)
    for source in sources:
        tracker.taint_source(source)
    tracker.run(events)
    return tracker


def test_throughput_reference_rangeset(benchmark, event_stream, source_ranges):
    tracker = benchmark(
        _run_tracker, event_stream, source_ranges, PAPER_DEFAULT
    )
    events_per_second = len(event_stream) / benchmark.stats["mean"]
    print(f"\nRangeSet tracker: {events_per_second:,.0f} events/s "
          f"({len(event_stream)} events)")
    benchmark.extra_info["events"] = len(event_stream)
    assert tracker.stats.loads_observed > 0


def test_throughput_paper_hardware_model(benchmark, event_stream, source_ranges):
    factory = lambda: BoundedRangeCache(entry_capacity(32 * 1024))
    tracker = benchmark(
        _run_tracker, event_stream, source_ranges, PAPER_DEFAULT, factory
    )
    print(f"\n32KB cache-of-ranges model over {len(event_stream)} events")
    assert tracker.stats.loads_observed > 0


def test_throughput_untainting_off(benchmark, event_stream, source_ranges):
    tracker = benchmark(
        _run_tracker,
        event_stream,
        source_ranges,
        PAPER_DEFAULT.with_untainting(False),
    )
    assert tracker.stats.untaint_operations == 0


def test_untainting_keeps_state_small_hence_fast(
    benchmark, event_stream, source_ranges
):
    """Untainting's point is bounding the state per-event lookups run
    against; the range-count high-water marks make that visible."""
    def run_both():
        return (
            _run_tracker(event_stream, source_ranges, PAPER_DEFAULT),
            _run_tracker(
                event_stream, source_ranges,
                PAPER_DEFAULT.with_untainting(False),
            ),
        )

    with_untaint, without_untaint = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert (
        with_untaint.stats.max_range_count
        <= without_untaint.stats.max_range_count + 8
    )


def test_throughput_full_dift_baseline(benchmark):
    """Per-record cost of the byte-exact baseline on the same workload."""
    from repro.core.ranges import AddressRange
    from repro.baseline import FullDIFTTracker
    from repro.android import AndroidDevice
    from repro.apps.malware import SAMPLES

    device = AndroidDevice(config=PAPER_DEFAULT, keep_full_trace=True)
    device.install(SAMPLES[0].build(device, 64))
    device.run(SAMPLES[0].entry)
    records = device.full_trace.records
    sources = [s.address_range for s in device.recorded.sources]

    def run_baseline():
        baseline = FullDIFTTracker()
        for source in sources:
            baseline.taint_source(source)
        baseline.run(records)
        return baseline

    baseline = benchmark(run_baseline)
    print(f"\nfull DIFT over {len(records)} records "
          f"({baseline.stats.instructions_processed} instructions)")
    assert baseline.stats.instructions_processed == len(records)

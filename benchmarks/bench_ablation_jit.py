"""Ablation — Dalvik JIT impact (paper §4.1).

    "Our initial testing of running apps with and without JIT
    optimization has shown little impact on the distribution of load and
    store distances.  For example, we profiled the memory operation
    profile as in Figure 2 without JIT, but the patterns were identical."

The fused-dispatch mode models the trace JIT: translated bytecodes chain
directly, dropping the per-bytecode GET_INST_OPCODE / GOTO_OPCODE pair.
This ablation re-profiles Figure 2a and re-evaluates the DroidBench
operating point under both translation modes.
"""

from repro.core import PAPER_DEFAULT
from repro.android import AndroidDevice
from repro.analysis.accuracy import evaluate_suite
from repro.analysis.distances import Distribution, store_to_last_load_distances
from repro.apps.droidbench import all_apps
from repro.apps.malware import SAMPLES
from repro.analysis.accuracy import AppRun


def _record_suite(fused: bool):
    runs = []
    for app in all_apps():
        device = AndroidDevice(config=PAPER_DEFAULT, fused_dispatch=fused)
        device.install(app.build(device))
        device.run(app.entry)
        runs.append(
            AppRun(app.name, device.recorded, app.leaks, app.category)
        )
    return runs


def _lgroot_trace(fused: bool):
    device = AndroidDevice(config=PAPER_DEFAULT, fused_dispatch=fused)
    sample = SAMPLES[0]
    device.install(sample.build(device, 96))
    device.run(sample.entry)
    return device.recorded


def test_jit_memory_patterns_nearly_identical(benchmark):
    def profile_both():
        return {
            fused: Distribution.from_samples(
                store_to_last_load_distances(_lgroot_trace(fused).trace),
                max_value=40,
            )
            for fused in (False, True)
        }

    profiles = benchmark.pedantic(profile_both, rounds=1, iterations=1)
    interp, jit = profiles[False], profiles[True]
    print(
        f"\nFigure 2a profile, interpreter vs JIT:"
        f"\n  interpreter: mode={interp.mode()} "
        f"P(<=5)={interp.probability_at_most(5):.3f} "
        f"P(<=10)={interp.probability_at_most(10):.3f}"
        f"\n  fused (JIT): mode={jit.mode()} "
        f"P(<=5)={jit.probability_at_most(5):.3f} "
        f"P(<=10)={jit.probability_at_most(10):.3f}"
    )
    # The paper: "the patterns were identical."
    assert abs(interp.probability_at_most(5) - jit.probability_at_most(5)) < 0.1
    assert jit.probability_at_most(10) > 0.95
    assert abs(interp.mode() - jit.mode()) <= 2


def test_jit_does_not_change_the_operating_point(benchmark):
    def evaluate_both():
        return {
            fused: evaluate_suite(_record_suite(fused), PAPER_DEFAULT)
            for fused in (False, True)
        }

    reports = benchmark.pedantic(evaluate_both, rounds=1, iterations=1)
    interp, jit = reports[False], reports[True]
    print(
        f"\nDroidBench at (13, 3): interpreter {interp.accuracy * 100:.1f}%"
        f" vs JIT {jit.accuracy * 100:.1f}%"
        f" (missed: {interp.missed_apps} vs {jit.missed_apps})"
    )
    # "ART does not impact the accuracy of our taint-propagation algorithm."
    assert jit.accuracy == interp.accuracy
    assert jit.false_positives == interp.false_positives == 0
    assert jit.missed_apps == interp.missed_apps

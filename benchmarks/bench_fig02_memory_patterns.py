"""Figure 2 — memory-operation patterns of the LGRoot malware trace.

Paper claims being reproduced:
  (a) store->last-load distances cluster in 0-5; 0-10 captures ~99%;
  (b) the number of stores between consecutive loads is small;
  (c) loads are spread fairly uniformly through the execution.
"""

from repro.analysis.distances import (
    Distribution,
    load_to_load_distances,
    store_to_last_load_distances,
    stores_between_loads,
)


def _print_distribution(title, dist, limit=15):
    print(f"\n{title} (n={dist.sample_count})")
    print("  d      P(d)     CDF")
    for value in range(min(limit, len(dist.values))):
        print(
            f"  {value:<5d} {dist.probability[value]:7.4f} {dist.cdf[value]:7.4f}"
        )


def test_fig02a_store_to_last_load(benchmark, lgroot_trace):
    distances = benchmark(store_to_last_load_distances, lgroot_trace.trace)
    dist = Distribution.from_samples(distances, max_value=40)
    _print_distribution("Figure 2a: distance from store to last load", dist)
    in_0_5 = dist.probability_at_most(5)
    in_0_10 = dist.probability_at_most(10)
    print(f"  P(d <= 5)  = {in_0_5:.3f}   (paper: bulk of mass)")
    print(f"  P(d <= 10) = {in_0_10:.3f}   (paper: ~0.99)")
    benchmark.extra_info["p_d_le_5"] = round(in_0_5, 4)
    benchmark.extra_info["p_d_le_10"] = round(in_0_10, 4)
    assert in_0_5 > 0.60, "bulk of store->load distances must sit in 0-5"
    assert in_0_10 > 0.90, "0-10 must capture the overwhelming majority"


def test_fig02b_stores_between_loads(benchmark, lgroot_trace):
    counts = benchmark(stores_between_loads, lgroot_trace.trace)
    dist = Distribution.from_samples(counts, max_value=10)
    _print_distribution("Figure 2b: stores between consecutive loads", dist, 11)
    benchmark.extra_info["p_zero_or_one"] = round(dist.probability_at_most(1), 4)
    assert dist.probability_at_most(2) > 0.90, (
        "store counts between loads must be small (natural propagation bound)"
    )


def test_fig02c_load_to_load(benchmark, lgroot_trace):
    distances = benchmark(load_to_load_distances, lgroot_trace.trace)
    dist = Distribution.from_samples(distances, max_value=30)
    _print_distribution("Figure 2c: distance between consecutive loads", dist)
    benchmark.extra_info["mean_gap"] = round(
        sum(distances) / len(distances), 3
    )
    # Loads spread through execution: the mean gap is a few instructions.
    assert 1.0 <= sum(distances) / len(distances) <= 10.0

"""Figure 12 — number of stores inside windows of NI = 5..100 (LGRoot).

Reproduced observation: "small window size is acceptable because of the
diminishing returns; increasing the window size above 10 or 15 does not
capture more stores."
"""

import numpy as np

from repro.analysis.distances import Distribution, stores_in_window

WINDOW_SIZES = (5, 10, 15, 20, 40, 60, 80, 100)


def test_fig12_store_counts_per_window(benchmark, lgroot_trace):
    def compute():
        return {
            window: stores_in_window(lgroot_trace.trace, window)
            for window in WINDOW_SIZES
        }

    per_window = benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\nFigure 12: stores captured per window size")
    print(f"{'NI':>5} {'mean':>8} {'P(0)':>7} {'P(<=3)':>7}")
    means = {}
    for window in WINDOW_SIZES:
        counts = per_window[window]
        dist = Distribution.from_samples(counts, max_value=40)
        means[window] = float(np.mean(counts))
        print(
            f"{window:>5} {means[window]:>8.3f} "
            f"{dist.probability[0]:>7.3f} {dist.probability_at_most(3):>7.3f}"
        )
    # Diminishing structure: windows of 10-15 already capture almost all
    # stores a propagation could use — P(count <= 3) stays near 1 there,
    # and the distribution's mode stays pinned at small counts even for
    # NI = 100 (the paper's "increasing the window size above 10 or 15
    # does not capture more stores" reads off the same plateau).
    for window in (5, 10, 15):
        dist = Distribution.from_samples(per_window[window], max_value=40)
        assert dist.probability_at_most(4) > 0.95, window
    mode100 = Distribution.from_samples(per_window[100], max_value=40).mode()
    assert mode100 <= 20
    benchmark.extra_info["mean_stores"] = {
        str(w): round(means[w], 3) for w in WINDOW_SIZES
    }


def test_fig12_small_windows_bound_propagation(benchmark, lgroot_trace):
    counts = benchmark(stores_in_window, lgroot_trace.trace, 10)
    dist = Distribution.from_samples(counts, max_value=40)
    # Within NI=10, typically only a handful of candidate stores exist, so
    # NT in [1, 3] already captures most windows fully.
    assert dist.probability_at_most(4) > 0.80

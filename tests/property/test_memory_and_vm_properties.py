"""Property-based tests for the memory substrate and VM arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.cpu import CPU
from repro.isa.memory import Memory
from repro.dalvik import DalvikVM, MethodBuilder

MASK_32 = 0xFFFFFFFF


class TestMemoryProperties:
    @given(st.integers(0, 2**20), st.binary(min_size=1, max_size=64))
    @settings(max_examples=200)
    def test_bytes_roundtrip(self, address, payload):
        memory = Memory()
        memory.write_bytes(address, payload)
        assert memory.read_bytes(address, len(payload)) == payload

    @given(st.integers(0, 2**20), st.integers(0, 2**32 - 1))
    @settings(max_examples=200)
    def test_u32_roundtrip_anywhere(self, address, value):
        memory = Memory()
        memory.write_u32(address, value)
        assert memory.read_u32(address) == value

    @given(
        st.integers(0, 2**16),
        st.integers(0, 2**16),
        st.binary(min_size=1, max_size=16),
        st.binary(min_size=1, max_size=16),
    )
    @settings(max_examples=200)
    def test_disjoint_writes_do_not_interfere(self, a, b, pa, pb):
        if abs(a - b) < 16:
            return
        memory = Memory()
        memory.write_bytes(a, pa)
        memory.write_bytes(b, pb)
        assert memory.read_bytes(a, len(pa)) == pa
        assert memory.read_bytes(b, len(pb)) == pb


def _signed(value: int) -> int:
    value &= MASK_32
    return value - 0x100000000 if value & 0x80000000 else value


def _java_int(value: int) -> int:
    return _signed(value & MASK_32)


_counter = [0]


def run_binop(op: str, a: int, c: int) -> int:
    vm = DalvikVM(CPU())
    _counter[0] += 1
    b = MethodBuilder(f"P.m{_counter[0]}", registers=8)
    b.const(1, a)
    b.const(2, c)
    b.raw(op, a=0, b=1, c=2)
    b.return_value(0)
    vm.register_method(b.build())
    return _signed(vm.call(f"P.m{_counter[0]}"))


int32 = st.integers(-(2**31), 2**31 - 1)


class TestVMArithmeticProperties:
    @given(int32, int32)
    @settings(max_examples=60, deadline=None)
    def test_add_matches_java(self, a, c):
        assert run_binop("add-int", a, c) == _java_int(a + c)

    @given(int32, int32)
    @settings(max_examples=60, deadline=None)
    def test_sub_matches_java(self, a, c):
        assert run_binop("sub-int", a, c) == _java_int(a - c)

    @given(int32, int32)
    @settings(max_examples=60, deadline=None)
    def test_mul_matches_java(self, a, c):
        assert run_binop("mul-int", a, c) == _java_int(a * c)

    @given(int32, int32.filter(lambda v: v != 0))
    @settings(max_examples=60, deadline=None)
    def test_div_truncates_toward_zero(self, a, c):
        expected = _java_int(int(a / c))
        assert run_binop("div-int", a, c) == expected

    @given(int32, int32.filter(lambda v: v != 0))
    @settings(max_examples=60, deadline=None)
    def test_rem_identity(self, a, c):
        quotient = run_binop("div-int", a, c)
        remainder = run_binop("rem-int", a, c)
        assert _java_int(quotient * c + remainder) == _java_int(a)

    @given(int32, int32)
    @settings(max_examples=60, deadline=None)
    def test_xor_matches(self, a, c):
        assert run_binop("xor-int", a, c) == _java_int(
            (a & MASK_32) ^ (c & MASK_32)
        )

    @given(int32, st.integers(0, 63))
    @settings(max_examples=60, deadline=None)
    def test_shl_masks_shift_count(self, a, shift):
        assert run_binop("shl-int", a, shift) == _java_int(a << (shift & 31))

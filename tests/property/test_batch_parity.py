"""Differential oracle: every ``observe_columns`` execution strategy is
observationally identical to per-event ``observe``.

Three-way parity over random multi-PID streams — per-event ``observe``
== scalar ``observe_columns_scalar`` == the numpy pre-filter kernel
(``observe_columns_vectorized``) — on stats, taint state, timeline,
untainting on and off, and with the telemetry shadow fallback live."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PIFTConfig
from repro.core.events import AccessKind, EventColumns, EventTrace, MemoryAccess
from repro.core.ranges import AddressRange
from repro.core.tracker import PIFTTracker

SOURCE = AddressRange(0, 15)

events = st.builds(
    lambda kind, start, size, gap, pid: (kind, start, size, gap, pid),
    st.sampled_from([AccessKind.LOAD, AccessKind.STORE]),
    st.integers(0, 400),
    st.integers(1, 8),
    st.integers(1, 6),
    st.integers(0, 3),
)

configs = st.builds(
    PIFTConfig,
    st.integers(1, 20),
    st.integers(1, 8),
    st.booleans(),
)


def materialise(raw_events):
    """Per-PID increasing instruction indices, interleaved arbitrarily."""
    cursors = {}
    output = []
    for kind, start, size, gap, pid in raw_events:
        cursors[pid] = cursors.get(pid, 0) + gap
        output.append(
            MemoryAccess(
                kind,
                AddressRange.from_base_size(start, size),
                cursors[pid],
                pid,
            )
        )
    return output


CHECKS = [
    (SOURCE, 0), (SOURCE, 2),
    (AddressRange(0, 500), 1), (AddressRange(100, 140), 3),
]


def fingerprint(tracker: PIFTTracker) -> str:
    """Byte-exact observable state: stats, taint snapshot, verdicts."""
    return json.dumps(
        {
            "stats": tracker.stats.as_dict(),
            "state": tracker.snapshot(),
            "per_pid": tracker.instructions_per_pid,
            "verdicts": [
                tracker.check(check, pid=pid) for check, pid in CHECKS
            ],
        },
        sort_keys=True,
    )


def run_serial(config, stream, telemetry=None, record_timeline=False):
    tracker = PIFTTracker(
        config, record_timeline=record_timeline, telemetry=telemetry
    )
    tracker.taint_source(SOURCE, pid=1)
    tracker.taint_source(SOURCE, pid=2)
    for event in stream:
        tracker.observe(event)
    return tracker


def run_batched(config, stream, telemetry=None, encode=None):
    tracker = PIFTTracker(config, telemetry=telemetry)
    tracker.taint_source(SOURCE, pid=1)
    tracker.taint_source(SOURCE, pid=2)
    tracker.observe_batch(encode(stream) if encode else stream)
    return tracker


def run_scalar(config, stream, record_timeline=False):
    tracker = PIFTTracker(config, record_timeline=record_timeline)
    tracker.taint_source(SOURCE, pid=1)
    tracker.taint_source(SOURCE, pid=2)
    tracker.observe_columns_scalar(EventColumns.from_events(stream))
    return tracker


def run_vectorized(config, stream, record_timeline=False):
    tracker = PIFTTracker(config, record_timeline=record_timeline)
    tracker.taint_source(SOURCE, pid=1)
    tracker.taint_source(SOURCE, pid=2)
    tracker.observe_columns_vectorized(EventColumns.from_events(stream))
    return tracker


@given(st.lists(events, max_size=120), configs)
@settings(max_examples=150, deadline=None)
def test_batch_equals_per_event(raw, config):
    stream = materialise(raw)
    assert fingerprint(run_batched(config, stream)) == fingerprint(
        run_serial(config, stream)
    )


@given(st.lists(events, max_size=80), configs)
@settings(max_examples=75, deadline=None)
def test_batch_accepts_every_input_shape(raw, config):
    """Raw lists, pre-encoded columns, and EventTrace all agree."""
    stream = materialise(raw)
    reference = fingerprint(run_serial(config, stream))
    assert fingerprint(
        run_batched(config, stream, encode=EventColumns.from_events)
    ) == reference
    assert fingerprint(run_batched(config, stream, encode=EventTrace)) == (
        reference
    )


@given(st.lists(events, max_size=60), configs)
@settings(max_examples=50, deadline=None)
def test_batch_equals_per_event_under_telemetry(raw, config):
    """A live hub rebinds observe(); the batch path must detect the
    shadow method, fall back, and still match per-event byte-for-byte."""
    from repro.telemetry import Telemetry

    stream = materialise(raw)
    serial_hub, batch_hub = Telemetry(), Telemetry()
    serial = run_serial(config, stream, telemetry=serial_hub)
    batched = run_batched(config, stream, telemetry=batch_hub)
    assert fingerprint(batched) == fingerprint(serial)
    assert json.dumps(batch_hub.snapshot(), sort_keys=True) == json.dumps(
        serial_hub.snapshot(), sort_keys=True
    )


@given(st.lists(events, max_size=120), configs)
@settings(max_examples=150, deadline=None)
def test_three_way_parity(raw, config):
    """Per-event == scalar columns == vectorised kernel, byte-for-byte.

    ``configs`` draws untainting both on and off, so the kernel's
    untaint-candidate classification is exercised in both modes.
    """
    stream = materialise(raw)
    reference = fingerprint(run_serial(config, stream))
    assert fingerprint(run_scalar(config, stream)) == reference
    assert fingerprint(run_vectorized(config, stream)) == reference


@given(st.lists(events, max_size=100), configs)
@settings(max_examples=75, deadline=None)
def test_three_way_parity_with_timeline(raw, config):
    """Timeline recording survives all three strategies identically.

    The kernel only skips mutation-free events, so every timeline point
    (taken at taint/untaint ops inside the scalar runs) must land at the
    same instruction index with the same taint-state sample.
    """
    stream = materialise(raw)
    reference = fingerprint(run_serial(config, stream, record_timeline=True))
    assert fingerprint(
        run_scalar(config, stream, record_timeline=True)
    ) == reference
    assert fingerprint(
        run_vectorized(config, stream, record_timeline=True)
    ) == reference


@given(st.lists(events, min_size=1, max_size=40), configs, st.integers(0, 7))
@settings(max_examples=75, deadline=None)
def test_dispatcher_parity_on_long_streams(raw, config, seed_shift):
    """The public ``observe_columns`` dispatcher agrees with itself across
    ``config.vectorized`` on streams long enough to actually enter the
    numpy kernel (tiling the drawn stream past the dispatch threshold)."""
    from dataclasses import replace

    from repro.core.tracker import _VECTORIZED_MIN_EVENTS

    base = materialise(raw)
    stream = []
    # Tile with strictly increasing per-PID indices so the stream stays
    # well-formed while crossing the dispatch threshold.
    offset = 0
    while len(stream) < _VECTORIZED_MIN_EVENTS + seed_shift:
        for event in base:
            stream.append(
                MemoryAccess(
                    event.kind,
                    event.address_range,
                    event.instruction_index + offset,
                    event.pid,
                )
            )
        offset += max(e.instruction_index for e in base) + 1
    on = run_batched(
        replace(config, vectorized=True), stream,
        encode=EventColumns.from_events,
    )
    off = run_batched(
        replace(config, vectorized=False), stream,
        encode=EventColumns.from_events,
    )
    assert fingerprint(on) == fingerprint(off)


@given(st.lists(events, max_size=60), configs)
@settings(max_examples=50, deadline=None)
def test_vectorized_config_with_telemetry_falls_back(raw, config):
    """``config.vectorized=True`` plus a live hub must take the exact
    per-event fallback: fingerprints AND telemetry snapshots match the
    per-event run."""
    from dataclasses import replace

    from repro.telemetry import Telemetry

    stream = materialise(raw)
    config = replace(config, vectorized=True)
    serial_hub, batch_hub = Telemetry(), Telemetry()
    serial = run_serial(config, stream, telemetry=serial_hub)
    batched = run_batched(
        config, stream, telemetry=batch_hub, encode=EventColumns.from_events
    )
    assert fingerprint(batched) == fingerprint(serial)
    assert json.dumps(batch_hub.snapshot(), sort_keys=True) == json.dumps(
        serial_hub.snapshot(), sort_keys=True
    )


# -- adversarial index streams -----------------------------------------
#
# The kernel's bulk accounting rests on a telescoping claim: applying the
# per-PID *maximum* instruction index of a skipped run equals applying
# every index in sequence.  That holds for non-decreasing indices, but the
# scalar loop tolerates *regressions* (an out-of-order front-end, a
# counter reset) via its high-water guard — so the claim must survive
# absolute, freely regressing per-PID indices, and multi-PID interleaves
# whose runs cross classification-block boundaries.

adversarial_events = st.builds(
    lambda kind, start, size, index, pid: (kind, start, size, index, pid),
    st.sampled_from([AccessKind.LOAD, AccessKind.STORE]),
    st.integers(0, 400),
    st.integers(1, 8),
    st.integers(0, 600),  # absolute index: regressions allowed
    st.integers(0, 3),
)


def materialise_adversarial(raw_events):
    """Indices taken verbatim — per-PID streams may regress arbitrarily."""
    return [
        MemoryAccess(
            kind, AddressRange.from_base_size(start, size), index, pid
        )
        for kind, start, size, index, pid in raw_events
    ]


@given(st.lists(adversarial_events, max_size=120), configs)
@settings(max_examples=150, deadline=None)
def test_three_way_parity_under_regressing_indices(raw, config):
    """Scalar == batched == vectorised on freely regressing index streams,
    locking ``instructions_observed`` / ``instructions_retired`` (both in
    the fingerprint via stats and ``instructions_per_pid``) bit-for-bit."""
    stream = materialise_adversarial(raw)
    reference = fingerprint(run_serial(config, stream))
    assert fingerprint(run_scalar(config, stream)) == reference
    assert fingerprint(run_vectorized(config, stream)) == reference


@given(
    st.lists(adversarial_events, min_size=1, max_size=40),
    configs,
    st.integers(0, 7),
)
@settings(max_examples=75, deadline=None)
def test_adversarial_interleaves_crossing_block_boundaries(raw, config, jitter):
    """Multi-PID regressing interleaves tiled past the classification
    block size, so skipped runs and dense spans straddle block edges."""
    from repro.core.vectorized import BLOCK_MIN

    base = materialise_adversarial(raw)
    stream = []
    while len(stream) < BLOCK_MIN * 2 + jitter:
        stream.extend(base)
    reference = fingerprint(run_serial(config, stream))
    assert fingerprint(run_scalar(config, stream)) == reference
    assert fingerprint(run_vectorized(config, stream)) == reference


@given(st.lists(events, max_size=60), st.integers(0, 60), st.integers(0, 60))
@settings(max_examples=75, deadline=None)
def test_observe_columns_slices_compose(raw, cut_a, cut_b):
    """Observing a stream in arbitrary segments equals one whole batch."""
    config = PIFTConfig(8, 3)
    stream = materialise(raw)
    lo, hi = sorted((min(cut_a, len(stream)), min(cut_b, len(stream))))
    columns = EventColumns.from_events(stream)
    whole = run_batched(config, stream)
    split = PIFTTracker(config)
    split.taint_source(SOURCE, pid=1)
    split.taint_source(SOURCE, pid=2)
    split.observe_columns(columns, 0, lo)
    split.observe_columns(columns, lo, hi)
    split.observe_columns(columns, hi, len(columns))
    assert fingerprint(split) == fingerprint(whole)

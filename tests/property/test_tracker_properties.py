"""Property-based tests for Algorithm 1's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PIFTConfig
from repro.core.events import AccessKind, MemoryAccess
from repro.core.ranges import AddressRange, RangeSet
from repro.core.tracker import PIFTTracker

SOURCE = AddressRange(0, 15)

events = st.builds(
    lambda kind, start, size, gap: (kind, start, size, gap),
    st.sampled_from([AccessKind.LOAD, AccessKind.STORE]),
    st.integers(0, 400),
    st.integers(1, 8),
    st.integers(1, 6),
)


def materialise(raw_events):
    """Assign increasing instruction indices."""
    index = 0
    output = []
    for kind, start, size, gap in raw_events:
        index += gap
        output.append(
            MemoryAccess(kind, AddressRange.from_base_size(start, size), index)
        )
    return output


def run(config: PIFTConfig, stream):
    tracker = PIFTTracker(config)
    tracker.taint_source(SOURCE)
    tracker.run(stream)
    return tracker


@given(st.lists(events, max_size=80))
@settings(max_examples=150)
def test_no_taint_without_tainted_loads(raw):
    """If no load ever touches tainted state, taint never grows."""
    stream = [
        e for e in materialise(raw)
        if not (e.is_load and e.address_range.overlaps(SOURCE))
    ]
    # Remove loads of anything that stores could have tainted: keep only
    # loads disjoint from the source; stores can then never be tainted, so
    # no new ranges may appear beyond the source itself.
    tracker = PIFTTracker(PIFTConfig(10, 3, untainting=False))
    tracker.taint_source(SOURCE)
    for event in stream:
        if event.is_load and tracker.check(event.address_range):
            continue  # skip any accidentally-tainted load
        tracker.observe(event)
    assert tracker.stats.taint_operations == 0


@given(st.lists(events, max_size=80))
@settings(max_examples=150)
def test_stats_add_up(raw):
    stream = materialise(raw)
    tracker = run(PIFTConfig(5, 2), stream)
    assert tracker.stats.loads_observed + tracker.stats.stores_observed == len(stream)
    assert tracker.stats.tainted_loads <= tracker.stats.loads_observed
    assert tracker.stats.taint_operations <= tracker.stats.stores_observed
    assert tracker.stats.max_tainted_bytes >= tracker.tainted_bytes * 0 + (
        SOURCE.size if tracker.stats.max_tainted_bytes else 0
    )


@given(st.lists(events, max_size=60))
@settings(max_examples=150)
def test_no_untainting_means_taint_only_grows(raw):
    """With untainting off, the source range stays tainted forever and the
    high-water mark equals the final size."""
    stream = materialise(raw)
    tracker = run(PIFTConfig(5, 2, untainting=False), stream)
    assert tracker.check(SOURCE)
    assert tracker.stats.max_tainted_bytes == tracker.tainted_bytes
    assert tracker.stats.untaint_operations == 0


@given(st.lists(events, max_size=60))
@settings(max_examples=150)
def test_untainting_never_increases_state(raw):
    """Final tainted size with untainting <= without, on the same stream."""
    stream = materialise(raw)
    with_untaint = run(PIFTConfig(5, 2, untainting=True), stream)
    without_untaint = run(PIFTConfig(5, 2, untainting=False), stream)
    assert with_untaint.tainted_bytes <= without_untaint.tainted_bytes


@given(st.lists(events, max_size=60), st.integers(1, 10))
@settings(max_examples=150)
def test_taint_ops_monotone_in_nt(raw, cap):
    """A larger NT can only allow more propagations (untainting off)."""
    stream = materialise(raw)
    small = run(PIFTConfig(8, cap, untainting=False), stream)
    large = run(PIFTConfig(8, cap + 1, untainting=False), stream)
    assert small.stats.taint_operations <= large.stats.taint_operations


@given(st.lists(events, max_size=60))
@settings(max_examples=100)
def test_window_size_one_only_immediate_stores(raw):
    """With NI=1, only a store in the very next instruction slot after a
    tainted load may be tainted."""
    stream = materialise(raw)
    tracker = PIFTTracker(PIFTConfig(1, 10, untainting=False))
    tracker.taint_source(SOURCE)
    last_tainted_load_index = None
    expected_taints = 0
    for event in stream:
        if event.is_load:
            if tracker.check(event.address_range):
                last_tainted_load_index = event.instruction_index
        else:
            if (
                last_tainted_load_index is not None
                and event.instruction_index <= last_tainted_load_index + 1
            ):
                expected_taints += 1
        tracker.observe(event)
    assert tracker.stats.taint_operations <= expected_taints

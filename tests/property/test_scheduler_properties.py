"""Property-based tests: the scheduling pass preserves program semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import asm
from repro.isa.cpu import CPU
from repro.isa.scheduler import load_store_distances, tighten_load_store

# A pool of address bases kept apart so the generated programs are valid.
DATA_REGIONS = [0x1000, 0x1100, 0x1200, 0x1300]

# Generators for straight-line instructions over r0..r3 (data) with
# addresses taken from fixed bases in r8..r11.
_data_reg = st.sampled_from(["r0", "r1", "r2", "r3"])
_addr_reg = st.sampled_from(["r8", "r9", "r10", "r11"])
_offset = st.integers(0, 15).map(lambda v: v * 4)


def _alu_instruction(draw_tuple):
    kind, rd, rn, value = draw_tuple
    makers = {
        "add": lambda: asm.add(rd, rn, value),
        "sub": lambda: asm.sub(rd, rn, value),
        "eor": lambda: asm.eor(rd, rn, value),
        "orr": lambda: asm.orr(rd, rn, value),
        "mov": lambda: asm.mov(rd, value),
    }
    return makers[kind]()


alu_instructions = st.builds(
    _alu_instruction,
    st.tuples(
        st.sampled_from(["add", "sub", "eor", "orr", "mov"]),
        _data_reg,
        _data_reg,
        st.integers(0, 255),
    ),
)

load_instructions = st.builds(
    lambda rd, base, offset: asm.ldr(rd, base, offset),
    _data_reg, _addr_reg, _offset,
)

store_instructions = st.builds(
    lambda rd, base, offset: asm.str_(rd, base, offset),
    _data_reg, _addr_reg, _offset,
)

programs = st.lists(
    st.one_of(alu_instructions, load_instructions, store_instructions),
    min_size=1,
    max_size=40,
)


def _setup(cpu: CPU) -> None:
    for register, base in zip(("r8", "r9", "r10", "r11"), DATA_REGIONS):
        cpu.registers[register] = base
    for base in DATA_REGIONS:
        for offset in range(0, 64, 4):
            cpu.address_space.memory.write_u32(base + offset, base + offset)


def _final_state(program):
    cpu = CPU()
    _setup(cpu)
    cpu.run(program)
    memory = {
        base + offset: cpu.address_space.memory.read_u32(base + offset)
        for base in DATA_REGIONS
        for offset in range(0, 64, 4)
    }
    return cpu.registers.snapshot(), memory


@given(programs)
@settings(max_examples=150, deadline=None)
def test_scheduling_preserves_architectural_state(program):
    original_registers, original_memory = _final_state(program)
    scheduled = tighten_load_store(program)
    scheduled_registers, scheduled_memory = _final_state(scheduled)
    assert scheduled_registers == original_registers
    assert scheduled_memory == original_memory


@given(programs)
@settings(max_examples=150, deadline=None)
def test_scheduling_is_a_permutation(program):
    scheduled = tighten_load_store(program)
    assert sorted(map(id, scheduled)) == sorted(map(id, program))


@given(programs)
@settings(max_examples=100, deadline=None)
def test_scheduling_never_worsens_max_distance(program):
    before = load_store_distances(program)
    after = load_store_distances(tighten_load_store(program))
    if before and after:
        assert max(after) <= max(before)

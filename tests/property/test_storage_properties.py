"""Property-based tests for the hardware taint-storage models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranges import AddressRange, RangeSet
from repro.core.taint_storage import BoundedRangeCache, EvictionPolicy

ADDRESS_SPACE = 200

ranges = st.builds(
    lambda start, size: AddressRange(start, min(start + size, ADDRESS_SPACE)),
    st.integers(0, ADDRESS_SPACE),
    st.integers(0, 12),
)

operations = st.lists(
    st.tuples(st.sampled_from(["add", "remove", "query"]), ranges),
    max_size=50,
)


def run_both(ops, cache):
    """Apply the same op sequence to the cache and the unbounded reference;
    return pairs of query answers."""
    reference = RangeSet()
    answers = []
    for op, item in ops:
        if op == "add":
            cache.add(item)
            reference.add(item)
        elif op == "remove":
            cache.remove(item)
            reference.remove(item)
        else:
            answers.append((cache.overlaps(item), reference.overlaps(item)))
    return answers


@given(operations)
@settings(max_examples=200)
def test_spill_cache_equals_unbounded_reference(ops):
    """With the SPILL policy, capacity pressure must never change an
    answer: evicted ranges are recovered from secondary storage."""
    cache = BoundedRangeCache(capacity_entries=2, policy=EvictionPolicy.SPILL)
    for cache_answer, reference_answer in run_both(ops, cache):
        assert cache_answer == reference_answer


@given(operations)
@settings(max_examples=200)
def test_spill_cache_preserves_sizes(ops):
    cache = BoundedRangeCache(capacity_entries=3, policy=EvictionPolicy.SPILL)
    reference = RangeSet()
    for op, item in ops:
        if op == "add":
            cache.add(item)
            reference.add(item)
        elif op == "remove":
            cache.remove(item)
            reference.remove(item)
    assert cache.total_size == reference.total_size


@given(operations)
@settings(max_examples=200)
def test_drop_cache_never_false_positive(ops):
    """The DROP policy may lose taint (false negatives) but must never
    invent it: every positive answer is also positive in the reference."""
    cache = BoundedRangeCache(capacity_entries=2, policy=EvictionPolicy.DROP)
    for cache_answer, reference_answer in run_both(ops, cache):
        if cache_answer:
            assert reference_answer


@given(operations)
@settings(max_examples=200)
def test_drop_cache_respects_capacity(ops):
    cache = BoundedRangeCache(capacity_entries=2, policy=EvictionPolicy.DROP)
    for op, item in ops:
        if op == "add":
            cache.add(item)
        elif op == "remove":
            cache.remove(item)
        assert cache.on_chip_range_count <= 2


@given(operations, st.integers(1, 4))
@settings(max_examples=150)
def test_granular_cache_overapproximates(ops, bits):
    """Fixed-granularity tainting over-approximates: everything tainted in
    the byte-precise reference answers positive in the block cache."""
    cache = BoundedRangeCache(capacity_entries=64, granularity_bits=bits)
    reference = RangeSet()
    for op, item in ops:
        if op == "add":
            cache.add(item)
            reference.add(item)
        # removals skipped: block-conservative untaint may keep supersets
        # but never drop precise taint when no remove happened.
    for stored in reference:
        assert cache.overlaps(stored)


@given(st.lists(ranges, min_size=1, max_size=30))
@settings(max_examples=150)
def test_lru_spill_stats_consistent(items):
    cache = BoundedRangeCache(capacity_entries=2, policy=EvictionPolicy.SPILL)
    for item in items:
        cache.add(item)
        cache.overlaps(item)
    stats = cache.stats
    assert stats.lookups == len(items)
    assert stats.hits + stats.secondary_hits + stats.misses == stats.lookups
    assert stats.misses == 0  # everything just added must answer positive

"""Property-based tests: RangeSet against a reference set-of-bytes model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranges import AddressRange, RangeSet

ADDRESS_SPACE = 256  # small space so collisions are common

ranges = st.builds(
    lambda start, size: AddressRange(start, min(start + size, ADDRESS_SPACE)),
    st.integers(0, ADDRESS_SPACE),
    st.integers(0, 24),
)

operations = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]), ranges), max_size=60
)


def apply_to_model(model: set, op: str, item: AddressRange) -> None:
    bytes_ = set(range(item.start, item.end + 1))
    if op == "add":
        model |= bytes_
    else:
        model -= bytes_


@given(operations)
@settings(max_examples=200)
def test_rangeset_equals_byte_set_model(ops):
    """After any add/remove sequence, RangeSet covers exactly the bytes the
    naive set-of-integers model covers."""
    range_set = RangeSet()
    model: set = set()
    for op, item in ops:
        if op == "add":
            range_set.add(item)
        else:
            range_set.remove(item)
        apply_to_model(model, op, item)
    assert range_set.total_size == len(model)
    for probe in range(0, ADDRESS_SPACE + 25, 7):
        assert range_set.covers_address(probe) == (probe in model)


@given(operations, ranges)
@settings(max_examples=200)
def test_overlap_query_matches_model(ops, query):
    range_set = RangeSet()
    model: set = set()
    for op, item in ops:
        if op == "add":
            range_set.add(item)
        else:
            range_set.remove(item)
        apply_to_model(model, op, item)
    expected = any(
        probe in model for probe in range(query.start, query.end + 1)
    )
    assert range_set.overlaps(query) == expected


@given(st.lists(ranges, max_size=40))
@settings(max_examples=200)
def test_ranges_stay_sorted_disjoint_nonadjacent(items):
    """Structural invariant: stored ranges are sorted, disjoint, and
    non-adjacent (fully coalesced)."""
    range_set = RangeSet()
    for item in items:
        range_set.add(item)
    stored = list(range_set)
    for left, right in zip(stored, stored[1:]):
        assert left.end + 1 < right.start


@given(st.lists(ranges, min_size=1, max_size=40))
@settings(max_examples=200)
def test_add_is_idempotent_and_order_independent(items):
    forward = RangeSet()
    backward = RangeSet()
    for item in items:
        forward.add(item)
    for item in reversed(items):
        backward.add(item)
        backward.add(item)  # idempotence
    assert forward == backward


@given(st.lists(ranges, max_size=30), ranges)
@settings(max_examples=200)
def test_remove_then_query_is_always_false(items, victim):
    range_set = RangeSet()
    for item in items:
        range_set.add(item)
    range_set.remove(victim)
    assert not range_set.overlaps(victim)


@given(st.lists(ranges, max_size=30))
@settings(max_examples=100)
def test_total_size_bounded_by_count_times_max(items):
    range_set = RangeSet()
    for item in items:
        range_set.add(item)
    assert range_set.range_count <= len(items) or not items
    assert range_set.total_size <= ADDRESS_SPACE + 25

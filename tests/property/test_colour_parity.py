"""Differential oracle for multi-colour taint.

Two claims lock the colour layer down:

1. **Three-way execution parity** — the coloured tracker's per-event
   ``observe``, scalar ``observe_columns_scalar``, and vectorised
   ``observe_columns_vectorized`` (which routes through the
   mask-carrying dense executor) are observationally identical on random
   multi-source, multi-PID streams: same stats, same interval+mask
   state, same colour attributions.

2. **Union projection** — collapsing every mask to "non-zero == tainted"
   reproduces the plain single-bit tracker byte for byte: identical
   verdicts, identical tainted coverage, identical counters — with
   ``max_range_count`` the single permitted exception under multiple
   live colours (equal-mask-only coalescing can keep more intervals
   than the plain set), and **no** exception with a single colour, where
   the interval structure itself must be identical.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.colours import ColourSpace
from repro.core.config import PIFTConfig
from repro.core.events import AccessKind, EventColumns, MemoryAccess
from repro.core.ranges import AddressRange
from repro.core.tracker import ColourTracker, PIFTTracker

#: Distinct per-colour source ranges; streams address [0, 500] so loads
#: can straddle colour boundaries and windows can carry multi-bit masks.
SOURCES = (
    ("imei", AddressRange(0, 15)),
    ("location", AddressRange(32, 47)),
    ("phone_number", AddressRange(64, 79)),
)

events = st.builds(
    lambda kind, start, size, gap, pid: (kind, start, size, gap, pid),
    st.sampled_from([AccessKind.LOAD, AccessKind.STORE]),
    st.integers(0, 400),
    st.integers(1, 8),
    st.integers(1, 6),
    st.integers(0, 2),
)

configs = st.builds(
    PIFTConfig,
    st.integers(1, 20),
    st.integers(1, 8),
    st.booleans(),
)

CHECKS = [
    (AddressRange(0, 15), 0), (AddressRange(0, 500), 0),
    (AddressRange(100, 140), 0), (AddressRange(0, 500), 1),
    (AddressRange(32, 79), 2),
]


def materialise(raw_events):
    cursors = {}
    output = []
    for kind, start, size, gap, pid in raw_events:
        cursors[pid] = cursors.get(pid, 0) + gap
        output.append(
            MemoryAccess(
                kind,
                AddressRange.from_base_size(start, size),
                cursors[pid],
                pid,
            )
        )
    return output


def coloured_tracker(config, source_count=len(SOURCES)):
    tracker = ColourTracker(config, colours=ColourSpace())
    for name, source_range in SOURCES[:source_count]:
        for pid in (0, 1, 2):
            tracker.taint_source(source_range, pid=pid, colour=name)
    return tracker


def plain_tracker(config, source_count=len(SOURCES)):
    tracker = PIFTTracker(config)
    for _, source_range in SOURCES[:source_count]:
        for pid in (0, 1, 2):
            tracker.taint_source(source_range, pid=pid)
    return tracker


def colour_fingerprint(tracker: ColourTracker) -> str:
    """Byte-exact coloured observables: stats, interval+mask state,
    verdicts with attribution."""
    return json.dumps(
        {
            "stats": tracker.stats.as_dict(),
            "state": tracker.snapshot(),
            "per_pid": tracker.instructions_per_pid,
            "verdicts": [
                [
                    tracker.check(check, pid=pid),
                    list(tracker.check_colours(check, pid=pid)),
                ]
                for check, pid in CHECKS
            ],
        },
        sort_keys=True,
    )


def merged_coverage(snapshot_state: dict):
    """Mask-blind coalesce of a ColourRangeSet snapshot — the union
    projection's interval structure."""
    merged = []
    for start, end in zip(snapshot_state["starts"], snapshot_state["ends"]):
        if merged and merged[-1][1] + 1 >= start:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return merged


@given(st.lists(events, max_size=120), configs)
@settings(max_examples=100, deadline=None)
def test_coloured_three_way_execution_parity(raw, config):
    stream = materialise(raw)
    serial = coloured_tracker(config)
    for event in stream:
        serial.observe(event)
    scalar = coloured_tracker(config)
    scalar.observe_columns_scalar(EventColumns.from_events(stream))
    vector = coloured_tracker(config)
    vector.observe_columns_vectorized(EventColumns.from_events(stream))
    assert colour_fingerprint(serial) == colour_fingerprint(scalar)
    assert colour_fingerprint(scalar) == colour_fingerprint(vector)


@given(st.lists(events, max_size=120), configs)
@settings(max_examples=100, deadline=None)
def test_union_projection_matches_plain_tracker(raw, config):
    stream = materialise(raw)
    coloured = coloured_tracker(config)
    plain = plain_tracker(config)
    for event in stream:
        coloured.observe(event)
        plain.observe(event)
    # Verdicts: tainted iff any colour contributed.
    for check, pid in CHECKS:
        assert coloured.check(check, pid=pid) == plain.check(check, pid=pid)
        assert bool(coloured.check_colours(check, pid=pid)) == plain.check(
            check, pid=pid
        )
    # Coverage: the mask-blind coalesce of the coloured intervals is the
    # plain tracker's interval structure exactly.
    coloured_snapshot = coloured.snapshot()["states"]
    plain_snapshot = plain.snapshot()["states"]
    assert sorted(coloured_snapshot) == sorted(plain_snapshot)
    for pid, state in plain_snapshot.items():
        assert merged_coverage(coloured_snapshot[pid]) == [
            [s, e]
            for s, e in zip(state["starts"], state["ends"])
        ]
    # Counters: identical except max_range_count (multi-colour splits).
    coloured_stats = coloured.stats.as_dict()
    plain_stats = plain.stats.as_dict()
    coloured_stats.pop("max_range_count")
    plain_stats.pop("max_range_count")
    assert coloured_stats == plain_stats


@given(st.lists(events, max_size=120), configs)
@settings(max_examples=100, deadline=None)
def test_single_colour_is_byte_identical_to_plain(raw, config):
    """With one registered colour every mask is equal, so the coloured
    tracker must compile down to the plain one with NO exceptions —
    interval structure, every counter (max_range_count included), and
    every verdict."""
    stream = materialise(raw)
    coloured = coloured_tracker(config, source_count=1)
    plain = plain_tracker(config, source_count=1)
    for event in stream:
        coloured.observe(event)
        plain.observe(event)
    assert coloured.stats.as_dict() == plain.stats.as_dict()
    coloured_snapshot = coloured.snapshot()["states"]
    for pid, state in plain.snapshot()["states"].items():
        assert coloured_snapshot[pid]["starts"] == state["starts"]
        assert coloured_snapshot[pid]["ends"] == state["ends"]
    for check, pid in CHECKS:
        assert coloured.check(check, pid=pid) == plain.check(check, pid=pid)


@given(st.lists(events, min_size=30, max_size=120), configs)
@settings(max_examples=50, deadline=None)
def test_single_colour_three_way_parity(raw, config):
    """The dense executor's single-colour behaviour is the regression
    surface the plain goldens freeze — re-check the three-way parity in
    the degenerate one-colour configuration too."""
    stream = materialise(raw)
    serial = coloured_tracker(config, source_count=1)
    for event in stream:
        serial.observe(event)
    vector = coloured_tracker(config, source_count=1)
    vector.observe_columns_vectorized(EventColumns.from_events(stream))
    assert colour_fingerprint(serial) == colour_fingerprint(vector)

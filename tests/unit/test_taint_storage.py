"""Unit tests for the hardware taint-storage models (paper section 3.3)."""

import pytest

from repro.core.config import PIFTConfig
from repro.core.events import load, store
from repro.core.ranges import AddressRange
from repro.core.taint_storage import (
    ENTRY_BYTES_WITH_PID,
    ENTRY_BYTES_WITHOUT_PID,
    BoundedRangeCache,
    EvictionPolicy,
    entry_capacity,
    paper_default_storage,
)
from repro.core.tracker import PIFTTracker


class TestEntryCapacity:
    def test_paper_sizing_with_pid(self):
        # "a small on-chip memory, for example, of 32KB can accommodate
        #  approximately 2730 ranges"
        assert entry_capacity(32 * 1024, ENTRY_BYTES_WITH_PID) == 2730

    def test_paper_sizing_without_pid(self):
        # "we can remove the process-specific identification ... and thus
        #  can store 4096 entries in the 32KB memory"
        assert entry_capacity(32 * 1024, ENTRY_BYTES_WITHOUT_PID) == 4096

    def test_too_small_storage_rejected(self):
        with pytest.raises(ValueError):
            entry_capacity(4, ENTRY_BYTES_WITH_PID)


class TestBoundedRangeCacheBasics:
    def test_add_and_lookup(self):
        cache = BoundedRangeCache(capacity_entries=4)
        cache.add(AddressRange(0x100, 0x10F))
        assert cache.overlaps(AddressRange(0x108, 0x108))
        assert not cache.overlaps(AddressRange(0x110, 0x120))

    def test_remove(self):
        cache = BoundedRangeCache(capacity_entries=4)
        cache.add(AddressRange(0x100, 0x10F))
        cache.remove(AddressRange(0x104, 0x107))
        assert cache.overlaps(AddressRange(0x100, 0x103))
        assert not cache.overlaps(AddressRange(0x104, 0x107))
        assert cache.overlaps(AddressRange(0x108, 0x10F))
        assert cache.range_count == 2

    def test_coalescing_keeps_entry_count_down(self):
        cache = BoundedRangeCache(capacity_entries=2)
        cache.add(AddressRange(0x100, 0x103))
        cache.add(AddressRange(0x104, 0x107))  # adjacent: merges
        assert cache.range_count == 1
        assert cache.stats.evictions == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BoundedRangeCache(capacity_entries=0)

    def test_stats_hits_and_misses(self):
        cache = BoundedRangeCache(capacity_entries=4)
        cache.add(AddressRange(0x100, 0x10F))
        cache.overlaps(AddressRange(0x100, 0x100))  # hit
        cache.overlaps(AddressRange(0x900, 0x900))  # miss
        assert cache.stats.lookups == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1


class TestSpillPolicy:
    def test_overflow_spills_to_secondary_without_losing_taint(self):
        cache = BoundedRangeCache(capacity_entries=2, policy=EvictionPolicy.SPILL)
        ranges = [AddressRange(base, base + 3) for base in (0x100, 0x200, 0x300)]
        for r in ranges:
            cache.add(r)
        assert cache.stats.evictions == 1
        assert cache.on_chip_range_count == 2
        assert cache.spilled_range_count == 1
        # No accuracy loss: every range still answers positive.
        for r in ranges:
            assert cache.overlaps(r)

    def test_secondary_hit_promotes(self):
        cache = BoundedRangeCache(capacity_entries=2, policy=EvictionPolicy.SPILL)
        for base in (0x100, 0x200, 0x300):
            cache.add(AddressRange(base, base + 3))
        # 0x100 was LRU-evicted; querying it is a 'cache miss' serviced from
        # main memory, after which it is promoted back on chip.
        assert cache.overlaps(AddressRange(0x100, 0x103))
        assert cache.stats.secondary_hits == 1
        assert cache.overlaps(AddressRange(0x100, 0x103))
        assert cache.stats.secondary_hits == 1  # now a plain hit

    def test_lru_victim_is_least_recently_touched(self):
        cache = BoundedRangeCache(capacity_entries=2, policy=EvictionPolicy.SPILL)
        cache.add(AddressRange(0x100, 0x103))
        cache.add(AddressRange(0x200, 0x203))
        cache.overlaps(AddressRange(0x100, 0x100))  # touch 0x100: now MRU
        cache.add(AddressRange(0x300, 0x303))  # evicts 0x200
        assert cache.on_chip_range_count == 2
        assert cache.overlaps(AddressRange(0x200, 0x203))  # from secondary
        assert cache.stats.secondary_hits == 1

    def test_remove_erases_spilled_state_too(self):
        cache = BoundedRangeCache(capacity_entries=1, policy=EvictionPolicy.SPILL)
        cache.add(AddressRange(0x100, 0x103))
        cache.add(AddressRange(0x200, 0x203))  # spills 0x100
        cache.remove(AddressRange(0x100, 0x103))
        assert not cache.overlaps(AddressRange(0x100, 0x103))

    def test_total_size_spans_both_levels(self):
        cache = BoundedRangeCache(capacity_entries=1, policy=EvictionPolicy.SPILL)
        cache.add(AddressRange(0x100, 0x103))
        cache.add(AddressRange(0x200, 0x203))
        assert cache.total_size == 8
        assert cache.range_count == 2


class TestDropPolicy:
    def test_overflow_drops_and_may_lose_taint(self):
        cache = BoundedRangeCache(capacity_entries=2, policy=EvictionPolicy.DROP)
        for base in (0x100, 0x200, 0x300):
            cache.add(AddressRange(base, base + 3))
        assert cache.stats.dropped_ranges == 1
        assert cache.stats.dropped_bytes == 4
        # The dropped range is a potential false negative.
        assert not cache.overlaps(AddressRange(0x100, 0x103))
        assert cache.overlaps(AddressRange(0x300, 0x303))


class TestFixedGranularity:
    def test_add_taints_whole_blocks(self):
        cache = BoundedRangeCache(capacity_entries=8, granularity_bits=2)
        cache.add(AddressRange(0x101, 0x102))
        # The whole 4-byte block [0x100, 0x103] is tainted: over-tainting.
        assert cache.overlaps(AddressRange(0x100, 0x100))
        assert cache.overlaps(AddressRange(0x103, 0x103))
        assert not cache.overlaps(AddressRange(0x104, 0x104))

    def test_remove_only_fully_covered_blocks(self):
        cache = BoundedRangeCache(capacity_entries=8, granularity_bits=2)
        cache.add(AddressRange(0x100, 0x10B))  # blocks 0x100, 0x104, 0x108
        cache.remove(AddressRange(0x102, 0x109))  # fully covers only 0x104
        assert cache.overlaps(AddressRange(0x100, 0x103))
        assert not cache.overlaps(AddressRange(0x104, 0x107))
        assert cache.overlaps(AddressRange(0x108, 0x10B))

    def test_remove_smaller_than_block_is_noop(self):
        cache = BoundedRangeCache(capacity_entries=8, granularity_bits=4)
        cache.add(AddressRange(0x100, 0x10F))
        cache.remove(AddressRange(0x102, 0x104))  # covers no whole 16B block
        assert cache.overlaps(AddressRange(0x102, 0x104))


class TestTrackerIntegration:
    def test_tracker_runs_on_bounded_storage(self):
        config = PIFTConfig(window_size=5, max_propagations=2)
        tracker = PIFTTracker(
            config, state_factory=lambda: BoundedRangeCache(capacity_entries=16)
        )
        tracker.taint_source(AddressRange(0x1000, 0x1003))
        tracker.observe(load(0x1000, 0x1003, 0))
        tracker.observe(store(0x2000, 0x2003, 1))
        assert tracker.check(AddressRange(0x2000, 0x2003))

    def test_drop_policy_can_cause_false_negative(self):
        config = PIFTConfig(window_size=5, max_propagations=3, untainting=False)
        tracker = PIFTTracker(
            config,
            state_factory=lambda: BoundedRangeCache(
                capacity_entries=1, policy=EvictionPolicy.DROP
            ),
        )
        tracker.taint_source(AddressRange(0x1000, 0x1003))
        tracker.observe(load(0x1000, 0x1003, 0))
        tracker.observe(store(0x2000, 0x2003, 1))
        tracker.observe(store(0x3000, 0x3003, 2))
        # Capacity 1: earlier state was dropped somewhere along the way.
        total_positive = sum(
            tracker.check(r)
            for r in (
                AddressRange(0x1000, 0x1003),
                AddressRange(0x2000, 0x2003),
                AddressRange(0x3000, 0x3003),
            )
        )
        assert total_positive == 1

    def test_paper_default_storage_shape(self):
        storage = paper_default_storage()
        assert storage.capacity_entries == 2730
        assert storage.policy is EvictionPolicy.SPILL

"""Unit tests for the core-library intrinsics (string machinery etc.)."""

import pytest

from repro.isa.cpu import CPU
from repro.dalvik import DalvikVM, MethodBuilder, VMArray, VMString
from repro.dalvik.objects import double_to_bits


@pytest.fixture
def vm():
    return DalvikVM(CPU())


_COUNTER = [0]


def run_main(vm, build, registers=14):
    _COUNTER[0] += 1
    name = f"I.main{_COUNTER[0]}"
    b = MethodBuilder(name, registers=registers)
    build(b)
    vm.register_method(b.build())
    return vm.call(name)


def returned_string(vm, reference) -> str:
    value = vm.heap.deref(reference)
    assert isinstance(value, VMString)
    return value.value()


class TestStringBuilder:
    def test_append_strings(self, vm):
        def build(b):
            b.new_instance(0, "java/lang/StringBuilder")
            b.invoke_direct("StringBuilder.<init>", 0)
            b.const_string(1, "hello, ")
            b.invoke("StringBuilder.append", 0, 1)
            b.const_string(1, "world")
            b.invoke("StringBuilder.append", 0, 1)
            b.invoke("StringBuilder.toString", 0)
            b.move_result_object(2)
            b.return_object(2)

        assert returned_string(vm, run_main(vm, build)) == "hello, world"

    def test_append_char(self, vm):
        def build(b):
            b.new_instance(0, "java/lang/StringBuilder")
            b.invoke_direct("StringBuilder.<init>", 0)
            b.const(1, ord("x"))
            b.invoke("StringBuilder.appendChar", 0, 1)
            b.invoke("StringBuilder.toString", 0)
            b.move_result_object(2)
            b.return_object(2)

        assert returned_string(vm, run_main(vm, build)) == "x"

    def test_append_int(self, vm):
        def build(b):
            b.new_instance(0, "java/lang/StringBuilder")
            b.invoke_direct("StringBuilder.<init>", 0)
            b.const(1, -1234)
            b.invoke("StringBuilder.appendInt", 0, 1)
            b.invoke("StringBuilder.toString", 0)
            b.move_result_object(2)
            b.return_object(2)

        assert returned_string(vm, run_main(vm, build)) == "-1234"

    def test_append_double(self, vm):
        def build(b):
            b.new_instance(0, "java/lang/StringBuilder")
            b.invoke_direct("StringBuilder.<init>", 0)
            b.raw("const-wide", a=2, literal=double_to_bits(2.5))
            b.invoke("StringBuilder.appendDouble", 0, 2, 3)
            b.invoke("StringBuilder.toString", 0)
            b.move_result_object(4)
            b.return_object(4)

        assert returned_string(vm, run_main(vm, build)) == "2.5"

    def test_length(self, vm):
        def build(b):
            b.new_instance(0, "java/lang/StringBuilder")
            b.invoke_direct("StringBuilder.<init>", 0)
            b.const_string(1, "abcd")
            b.invoke("StringBuilder.append", 0, 1)
            b.invoke("StringBuilder.length", 0)
            b.move_result(2)
            b.return_value(2)

        assert run_main(vm, build) == 4


class TestStringOps:
    def test_concat(self, vm):
        def build(b):
            b.const_string(0, "foo")
            b.const_string(1, "bar")
            b.invoke("String.concat", 0, 1)
            b.move_result_object(2)
            b.return_object(2)

        assert returned_string(vm, run_main(vm, build)) == "foobar"

    def test_length_and_char_at(self, vm):
        def build(b):
            b.const_string(0, "pift")
            b.const(1, 2)
            b.invoke("String.charAt", 0, 1)
            b.move_result(2)
            b.return_value(2)

        assert run_main(vm, build) == ord("f")

    def test_substring(self, vm):
        def build(b):
            b.const_string(0, "predictive")
            b.const(1, 3)
            b.const(2, 7)
            b.invoke("String.substring", 0, 1, 2)
            b.move_result_object(3)
            b.return_object(3)

        assert returned_string(vm, run_main(vm, build)) == "dict"

    def test_to_char_array_and_back(self, vm):
        def build(b):
            b.const_string(0, "taint")
            b.invoke("String.toCharArray", 0)
            b.move_result_object(1)
            b.invoke_static("String.fromChars", 1)
            b.move_result_object(2)
            b.return_object(2)

        assert returned_string(vm, run_main(vm, build)) == "taint"

    def test_get_bytes(self, vm):
        def build(b):
            b.const_string(0, "AB")
            b.invoke("String.getBytes", 0)
            b.move_result_object(1)
            b.return_object(1)

        array = vm.heap.deref(run_main(vm, build))
        assert isinstance(array, VMArray)
        assert array.element_width == 1
        assert [array.get(i) for i in range(2)] == [65, 66]

    def test_equals(self, vm):
        def build(b):
            b.const_string(0, "same")
            b.const_string(1, "same")
            b.invoke("String.equals", 0, 1)
            b.move_result(2)
            b.return_value(2)

        assert run_main(vm, build) == 1

    def test_parse_int(self, vm):
        def build(b):
            b.const_string(0, "54321")
            b.invoke_static("Integer.parseInt", 0)
            b.move_result(1)
            b.return_value(1)

        assert run_main(vm, build) == 54321

    def test_value_of_int(self, vm):
        def build(b):
            b.const(0, 987)
            b.invoke_static("String.valueOfInt", 0)
            b.move_result_object(1)
            b.return_object(1)

        assert returned_string(vm, run_main(vm, build)) == "987"


class TestCollections:
    def test_array_list(self, vm):
        def build(b):
            b.new_instance(0, "java/util/ArrayList")
            b.invoke_direct("ArrayList.<init>", 0)
            b.const_string(1, "first")
            b.invoke("ArrayList.add", 0, 1)
            b.const_string(1, "second")
            b.invoke("ArrayList.add", 0, 1)
            b.const(2, 1)
            b.invoke("ArrayList.get", 0, 2)
            b.move_result_object(3)
            b.return_object(3)

        assert returned_string(vm, run_main(vm, build)) == "second"

    def test_array_list_size(self, vm):
        def build(b):
            b.new_instance(0, "java/util/ArrayList")
            b.invoke_direct("ArrayList.<init>", 0)
            b.const_string(1, "x")
            b.invoke("ArrayList.add", 0, 1)
            b.invoke("ArrayList.size", 0)
            b.move_result(2)
            b.return_value(2)

        assert run_main(vm, build) == 1

    def test_hash_map_put_get(self, vm):
        def build(b):
            b.new_instance(0, "java/util/HashMap")
            b.invoke_direct("HashMap.<init>", 0)
            b.const_string(1, "key")
            b.const_string(2, "value")
            b.invoke("HashMap.put", 0, 1, 2)
            b.const_string(3, "key")  # equal content, different instance
            b.invoke("HashMap.get", 0, 3)
            b.move_result_object(4)
            b.return_object(4)

        assert returned_string(vm, run_main(vm, build)) == "value"

    def test_hash_map_miss_returns_null(self, vm):
        def build(b):
            b.new_instance(0, "java/util/HashMap")
            b.invoke_direct("HashMap.<init>", 0)
            b.const_string(1, "ghost")
            b.invoke("HashMap.get", 0, 1)
            b.move_result_object(2)
            b.return_object(2)

        assert run_main(vm, build) == 0

    def test_hash_map_overwrite(self, vm):
        def build(b):
            b.new_instance(0, "java/util/HashMap")
            b.invoke_direct("HashMap.<init>", 0)
            b.const_string(1, "k")
            b.const_string(2, "old")
            b.invoke("HashMap.put", 0, 1, 2)
            b.const_string(2, "new")
            b.invoke("HashMap.put", 0, 1, 2)
            b.invoke("HashMap.get", 0, 1)
            b.move_result_object(3)
            b.return_object(3)

        assert returned_string(vm, run_main(vm, build)) == "new"


class TestSystemAndThrowable:
    def test_arraycopy(self, vm):
        def build(b):
            b.const(0, 3)
            b.new_array(1, 0, "[C")
            b.const_string(2, "xyz")
            b.invoke("String.toCharArray", 2)
            b.move_result_object(3)
            b.const(4, 0)
            b.invoke_static("System.arraycopy", 3, 4, 1, 4, 0)
            b.invoke_static("String.fromChars", 1)
            b.move_result_object(5)
            b.return_object(5)

        assert returned_string(vm, run_main(vm, build)) == "xyz"

    def test_throwable_message(self, vm):
        def build(b):
            b.const_string(0, "boom")
            b.new_instance(1, "java/lang/Exception")
            b.invoke_direct("Throwable.<init>", 1, 0)
            b.invoke("Throwable.getMessage", 1)
            b.move_result_object(2)
            b.return_object(2)

        assert returned_string(vm, run_main(vm, build)) == "boom"

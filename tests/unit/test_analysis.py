"""Unit tests for the analysis package: distances, replay, accuracy, overhead."""

import numpy as np
import pytest

from repro.core.config import PIFTConfig
from repro.core.events import EventTrace, load, store
from repro.core.ranges import AddressRange
from repro.android.device import RecordedRun, SinkCheck, SourceRegistration
from repro.analysis.accuracy import AppRun, evaluate_suite, sweep
from repro.analysis.bytecode_stats import (
    load_store_distance_table,
    render_table1,
    render_top_opcodes,
    top_opcodes,
)
from repro.analysis.distances import (
    Distribution,
    kth_store_distances,
    load_to_load_distances,
    mean_kth_store_distances,
    store_to_last_load_distances,
    stores_between_loads,
    stores_in_window,
)
from repro.analysis.overhead import overhead_grids, taint_timelines, untainting_effect
from repro.analysis.replay import replay


def simple_trace():
    """loads at 0, 10, 20; stores at 2, 4, 12."""
    return EventTrace(
        [
            load(0x100, 0x103, 0),
            store(0x200, 0x203, 2),
            store(0x210, 0x213, 4),
            load(0x104, 0x107, 10),
            store(0x220, 0x223, 12),
            load(0x108, 0x10B, 20),
        ]
    )


class TestDistances:
    def test_store_to_last_load(self):
        assert store_to_last_load_distances(simple_trace()) == [2, 4, 2]

    def test_stores_between_loads(self):
        assert stores_between_loads(simple_trace()) == [2, 1, 0]

    def test_load_to_load(self):
        assert load_to_load_distances(simple_trace()) == [10, 10]

    def test_stores_in_window(self):
        assert stores_in_window(simple_trace(), window_size=5) == [2, 1, 0]
        assert stores_in_window(simple_trace(), window_size=15) == [3, 1, 0]

    def test_kth_store_distances(self):
        per_k = kth_store_distances(simple_trace(), window_size=15, k_max=3)
        assert per_k[0] == [2, 2]  # first stores after loads at 0 and 10
        assert per_k[1] == [4]  # second store only for the first load
        assert per_k[2] == [12]

    def test_mean_kth(self):
        means = mean_kth_store_distances(simple_trace(), [15])
        assert means[15][0] == 2.0

    def test_store_before_any_load_ignored(self):
        trace = EventTrace([store(0x100, 0x103, 0), load(0x100, 0x103, 1)])
        assert store_to_last_load_distances(trace) == []


class TestDistribution:
    def test_from_samples(self):
        d = Distribution.from_samples([1, 1, 2, 5])
        assert d.sample_count == 4
        assert d.probability[1] == 0.5
        assert d.cdf[-1] == pytest.approx(1.0)
        assert d.mode() == 1

    def test_probability_at_most(self):
        d = Distribution.from_samples([0, 1, 2, 10])
        assert d.probability_at_most(2) == pytest.approx(0.75)
        assert d.probability_at_most(100) == pytest.approx(1.0)

    def test_empty(self):
        d = Distribution.from_samples([])
        assert d.sample_count == 0
        assert d.probability_at_most(5) == 0.0


def make_recorded(leaky: bool) -> RecordedRun:
    """A tiny hand-built run: source -> copy -> sink."""
    events = [
        load(0x1000, 0x1003, 10),
        store(0x2000, 0x2003, 12),
    ]
    recorded = RecordedRun(trace=EventTrace(events, instruction_count=30))
    recorded.sources.append(
        SourceRegistration(AddressRange(0x1000, 0x1003), 0, "src")
    )
    target = AddressRange(0x2000, 0x2003) if leaky else AddressRange(0x9000, 0x9003)
    recorded.sink_checks.append(SinkCheck(target, 20, "sink", "sms"))
    return recorded


def make_two_pid_recorded() -> RecordedRun:
    """A leak that only exists inside pid 1; pid 0 stays clean.

    Regression guard: replay used to drop the recorded PIDs and pin every
    source registration and sink check to pid 0, which both missed the
    pid-1 leak and could false-alarm pid 0.
    """
    events = [
        load(0x1000, 0x1003, 10, pid=1),
        store(0x2000, 0x2003, 12, pid=1),
        load(0x1000, 0x1003, 10, pid=0),   # same addresses, clean process
        store(0x2000, 0x2003, 12, pid=0),
    ]
    recorded = RecordedRun(trace=EventTrace(events, instruction_count=60))
    recorded.sources.append(
        SourceRegistration(AddressRange(0x1000, 0x1003), 0, "src", pid=1)
    )
    recorded.sink_checks.append(
        SinkCheck(AddressRange(0x2000, 0x2003), 20, "sink", "sms", pid=1)
    )
    recorded.sink_checks.append(
        SinkCheck(AddressRange(0x2000, 0x2003), 20, "decoy", "sms", pid=0)
    )
    return recorded


class TestPidPlumbing:
    def test_replay_routes_sources_and_checks_by_pid(self):
        result = replay(make_two_pid_recorded(), PIFTConfig(5, 2))
        verdicts = {o.sink_name: o.tainted for o in result.sink_outcomes}
        assert verdicts == {"sink": True, "decoy": False}
        assert {o.pid for o in result.sink_outcomes} == {0, 1}

    def test_faulted_replay_zero_plan_routes_pids_identically(self):
        from repro.core.faults import FaultPlan
        from repro.analysis.degradation import faulted_replay

        recorded = make_two_pid_recorded()
        baseline = replay(recorded, PIFTConfig(5, 2))
        faulted, stats = faulted_replay(
            recorded, PIFTConfig(5, 2), FaultPlan(seed=1)
        )
        assert stats.total_injections == 0
        assert faulted.sink_outcomes == baseline.sink_outcomes

    def test_provenance_replay_routes_pids(self):
        from repro.analysis.replay import replay_with_provenance

        outcomes = replay_with_provenance(
            make_two_pid_recorded(), PIFTConfig(5, 2)
        )
        assert outcomes[0] == frozenset({"src"})  # pid-1 sink sees the leak
        assert outcomes[1] == frozenset()         # pid-0 decoy stays clean


class TestReplay:
    def test_leaky_run_alarms(self):
        result = replay(make_recorded(True), PIFTConfig(5, 2))
        assert result.alarm
        assert result.sink_outcomes[0].tainted

    def test_benign_run_silent(self):
        assert not replay(make_recorded(False), PIFTConfig(5, 2)).alarm

    def test_window_too_small_misses(self):
        assert not replay(make_recorded(True), PIFTConfig(1, 2)).alarm

    def test_check_order_respected(self):
        """A sink check earlier than the taint-propagating store is clean."""
        recorded = make_recorded(True)
        recorded.sink_checks[0] = SinkCheck(
            AddressRange(0x2000, 0x2003), 11, "sink", "sms"
        )
        assert not replay(recorded, PIFTConfig(5, 2)).alarm


class TestAccuracy:
    def apps(self):
        return [
            AppRun("leaky", make_recorded(True), leaks=True),
            AppRun("benign", make_recorded(False), leaks=False),
        ]

    def test_perfect_config(self):
        report = evaluate_suite(self.apps(), PIFTConfig(5, 2))
        assert report.accuracy == 1.0
        assert report.false_positive_rate == 0.0
        assert report.false_negative_rate == 0.0

    def test_small_window_misses(self):
        report = evaluate_suite(self.apps(), PIFTConfig(1, 1))
        assert report.false_negatives == 1
        assert report.missed_apps == ["leaky"]
        assert report.accuracy == 0.5

    def test_sweep_grid_shape_and_values(self):
        grid = sweep(self.apps(), window_sizes=[1, 5], propagation_caps=[1, 2])
        assert grid.accuracy.shape == (2, 2)
        assert grid.at(1, 1) == 0.5
        assert grid.at(5, 2) == 1.0
        window, cap, best = grid.best()
        assert best == 1.0 and window == 5

    def test_render(self):
        grid = sweep(self.apps(), window_sizes=[1, 5], propagation_caps=[1])
        text = grid.render()
        assert "NT\\NI" in text and "100.0" in text


class TestOverhead:
    def test_grids(self):
        sizes, counts = overhead_grids(
            make_recorded(True), window_sizes=[1, 5], propagation_caps=[1, 2]
        )
        # Larger window taints the store target: more bytes, more ranges.
        assert sizes.at(5, 1) >= sizes.at(1, 1)
        assert counts.at(5, 1) >= counts.at(1, 1)
        assert "NT\\NI" in sizes.render("bytes")

    def test_timelines(self):
        configs = [PIFTConfig(5, 2), PIFTConfig(1, 1)]
        timelines = taint_timelines(make_recorded(True), configs)
        assert set(timelines) == set(configs)
        big = timelines[PIFTConfig(5, 2)]
        assert big[-1].cumulative_operations >= 1

    def test_untainting_effect(self):
        effects = untainting_effect(make_recorded(True), [PIFTConfig(5, 2)])
        (effect,) = effects
        assert effect.max_tainted_bytes_without >= effect.max_tainted_bytes_with
        assert effect.size_reduction_factor >= 1.0


class TestBytecodeStats:
    def test_table1_buckets(self):
        rows = load_store_distance_table()
        by_label = {row.label: row for row in rows}
        # Paper Table 1: 3 returns at distance 1; 47 unknowns.
        assert by_label["1"].count == 3
        assert by_label["Unknown"].count == 47
        assert "return" in by_label["1"].examples

    def test_table1_renders(self):
        text = render_table1(load_store_distance_table())
        assert "Unknown" in text and "Cnt" in text

    def test_top_opcodes_from_corpus(self):
        from repro.apps.corpus import app_corpus

        rows = top_opcodes(app_corpus(), n=30)
        assert rows[0].name == "invoke-virtual"
        assert rows[0].share == pytest.approx(0.1106, abs=0.002)
        # move-result-object row carries its Table 1 distance.
        mro = next(r for r in rows if r.name == "move-result-object")
        assert mro.load_store_distance == 2

    def test_library_corpus_ranking(self):
        from repro.apps.corpus import library_corpus

        rows = top_opcodes(library_corpus(), n=5)
        assert [r.name for r in rows[:3]] == [
            "invoke-virtual", "iget-object", "move-result-object",
        ]

    def test_corpus_sizes(self):
        from repro.apps.corpus import (
            APP_CORPUS_LINES,
            LIBRARY_CORPUS_LINES,
            app_corpus,
            library_corpus,
        )

        assert sum(app_corpus().values()) == APP_CORPUS_LINES
        assert sum(library_corpus().values()) == LIBRARY_CORPUS_LINES

    def test_render_top_opcodes(self):
        from repro.apps.corpus import app_corpus

        text = render_top_opcodes(top_opcodes(app_corpus(), 10), "Apps")
        assert "invoke-virtual" in text

    def test_corpus_from_methods(self):
        from repro.apps.corpus import corpus_from_methods
        from repro.dalvik import MethodBuilder

        b = MethodBuilder("C.m", registers=4)
        b.const(0, 1)
        b.const(1, 2)
        b.add_int(2, 0, 1)
        b.return_value(2)
        counts = corpus_from_methods([b.build()])
        assert counts["const/4"] == 2
        assert counts["add-int"] == 1

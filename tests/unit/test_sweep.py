"""Tests for repro.sweep: specs, trace cache, and the parallel engine."""

import json

import pytest

from repro.core.config import PIFTConfig
from repro.core.faults import FaultRates
from repro.sweep import (
    GridSpec,
    SweepCell,
    TraceCache,
    derive_seed,
    register_state_factory,
    resolve_state_factory,
    run_cell,
    run_sweep,
)


class TestSpecs:
    def test_derive_seed_is_deterministic_and_spread(self):
        seeds = [derive_seed(42, i) for i in range(100)]
        assert seeds == [derive_seed(42, i) for i in range(100)]
        assert len(set(seeds)) == 100
        assert all(0 <= s < 2 ** 64 for s in seeds)
        assert derive_seed(42, 0) != derive_seed(43, 0)

    def test_grid_expansion_is_row_major(self):
        spec = GridSpec(
            window_sizes=(1, 2), propagation_caps=(3, 4), rates=(0.0, 0.5)
        )
        cells = list(spec.cells())
        assert len(cells) == len(spec) == 8
        assert [c.index for c in cells] == list(range(8))
        # caps are rows, windows columns, rates innermost.
        assert [(c.config.max_propagations, c.config.window_size, c.rate)
                for c in cells[:4]] == [
            (3, 1, 0.0), (3, 1, 0.5), (3, 2, 0.0), (3, 2, 0.5),
        ]

    def test_shared_seed_policy_couples_cells(self):
        spec = GridSpec(window_sizes=(1,), propagation_caps=(1,),
                        rates=(0.0, 0.1, 0.2), seed=7)
        assert {c.seed for c in spec.cells()} == {7}

    def test_per_cell_seed_policy_decorrelates(self):
        spec = GridSpec(window_sizes=(1,), propagation_caps=(1,),
                        rates=(0.0, 0.1, 0.2), seed=7,
                        seed_policy="per_cell")
        seeds = [c.seed for c in spec.cells()]
        assert len(set(seeds)) == 3
        assert seeds == [derive_seed(7, i) for i in range(3)]

    def test_grid_rejects_bad_policy_and_empty_axes(self):
        with pytest.raises(ValueError):
            GridSpec(window_sizes=(1,), propagation_caps=(1,),
                     seed_policy="chaotic")
        with pytest.raises(ValueError):
            GridSpec(window_sizes=(), propagation_caps=(1,))

    def test_state_factory_registry(self):
        from repro.core.ranges import RangeSet

        assert resolve_state_factory("rangeset") is RangeSet
        with pytest.raises(ValueError, match="unknown state_spec"):
            resolve_state_factory("bogus")
        register_state_factory("test_only", lambda: RangeSet)
        try:
            assert resolve_state_factory("test_only") is RangeSet
        finally:
            from repro.sweep import STATE_FACTORIES

            del STATE_FACTORIES["test_only"]

    def test_cells_pickle(self):
        import pickle

        cell = SweepCell(index=3, config=PIFTConfig(5, 2), rate=0.1,
                         base_rates=FaultRates(event_duplication=1e-4))
        clone = pickle.loads(pickle.dumps(cell))
        assert clone == cell
        assert clone.key() == cell.key()


class TestTraceCache:
    def test_records_droidbench_exactly_once(self):
        cache = TraceCache()
        first = cache.droidbench_runs()
        second = cache.droidbench_runs()
        assert first is second
        assert cache.recordings == 1
        assert len(first) == 57

    def test_preloaded_runs_skip_recording(self):
        runs = TraceCache().droidbench_runs()
        cache = TraceCache(droidbench=runs)
        assert cache.droidbench_runs() == runs
        assert cache.recordings == 0

    def test_payload_roundtrip_preserves_runs(self):
        import pickle

        cache = TraceCache(droidbench=TraceCache().droidbench_runs()[:3])
        cache.prime_replay_state()
        payload = pickle.loads(pickle.dumps(cache.payload()))
        clone = TraceCache.from_payload(payload)
        assert [a.name for a in clone.droidbench_runs()] == [
            a.name for a in cache.droidbench_runs()
        ]


class TestEngine:
    @pytest.fixture(scope="class")
    def cache(self):
        cache = TraceCache(droidbench=TraceCache().droidbench_runs())
        cache.prime_replay_state()
        return cache

    def test_run_cell_matches_evaluate_suite(self, cache):
        from repro.analysis.accuracy import evaluate_suite

        config = PIFTConfig(13, 3)
        cell = SweepCell(index=0, config=config)
        result = run_cell(cell, cache)
        baseline = evaluate_suite(cache.droidbench_runs(), config)
        assert result.report.as_dict() == baseline.as_dict()
        assert result.events_tracked > 0
        assert result.operations > 0

    def test_faulted_cell_matches_evaluate_suite_with_faults(self, cache):
        from repro.core.faults import FaultPlan
        from repro.analysis.degradation import evaluate_suite_with_faults

        config = PIFTConfig(13, 3)
        cell = SweepCell(index=0, config=config, rate=0.05, seed=9)
        result = run_cell(cell, cache)
        plan = FaultPlan(seed=9, rates=FaultRates(event_loss=0.05))
        report, stats = evaluate_suite_with_faults(
            cache.droidbench_runs(), config, plan
        )
        assert result.report.as_dict() == report.as_dict()
        assert result.fault_stats.as_dict() == stats.as_dict()

    def test_parallel_results_bit_identical_to_serial(self, cache):
        spec = GridSpec(window_sizes=(5, 13), propagation_caps=(2, 3),
                        rates=(0.0, 0.02), seed=3)
        serial = run_sweep(spec, cache=cache, jobs=1)
        parallel = run_sweep(spec, cache=cache, jobs=2)
        assert json.dumps(serial.as_dict(), sort_keys=True) == json.dumps(
            parallel.as_dict(), sort_keys=True
        )
        workers = {cell.worker for cell in parallel.cells}
        assert len(workers) > 1  # the pool actually fanned out

    def test_rejects_bad_jobs(self, cache):
        spec = GridSpec(window_sizes=(5,), propagation_caps=(2,))
        with pytest.raises(ValueError):
            run_sweep(spec, cache=cache, jobs=0)

    def test_progress_streams_in_submission_order(self, cache):
        spec = GridSpec(window_sizes=(5, 13), propagation_caps=(2,))
        seen = []
        run_sweep(
            spec, cache=cache, jobs=2,
            progress=lambda result, done, total: seen.append(
                (result.index, done, total)
            ),
        )
        assert seen == [(0, 1, 2), (1, 2, 2)]

    def test_timings_account_every_cell(self, cache):
        spec = GridSpec(window_sizes=(5, 13), propagation_caps=(2,))
        result = run_sweep(spec, cache=cache, jobs=1)
        timings = result.timings()
        assert timings["cells"] == 2
        assert timings["jobs"] == 1
        assert sum(
            row["cells"] for row in timings["workers"].values()
        ) == 2
        assert timings["events_tracked"] == sum(
            cell.events_tracked for cell in result.cells
        )

    def test_telemetry_counts_cells(self, cache):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        spec = GridSpec(window_sizes=(5, 13), propagation_caps=(2,))
        run_sweep(spec, cache=cache, jobs=1, telemetry=telemetry)
        family = telemetry.snapshot()["sweep"]
        assert family["sweep.cells"]["value"] == 2
        assert family["sweep.events_tracked"]["value"] > 0

    def test_malware_only_cells(self):
        from repro.core.config import PAPER_MALWARE_MINIMUM
        from repro.analysis.degradation import record_malware_runs

        cache = TraceCache(malware=record_malware_runs(work=8))
        cell = SweepCell(index=0, config=PAPER_MALWARE_MINIMUM,
                         droidbench=False, malware=True)
        result = run_cell(cell, cache)
        assert result.report is None
        assert result.malware_detected == 7
        assert result.malware_total == 7


class TestAnalysisRewire:
    """The analysis entry points ride the engine with identical results."""

    def test_accuracy_sweep_jobs_parity(self):
        from repro.analysis.accuracy import sweep
        from repro.apps.droidbench import record_suite

        apps = record_suite()
        serial = sweep(apps, window_sizes=(5, 13), propagation_caps=(2, 3))
        parallel = sweep(apps, window_sizes=(5, 13),
                         propagation_caps=(2, 3), jobs=2)
        assert (serial.accuracy == parallel.accuracy).all()
        assert serial.at(13, 3) == parallel.at(13, 3)

    def test_degradation_curve_jobs_parity(self):
        from repro.core.config import PAPER_MALWARE_MINIMUM
        from repro.analysis.degradation import (
            degradation_curve,
            record_malware_runs,
        )

        runs = record_malware_runs(work=8)
        serial = degradation_curve(
            [], PAPER_MALWARE_MINIMUM, rates=(0.0, 0.1), malware_runs=runs
        )
        parallel = degradation_curve(
            [], PAPER_MALWARE_MINIMUM, rates=(0.0, 0.1), malware_runs=runs,
            jobs=2,
        )
        assert json.dumps(serial.as_dict(), sort_keys=True) == json.dumps(
            parallel.as_dict(), sort_keys=True
        )

    def test_degradation_grid_jobs_parity(self):
        from repro.apps.droidbench import record_suite

        from repro.analysis.degradation import degradation_grid

        apps = record_suite()[:8]
        configs = [PIFTConfig(5, 2), PIFTConfig(13, 3)]
        serial = degradation_grid(apps, configs, rates=(0.0, 0.05))
        parallel = degradation_grid(apps, configs, rates=(0.0, 0.05), jobs=2)
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert json.dumps(
                serial[key].as_dict(), sort_keys=True
            ) == json.dumps(parallel[key].as_dict(), sort_keys=True)


class TestSweepCLI:
    def test_sweep_json_parallel(self, capsys):
        from repro.__main__ import main

        code = main([
            "sweep", "--windows", "5,13", "--caps", "2,3",
            "--jobs", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "sweep"
        assert len(payload["cells"]) == 4
        assert payload["timings"]["jobs"] == 2
        assert all(0.0 <= cell["accuracy"] <= 1.0
                   for cell in payload["cells"])

    def test_sweep_cli_serial_parallel_identical_cells(self, capsys):
        from repro.__main__ import main

        main(["sweep", "--windows", "5,13", "--caps", "2",
              "--rates", "0,0.05", "--json"])
        serial = json.loads(capsys.readouterr().out)["cells"]
        main(["sweep", "--windows", "5,13", "--caps", "2",
              "--rates", "0,0.05", "--jobs", "2", "--json"])
        parallel = json.loads(capsys.readouterr().out)["cells"]
        assert serial == parallel

    def test_sweep_human_output_renders_grid(self, capsys):
        from repro.__main__ import main

        code = main(["sweep", "--windows", "5,13", "--caps", "2,3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "NT\\NI" in out
        assert "best cell" in out

    def test_axis_parsing(self):
        from repro.__main__ import _parse_axis

        assert _parse_axis("1:4") == [1, 2, 3]
        assert _parse_axis("5,13") == [5, 13]

    def test_faults_cli_accepts_jobs(self, capsys):
        from repro.__main__ import main

        code = main([
            "faults", "--suite", "malware", "--rates", "0,0.1",
            "--work", "8", "--jobs", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [p["rate"] for p in payload["curve"]["points"]] == [0.0, 0.1]

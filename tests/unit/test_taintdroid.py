"""Unit tests for the TaintDroid-style variable-granularity baseline."""

import pytest

from repro.core.config import PIFTConfig
from repro.android import AndroidDevice
from repro.baseline import TaintDroidTracker
from repro.dalvik import MethodBuilder


def run_with_tracker(build):
    device = AndroidDevice(config=PIFTConfig(13, 3))
    tracker = TaintDroidTracker().attach(device.vm)
    builder = MethodBuilder("TD.main", registers=14)
    build(builder)
    device.install([builder.build()])
    device.run("TD.main")
    return device, tracker


class TestDirectFlows:
    def test_source_to_sink_same_object(self):
        def build(b):
            b.invoke_static("TelephonyManager.getDeviceId")
            b.move_result_object(0)
            b.const_string(1, "+15550000000")
            b.const(2, 0)
            b.invoke("SmsManager.sendTextMessage", 1, 2, 0)
            b.return_void()

        _, tracker = run_with_tracker(build)
        assert tracker.leak_detected

    def test_clean_payload_not_flagged(self):
        def build(b):
            b.invoke_static("TelephonyManager.getDeviceId")
            b.move_result_object(0)  # fetched, not sent
            b.const_string(1, "+15550000000")
            b.const(2, 0)
            b.const_string(3, "weather is nice")
            b.invoke("SmsManager.sendTextMessage", 1, 2, 3)
            b.return_void()

        _, tracker = run_with_tracker(build)
        assert not tracker.leak_detected

    def test_native_heuristic_through_stringbuilder(self):
        def build(b):
            b.invoke_static("TelephonyManager.getDeviceId")
            b.move_result_object(0)
            b.new_instance(1, "java/lang/StringBuilder")
            b.invoke_direct("StringBuilder.<init>", 1)
            b.invoke("StringBuilder.append", 1, 0)  # receiver tainted
            b.invoke("StringBuilder.toString", 1)  # result tainted
            b.move_result_object(2)
            b.const_string(3, "+15550000000")
            b.const(4, 0)
            b.invoke("SmsManager.sendTextMessage", 3, 4, 2)
            b.return_void()

        _, tracker = run_with_tracker(build)
        assert tracker.leak_detected

    def test_taint_through_fields_and_statics(self):
        def build(b):
            b.invoke_static("TelephonyManager.getDeviceId")
            b.move_result_object(0)
            b.sput_object(0, "TD.slot")
            b.sget_object(1, "TD.slot")
            b.const_string(2, "+15550000000")
            b.const(3, 0)
            b.invoke("SmsManager.sendTextMessage", 2, 3, 1)
            b.return_void()

        _, tracker = run_with_tracker(build)
        assert tracker.leak_detected

    def test_arithmetic_propagation(self):
        def build(b):
            b.invoke_static("TelephonyManager.getDeviceId")
            b.move_result_object(0)
            b.const(1, 0)
            b.invoke("String.charAt", 0, 1)
            b.move_result(2)  # tainted char
            b.mul_int_lit8(3, 2, 3)
            b.invoke_static("String.valueOfInt", 3)
            b.move_result_object(4)
            b.const_string(5, "+15550000000")
            b.const(6, 0)
            b.invoke("SmsManager.sendTextMessage", 5, 6, 4)
            b.return_void()

        _, tracker = run_with_tracker(build)
        assert tracker.leak_detected


class TestCharacteristicImprecision:
    def test_array_granularity_false_positive(self):
        """TaintDroid's documented DroidBench failure: one taint tag per
        array, so the clean element alarms too."""
        from repro.apps.droidbench import app_by_name

        app = app_by_name("ArraysAndLists.ArrayAccess1")
        device = AndroidDevice(config=PIFTConfig(13, 3))
        tracker = TaintDroidTracker().attach(device.vm)
        device.install(app.build(device))
        device.run(app.entry)
        assert not app.leaks
        assert not device.leak_detected  # PIFT (range-exact): no alarm
        assert tracker.leak_detected  # TaintDroid-style: false alarm

    def test_misses_control_flow_obfuscation_pift_catches(self):
        """ImplicitFlow1 (the paper's §4.2 example): PIFT catches it via
        temporal locality, variable-level tracking cannot."""
        from repro.apps.droidbench import app_by_name

        app = app_by_name("ImplicitFlows.ImplicitFlow1")
        device = AndroidDevice(config=PIFTConfig(13, 3))
        tracker = TaintDroidTracker().attach(device.vm)
        device.install(app.build(device))
        device.run(app.entry)
        assert device.leak_detected  # PIFT
        assert not tracker.leak_detected  # TaintDroid-style

    def test_catches_division_flow_pift_misses(self):
        """ImplicitFlow2: a direct (data) flow through the division helper
        — exact dataflow tracking catches it, PIFT at (13,3) does not."""
        from repro.apps.droidbench import app_by_name

        app = app_by_name("ImplicitFlows.ImplicitFlow2")
        device = AndroidDevice(config=PIFTConfig(13, 3))
        tracker = TaintDroidTracker().attach(device.vm)
        device.install(app.build(device))
        device.run(app.entry)
        assert not device.leak_detected  # PIFT misses at (13, 3)
        assert tracker.leak_detected  # variable-level tracking catches it


class TestLocationPath:
    def test_gps_flow_tracked(self):
        def build(b):
            b.invoke_static("LocationManager.getLastKnownLocation")
            b.move_result_object(0)
            b.invoke("Location.getLatitude", 0)
            b.move_result_wide(2)
            b.new_instance(4, "java/lang/StringBuilder")
            b.invoke_direct("StringBuilder.<init>", 4)
            b.invoke("StringBuilder.appendDouble", 4, 2, 3)
            b.invoke("StringBuilder.toString", 4)
            b.move_result_object(5)
            b.const_string(6, "+15550000000")
            b.const(7, 0)
            b.invoke("SmsManager.sendTextMessage", 6, 7, 5)
            b.return_void()

        _, tracker = run_with_tracker(build)
        assert tracker.leak_detected

"""Unit tests for the assembler-style constructors (repro.isa.asm)."""

import pytest

from repro.isa import asm
from repro.isa.instructions import (
    Address,
    Alu,
    AluOp,
    Imm,
    Load,
    Mov,
    Reg,
    ShiftKind,
    Store,
)


class TestOperandHelpers:
    def test_imm(self):
        assert asm.imm(42) == Imm(42)

    def test_plain_reg(self):
        operand = asm.reg("r3")
        assert operand.register == 3 and operand.shift is None

    def test_shifted_regs(self):
        assert asm.reg("r3", lsl=2).shift is ShiftKind.LSL
        assert asm.reg("r3", lsr=8).shift is ShiftKind.LSR
        assert asm.reg("r3", asr=31).shift is ShiftKind.ASR

    def test_alias_names(self):
        assert asm.reg("rFP").register == 5
        assert asm.reg("rINST").register == 7


class TestDataProcessing:
    def test_mov_accepts_int_and_str(self):
        assert isinstance(asm.mov("r0", 5).src, Imm)
        assert isinstance(asm.mov("r0", "r1").src, Reg)

    def test_alu_ops_map_correctly(self):
        cases = [
            (asm.add, AluOp.ADD), (asm.sub, AluOp.SUB), (asm.rsb, AluOp.RSB),
            (asm.adc, AluOp.ADC), (asm.sbc, AluOp.SBC), (asm.rsc, AluOp.RSC),
            (asm.and_, AluOp.AND), (asm.orr, AluOp.ORR),
            (asm.eor, AluOp.EOR), (asm.bic, AluOp.BIC),
        ]
        for builder, op in cases:
            instruction = builder("r0", "r1", 2)
            assert isinstance(instruction, Alu)
            assert instruction.op is op

    def test_s_suffix_sets_flags(self):
        assert asm.adds("r0", "r1", 1).set_flags
        assert asm.subs("r0", "r1", 1).set_flags
        assert not asm.add("r0", "r1", 1).set_flags


class TestMemoryBuilders:
    def test_widths(self):
        assert asm.ldr("r0", "r1").width == 4
        assert asm.ldrh("r0", "r1").width == 2
        assert asm.ldrb("r0", "r1").width == 1
        assert asm.str_("r0", "r1").width == 4
        assert asm.strh("r0", "r1").width == 2
        assert asm.strb("r0", "r1").width == 1

    def test_signed_loads(self):
        assert asm.ldrsh("r0", "r1").signed
        assert asm.ldrsb("r0", "r1").signed

    def test_pair_ops(self):
        assert asm.ldrd("r0", "r1", "r2").rd2 == 1
        assert asm.strd("r0", "r1", "r2").rd2 == 1

    def test_offset_kinds(self):
        by_imm = asm.ldr("r0", "r1", 8)
        assert by_imm.address.offset == Imm(8)
        by_reg = asm.ldr("r0", "r1", asm.reg("r2", lsl=2))
        assert isinstance(by_reg.address.offset, Reg)

    def test_writeback_and_post(self):
        wb = asm.ldrh("r0", "r1", 2, wb=True)
        assert wb.address.writeback and wb.address.pre
        post = asm.ldrh("r0", "r1", 2, post=True)
        assert not post.address.pre

    def test_string_rendering(self):
        assert str(asm.ldr("r1", "rFP", asm.reg("r3", lsl=2))) == (
            "ldr r1, [r5, r3, LSL #2]"
        )
        assert str(asm.ldrh("r7", "r4", 2, wb=True)) == "ldrh r7, [r4, #2]!"


class TestPatch:
    def test_patch_roundtrip(self):
        patch = asm.patch("r0", 0x1234, reads=("r1", "r2"), mnemonic="umull")
        assert patch.rd == 0
        assert patch.reads == (1, 2)
        assert patch.mnemonic == "umull"

"""Unit tests for the instruction set and the tracing CPU."""

import pytest

from repro.core.events import AccessKind
from repro.core.ranges import AddressRange
from repro.isa import asm
from repro.isa.abihelpers import HELPER_BODY_LENGTHS, helper_body, helper_length
from repro.isa.cpu import CPU, FullTraceRecorder, TraceRecorder
from repro.isa.instructions import Load, Store, Ubfx


@pytest.fixture
def cpu():
    return CPU()


class TestDataProcessing:
    def test_mov_immediate(self, cpu):
        cpu.execute(asm.mov("r0", 42))
        assert cpu.registers["r0"] == 42

    def test_mov_register_with_lsr(self, cpu):
        # Figure 8 line 1: mov r3, rINST, lsr #12
        cpu.registers["rINST"] = 0x3456
        cpu.execute(asm.mov("r3", asm.reg("rINST", lsr=12)))
        assert cpu.registers["r3"] == 0x3

    def test_mvn(self, cpu):
        cpu.execute(asm.mvn("r0", 0))
        assert cpu.registers["r0"] == 0xFFFFFFFF

    def test_ubfx_extracts_field(self, cpu):
        # Figure 8 line 2: ubfx r9, rINST, #8, #4
        cpu.registers["rINST"] = 0x3456
        cpu.execute(asm.ubfx("r9", "rINST", 8, 4))
        assert cpu.registers["r9"] == 0x4

    def test_ubfx_validates_field(self):
        with pytest.raises(ValueError):
            Ubfx(0, 1, 30, 8)

    def test_add_sub_wrap(self, cpu):
        cpu.registers["r1"] = 0xFFFFFFFF
        cpu.execute(asm.add("r0", "r1", 1))
        assert cpu.registers["r0"] == 0

    def test_rsb(self, cpu):
        cpu.registers["r1"] = 3
        cpu.execute(asm.rsb("r0", "r1", 10))
        assert cpu.registers["r0"] == 7

    def test_bitwise_ops(self, cpu):
        cpu.registers["r1"] = 0b1100
        cpu.execute(asm.and_("r0", "r1", 0b1010))
        assert cpu.registers["r0"] == 0b1000
        cpu.execute(asm.orr("r0", "r1", 0b0011))
        assert cpu.registers["r0"] == 0b1111
        cpu.execute(asm.eor("r0", "r1", 0b1111))
        assert cpu.registers["r0"] == 0b0011
        cpu.execute(asm.bic("r0", "r1", 0b0100))
        assert cpu.registers["r0"] == 0b1000

    def test_mul(self, cpu):
        cpu.registers["r1"] = 6
        cpu.registers["r2"] = 7
        cpu.execute(asm.mul("r0", "r1", "r2"))
        assert cpu.registers["r0"] == 42

    def test_adds_sets_flags(self, cpu):
        cpu.registers["r1"] = 0
        cpu.execute(asm.adds("r0", "r1", 0))
        assert cpu.registers.flags.zero

    def test_cmp_flags(self, cpu):
        cpu.registers["r3"] = 5
        cpu.execute(asm.cmp("r3", 5))
        assert cpu.registers.flags.zero
        cpu.execute(asm.cmp("r3", 9))
        assert cpu.registers.flags.negative
        assert not cpu.registers.flags.carry

    def test_asr_shift(self, cpu):
        cpu.registers["r1"] = 0x80000000
        cpu.execute(asm.mov("r0", asm.reg("r1", asr=4)))
        assert cpu.registers["r0"] == 0xF8000000

    def test_reg_operand_rejects_two_shifts(self):
        with pytest.raises(ValueError):
            asm.reg("r1", lsl=2, lsr=3)


class TestMemoryInstructions:
    def test_ldr_str_roundtrip(self, cpu):
        cpu.registers["r1"] = 0x5000
        cpu.registers["r0"] = 0xDEADBEEF
        cpu.execute(asm.str_("r0", "r1"))
        cpu.execute(asm.ldr("r2", "r1"))
        assert cpu.registers["r2"] == 0xDEADBEEF

    def test_scaled_register_offset(self, cpu):
        # Figure 8 GET_VREG: ldr r1, [rFP, r3, lsl #2]
        cpu.registers["rFP"] = 0x5000
        cpu.registers["r3"] = 4
        cpu.address_space.memory.write_u32(0x5010, 1234)
        record = cpu.execute(asm.ldr("r1", "rFP", asm.reg("r3", lsl=2)))
        assert cpu.registers["r1"] == 1234
        assert record.address_range == AddressRange(0x5010, 0x5013)

    def test_ldrh_event_covers_two_bytes(self, cpu):
        cpu.registers["r1"] = 0x5000
        record = cpu.execute(asm.ldrh("r6", "r1"))
        assert record.kind is AccessKind.LOAD
        assert record.address_range == AddressRange(0x5000, 0x5001)

    def test_strh_truncates(self, cpu):
        cpu.registers["r0"] = 0x12345678
        cpu.registers["r1"] = 0x5000
        cpu.execute(asm.strh("r0", "r1"))
        assert cpu.address_space.memory.read_u16(0x5000) == 0x5678
        assert cpu.address_space.memory.read_u16(0x5002) == 0

    def test_ldrsh_sign_extends(self, cpu):
        cpu.registers["r1"] = 0x5000
        cpu.address_space.memory.write_u16(0x5000, 0x8001)
        cpu.execute(asm.ldrsh("r0", "r1"))
        assert cpu.registers.read_signed("r0") == -32767

    def test_ldrb_strb(self, cpu):
        cpu.registers["r1"] = 0x5000
        cpu.registers["r0"] = 0xAB
        cpu.execute(asm.strb("r0", "r1"))
        record = cpu.execute(asm.ldrb("r2", "r1"))
        assert cpu.registers["r2"] == 0xAB
        assert record.address_range.size == 1

    def test_ldrd_strd_cover_eight_bytes(self, cpu):
        cpu.registers["r1"] = 0x5000
        cpu.registers["r2"] = 0x11111111
        cpu.registers["r3"] = 0x22222222
        store_rec = cpu.execute(asm.strd("r2", "r3", "r1"))
        assert store_rec.address_range.size == 8
        load_rec = cpu.execute(asm.ldrd("r4", "r5", "r1"))
        assert load_rec.address_range.size == 8
        assert cpu.registers["r4"] == 0x11111111
        assert cpu.registers["r5"] == 0x22222222

    def test_pre_index_writeback(self, cpu):
        # Figure 9: ldrh r7, [r4, #2]!
        cpu.registers["r4"] = 0x5000
        cpu.address_space.memory.write_u16(0x5002, 0x99)
        record = cpu.execute(asm.ldrh("r7", "r4", 2, wb=True))
        assert cpu.registers["r7"] == 0x99
        assert cpu.registers["r4"] == 0x5002
        assert record.address_range == AddressRange(0x5002, 0x5003)

    def test_post_index(self, cpu):
        cpu.registers["r4"] = 0x5000
        cpu.address_space.memory.write_u16(0x5000, 0x77)
        record = cpu.execute(asm.ldrh("r7", "r4", 2, post=True))
        assert cpu.registers["r7"] == 0x77
        assert cpu.registers["r4"] == 0x5002
        assert record.address_range == AddressRange(0x5000, 0x5001)

    def test_ldmia_stmdb(self, cpu):
        cpu.registers["sp"] = 0x6000
        cpu.registers["r0"] = 1
        cpu.registers["r1"] = 2
        rec = cpu.execute(asm.stmdb("sp", ["r0", "r1"]))
        assert rec.kind is AccessKind.STORE
        assert rec.address_range == AddressRange(0x5FF8, 0x5FFF)
        assert cpu.registers["sp"] == 0x5FF8
        cpu.registers["r0"] = 0
        cpu.registers["r1"] = 0
        rec = cpu.execute(asm.ldmia("sp", ["r0", "r1"]))
        assert rec.address_range.size == 8
        assert (cpu.registers["r0"], cpu.registers["r1"]) == (1, 2)
        assert cpu.registers["sp"] == 0x6000

    def test_data_registers_exclude_address_registers(self, cpu):
        cpu.registers["r1"] = 0x5000
        record = cpu.execute(asm.str_("r0", "r1"))
        assert record.data_registers == (0,)
        assert 1 in record.reads


class TestCpuObserved:
    def test_instruction_counting(self, cpu):
        cpu.run([asm.nop(), asm.nop(), asm.mov("r0", 1)])
        assert cpu.instruction_count() == 3

    def test_per_pid_counters(self, cpu):
        cpu.context_switch(1)
        cpu.run([asm.nop()] * 3)
        cpu.context_switch(2)
        cpu.run([asm.nop()])
        assert cpu.instruction_count(1) == 3
        assert cpu.instruction_count(2) == 1

    def test_trace_recorder_collects_memory_events(self, cpu):
        recorder = TraceRecorder()
        cpu.add_observer(recorder)
        cpu.registers["r1"] = 0x5000
        cpu.run(
            [
                asm.ldrh("r6", "r1"),
                asm.adds("r3", "r3", 1),
                asm.strh("r6", "r1", 0x10),
                asm.nop(),
            ]
        )
        trace = recorder.trace
        assert trace.load_count == 1
        assert trace.store_count == 1
        assert trace.instruction_count == 4
        load_event, store_event = trace.events
        assert load_event.instruction_index == 0
        assert store_event.instruction_index == 2

    def test_full_trace_recorder_keeps_every_record(self, cpu):
        recorder = FullTraceRecorder()
        cpu.add_observer(recorder)
        cpu.run([asm.nop(), asm.mov("r0", 1)])
        assert [r.mnemonic for r in recorder.records] == ["nop", "mov"]

    def test_remove_observer(self, cpu):
        recorder = FullTraceRecorder()
        cpu.add_observer(recorder)
        cpu.remove_observer(recorder)
        cpu.run([asm.nop()])
        assert not recorder.records

    def test_branch_is_stream_marker_only(self, cpu):
        record = cpu.execute(asm.b("loop"))
        assert not record.is_memory
        assert cpu.instruction_count() == 1


class TestAbiHelpers:
    def test_bodies_have_declared_length(self, cpu):
        for name, length in HELPER_BODY_LENGTHS.items():
            body = helper_body(name)
            assert len(body) == length == helper_length(name)

    def test_bodies_contain_no_memory_traffic(self, cpu):
        for name in HELPER_BODY_LENGTHS:
            for instruction in helper_body(name):
                record = cpu.execute(instruction)
                assert not record.is_memory, f"{name}: {instruction}"

    def test_result_register_derives_from_operands(self, cpu):
        cpu.registers["r0"] = 0x11
        cpu.registers["r1"] = 0x22
        for instruction in helper_body("fadd", rd="r0", rn="r0", rm="r1"):
            cpu.execute(instruction)
        # r0 must have been recombined from the operands (dataflow intact).
        assert cpu.registers["r0"] == 0x11 ^ 0x22

    def test_unknown_helper_rejected(self):
        with pytest.raises(ValueError):
            helper_body("nosuch")
        with pytest.raises(ValueError):
            helper_length("nosuch")

    def test_float_helpers_are_long_enough_to_need_ni_10(self):
        # The Figure 11 effect: float->string needs NI >= 10.  The end-to-end
        # distance is value-load (1) + helper body + digit store.
        assert helper_length("d2s_digit") + 1 >= 10
        assert helper_length("f2s_digit") + 1 >= 10

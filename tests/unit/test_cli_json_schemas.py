"""Schema freeze for the ``sweep`` and ``faults`` CLI ``--json`` output.

Downstream tooling (the CI smoke checks, notebook loaders, the perf
history) parses these documents; these tests pin the key structure so a
refactor can't silently rename or drop fields.  Small grids / low work
keep them tier-1 fast.
"""

import json

import pytest

from repro.__main__ import main


_CACHE = {}


def run_json(capsys, argv):
    key = tuple(argv)
    if key not in _CACHE:
        capsys.readouterr()  # drop anything a previous call left buffered
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        # Every --json document must round-trip through the json module
        # (no NaN/Inf literals, no non-string keys).
        json.loads(json.dumps(payload, allow_nan=False))
        _CACHE[key] = payload
    return _CACHE[key]


class TestSweepJson:
    ARGS = ["sweep", "--windows", "5,13", "--caps", "2,3", "--json"]

    def test_top_level_schema(self, capsys):
        payload = run_json(capsys, self.ARGS)
        assert payload["command"] == "sweep"
        assert {"site", "seed", "cells", "timings"} <= payload.keys()
        assert len(payload["cells"]) == 4

    def test_cell_schema(self, capsys):
        payload = run_json(capsys, self.ARGS)
        for cell in payload["cells"]:
            assert {
                "index", "ni", "nt", "untainting", "vectorized", "rate",
                "site", "seed", "state_spec", "events_tracked",
                "operations", "faults", "accuracy", "report",
            } <= cell.keys()
            report = cell["report"]
            assert {
                "true_positives", "false_positives",
                "true_negatives", "false_negatives",
            } <= report.keys()
            assert 0.0 <= cell["accuracy"] <= 1.0

    def test_timings_schema(self, capsys):
        payload = run_json(capsys, self.ARGS)
        timings = payload["timings"]
        assert {
            "jobs", "wall_seconds", "cells", "events_tracked", "workers",
        } <= timings.keys()
        assert timings["cells"] == 4
        for worker in timings["workers"].values():
            assert {
                "cells", "events", "busy_seconds", "events_per_second",
            } <= worker.keys()

    def test_vectorized_flag_round_trips(self, capsys):
        on = run_json(capsys, self.ARGS)
        off = run_json(capsys, self.ARGS + ["--no-vectorized"])
        assert all(c["vectorized"] for c in on["cells"])
        assert not any(c["vectorized"] for c in off["cells"])
        # Execution strategy must not leak into results: same cells
        # modulo the flag itself and wall-clock bookkeeping.
        def essence(payload):
            return json.dumps(
                [
                    {k: v for k, v in cell.items() if k != "vectorized"}
                    for cell in payload["cells"]
                ],
                sort_keys=True,
            )

        assert essence(on) == essence(off)


class TestFaultsJson:
    ARGS = [
        "faults", "--suite", "malware", "--rates", "0,1e-1",
        "--work", "8", "--json",
    ]

    def test_top_level_schema(self, capsys):
        payload = run_json(capsys, self.ARGS)
        assert payload["command"] == "faults"
        assert {
            "config", "site", "seed", "base_rates", "policy",
            "curve", "accuracy_non_increasing", "latency",
        } <= payload.keys()
        assert payload["config"]["vectorized"] is True

    def test_curve_schema(self, capsys):
        payload = run_json(capsys, self.ARGS)
        points = payload["curve"]["points"]
        assert [p["rate"] for p in points] == [0.0, 0.1]
        for point in points:
            assert {"rate", "faults"} <= point.keys()
            assert "total_injections" in point["faults"]
        # Rate 0 must be fault-free.
        assert points[0]["faults"]["total_injections"] == 0

    def test_latency_schema(self, capsys):
        payload = run_json(capsys, self.ARGS)
        assert [row["rate"] for row in payload["latency"]] == [0.0, 0.1]
        for row in payload["latency"]:
            assert {
                "rate", "late_detections", "mean_events_behind",
                "max_events_behind", "missed", "forced_drops",
                "degraded_checks",
            } <= row.keys()

    def test_no_vectorized_escape_hatch(self, capsys):
        payload = run_json(capsys, self.ARGS + ["--no-vectorized"])
        assert payload["config"]["vectorized"] is False


class TestStoreJson:
    """Schema freeze for ``repro store stats --json`` and the ``store``
    block the sweep/faults documents grow under ``--store``."""

    @pytest.fixture(scope="class")
    def store_dir(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("cli-store"))

    def test_stats_schema_on_fresh_store(self, capsys, store_dir):
        capsys.readouterr()
        assert main(["store", "stats", "--store", store_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "store-stats"
        assert set(payload) >= {
            "command", "root", "store_version", "entries", "payload_bytes",
            "kinds", "quarantined", "journals", "counters",
        }
        assert payload["entries"] == 0
        assert set(payload["counters"]) == {
            "hits", "misses", "writes", "corruptions",
        }

    def test_sweep_store_block_schema(self, capsys, store_dir):
        argv = [
            "sweep", "--windows", "5", "--caps", "2",
            "--store", store_dir, "--json",
        ]
        capsys.readouterr()
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["store"]) == {
            "root", "run_id", "resumed_cells", "recordings", "store_hits",
        }
        assert payload["store"]["root"] == store_dir
        assert payload["store"]["recordings"] == 1

        # Second run against the same store: zero recordings, same cells.
        capsys.readouterr()
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["store"]["recordings"] == 0
        assert warm["store"]["store_hits"] >= 1
        assert json.dumps(warm["cells"], sort_keys=True) == json.dumps(
            payload["cells"], sort_keys=True
        )

    def test_report_and_trace_out_schemas(self, capsys, tmp_path):
        """Schema freeze for ``repro report --json`` and ``--trace-out``."""
        from repro.telemetry import validate_chrome_trace

        store_dir = str(tmp_path / "report-store")
        trace_path = tmp_path / "run.trace.json"
        capsys.readouterr()
        assert main([
            "sweep", "--windows", "5,13", "--caps", "2", "--jobs", "2",
            "--store", store_dir, "--run-id", "run-smoke",
            "--trace-out", str(trace_path), "--stall-timeout", "60",
            "--json",
        ]) == 0
        sweep_payload = json.loads(capsys.readouterr().out)
        assert sweep_payload["trace_out"] == str(trace_path)

        document = json.loads(trace_path.read_text())
        summary = validate_chrome_trace(document)
        assert summary["spans"] >= 2  # one sweep.cell span per cell
        assert document["otherData"]["run_id"] == "run-smoke"

        capsys.readouterr()
        assert main([
            "report", "run-smoke", "--store", store_dir, "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["command"] == "report"
        assert {
            "run_id", "fingerprint", "cells_total", "cells_completed",
            "wall_seconds", "per_cell", "per_worker", "slowest_cells",
            "telemetry",
        } <= report.keys()
        assert report["run_id"] == "run-smoke"
        assert report["cells_completed"] == report["cells_total"] == 2
        for row in report["per_cell"]:
            assert {
                "index", "ni", "nt", "rate", "site", "accuracy",
                "events_tracked", "operations", "duration_seconds",
                "worker",
            } <= row.keys()
        for worker in report["per_worker"].values():
            assert {
                "pid", "worker_id", "cells", "events_tracked",
                "busy_seconds", "utilization",
            } <= worker.keys()
        assert {
            "events", "cell_spans", "heartbeats", "stalls",
            "dropped_events", "store_hits", "store_misses",
        } <= report["telemetry"].keys()
        assert report["telemetry"]["cell_spans"] == 2

        # Human form renders without a telemetry/store requirement.
        capsys.readouterr()
        assert main(["report", "run-smoke", "--store", store_dir]) == 0
        human = capsys.readouterr().out
        assert "per-worker:" in human and "slowest cells:" in human

    def test_report_unknown_run_exits_with_known_ids(self, capsys, store_dir):
        with pytest.raises(SystemExit, match="runs in this store"):
            main(["report", "no-such-run", "--store", store_dir])

    def test_verify_and_prune_schemas(self, capsys, store_dir):
        capsys.readouterr()
        assert main(["store", "verify", "--store", store_dir, "--json"]) == 0
        verify = json.loads(capsys.readouterr().out)
        assert set(verify) >= {
            "command", "checked", "corrupt", "digests", "quarantined",
        }
        assert verify["corrupt"] == 0
        assert verify["quarantined"] == 0

        capsys.readouterr()
        assert main(["store", "prune", "--store", store_dir, "--json"]) == 0
        prune = json.loads(capsys.readouterr().out)
        assert set(prune) >= {
            "command", "removed_entries", "quarantine_files_removed",
            "removed_bytes",
        }

    def test_verify_exits_nonzero_on_corruption(self, capsys, tmp_path):
        """``repro store verify`` must fail loudly (exit 1) when any
        entry is corrupt or sitting in quarantine — CI gates on it."""
        from pathlib import Path

        store_dir = str(tmp_path / "bad-store")
        capsys.readouterr()
        assert main([
            "sweep", "--windows", "5", "--caps", "2",
            "--store", store_dir, "--json",
        ]) == 0
        capsys.readouterr()
        payload_path = next(Path(store_dir).glob("objects/*/*.suite.gz"))
        payload_path.write_bytes(b"garbage")

        assert main(["store", "verify", "--store", store_dir]) == 1
        assert "1 corrupt" in capsys.readouterr().out
        # The corrupt entry is now quarantined; verify keeps failing
        # until the quarantine is inspected and pruned.
        capsys.readouterr()
        assert main(["store", "verify", "--store", store_dir, "--json"]) == 1
        second = json.loads(capsys.readouterr().out)
        assert second["corrupt"] == 0 and second["quarantined"] == 2
        assert main(["store", "prune", "--store", store_dir]) == 0
        capsys.readouterr()
        assert main(["store", "verify", "--store", store_dir]) == 0


class TestQueueBackendCli:
    """The ``--backend queue`` flag family on ``sweep``."""

    ARGS = ["sweep", "--windows", "5,13", "--caps", "2,3", "--json"]

    def test_queue_backend_matches_pool_cells(self, capsys):
        pool = run_json(capsys, self.ARGS)
        queued = run_json(
            capsys, self.ARGS + ["--jobs", "2", "--backend", "queue"]
        )
        assert json.dumps(queued["cells"], sort_keys=True) == json.dumps(
            pool["cells"], sort_keys=True
        )
        assert queued["poisoned"] == []
        timings = queued["timings"]
        assert {"retries", "worker_deaths", "worker_restarts", "poisoned"} <= (
            timings.keys()
        )
        assert timings["worker_deaths"] == 0

    def test_chaos_survives_bit_identical(self, capsys):
        pool = run_json(capsys, self.ARGS)
        chaotic = run_json(capsys, self.ARGS + [
            "--jobs", "2", "--backend", "queue",
            "--lease-timeout", "5", "--chaos", "kill-workers:0.3",
            "--chaos-seed", "1",
        ])
        assert json.dumps(chaotic["cells"], sort_keys=True) == json.dumps(
            pool["cells"], sort_keys=True
        )
        assert chaotic["poisoned"] == []
        assert chaotic["timings"]["worker_deaths"] > 0

    def test_poisoned_cells_surface_in_json_and_stderr(self, capsys):
        capsys.readouterr()
        assert main(self.ARGS + [
            "--jobs", "2", "--backend", "queue", "--max-retries", "0",
            "--chaos", "fail-cells:1", "--chaos-seed", "7",
        ]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["cells"] == []
        assert len(payload["poisoned"]) == 4
        for cell in payload["poisoned"]:
            assert {"index", "attempts", "error"} <= cell.keys()
        assert "poisoned after 1 attempts" in captured.err

    def test_chaos_requires_queue_backend(self):
        with pytest.raises(SystemExit, match="--chaos requires"):
            main(self.ARGS + ["--chaos", "kill-workers:0.2"])

    def test_bad_chaos_spec_rejected(self):
        with pytest.raises(SystemExit, match="--chaos: "):
            main(self.ARGS + [
                "--backend", "queue", "--chaos", "explode-everything:1",
            ])


class TestColourJson:
    """Schema freeze for the colour-attribution blocks: ``suite
    --colours``, the ``provenance`` subcommand, ``sweep --colours``
    cells, and the run report's ``colour_attribution`` fold."""

    COLOUR_ROW_KEYS = {"colour", "apps", "app_count", "sink_hits", "channels"}
    ATTRIBUTION_KEYS = {
        "window_size", "max_propagations", "attributed_sink_hits",
        "colours", "apps",
    }

    def _assert_attribution_schema(self, attribution):
        assert self.ATTRIBUTION_KEYS <= attribution.keys()
        assert attribution["attributed_sink_hits"] > 0
        for row in attribution["colours"]:
            assert self.COLOUR_ROW_KEYS <= row.keys()
            assert row["app_count"] == len(row["apps"])
            assert row["sink_hits"] >= sum(row["channels"].values()) > 0
        for app in attribution["apps"]:
            assert {
                "app", "category", "leaks", "alarm", "colours", "sink_hits",
            } <= app.keys()
            for hit in app["sink_hits"]:
                assert {
                    "sink", "channel", "index", "pid", "colours",
                } <= hit.keys()

    def test_suite_colours_block_schema(self, capsys):
        plain = run_json(capsys, ["suite", "--json"])
        coloured = run_json(capsys, ["suite", "--colours", "--json"])
        assert "colours" not in plain
        self._assert_attribution_schema(coloured["colours"])
        # Attribution is a second pass, never a second opinion: the
        # verdict payload is byte-identical with and without it.
        assert json.dumps(plain["report"], sort_keys=True) == json.dumps(
            coloured["report"], sort_keys=True
        )

    def test_provenance_schema(self, capsys):
        payload = run_json(capsys, ["provenance", "--json"])
        assert payload["command"] == "provenance"
        assert {"ni", "nt", "untainting"} <= payload["config"].keys()
        self._assert_attribution_schema(payload)

    def test_sweep_colours_cell_schema(self, capsys):
        plain = run_json(
            capsys, ["sweep", "--windows", "5,13", "--caps", "2", "--json"]
        )
        coloured = run_json(
            capsys,
            ["sweep", "--windows", "5,13", "--caps", "2", "--colours",
             "--json"],
        )
        assert all("colours" not in cell for cell in plain["cells"])
        for cell in coloured["cells"]:
            self._assert_attribution_schema(cell["colours"])
        # The colours key is additive: everything else is unchanged.
        def essence(payload):
            return json.dumps(
                [
                    {k: v for k, v in cell.items() if k != "colours"}
                    for cell in payload["cells"]
                ],
                sort_keys=True,
            )

        assert essence(plain) == essence(coloured)

    def test_report_colour_attribution_schema(self, capsys, tmp_path):
        store_dir = str(tmp_path / "colour-store")
        capsys.readouterr()
        assert main([
            "sweep", "--windows", "5,13", "--caps", "2", "--colours",
            "--store", store_dir, "--run-id", "run-colours", "--json",
        ]) == 0
        capsys.readouterr()
        assert main([
            "report", "run-colours", "--store", store_dir, "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        attribution = report["colour_attribution"]
        assert attribution["cells"] == 2
        for row in attribution["colours"]:
            assert {"colour", "apps", "sink_hits"} <= row.keys()
            assert row["sink_hits"] > 0
        capsys.readouterr()
        assert main(["report", "run-colours", "--store", store_dir]) == 0
        human = capsys.readouterr().out
        assert "leak attribution (2 coloured cells):" in human

    def test_plain_report_has_no_attribution(self, capsys, tmp_path):
        store_dir = str(tmp_path / "plain-store")
        capsys.readouterr()
        assert main([
            "sweep", "--windows", "5", "--caps", "2",
            "--store", store_dir, "--run-id", "run-plain", "--json",
        ]) == 0
        capsys.readouterr()
        assert main([
            "report", "run-plain", "--store", store_dir, "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["colour_attribution"] is None
        capsys.readouterr()
        assert main(["report", "run-plain", "--store", store_dir]) == 0
        assert "leak attribution" not in capsys.readouterr().out

"""Unit tests for the VM heap object model."""

import pytest

from repro.core.ranges import AddressRange
from repro.isa.memory import AddressSpace
from repro.dalvik.objects import (
    Heap,
    NullPointerError,
    VMArray,
    VMInstance,
    VMString,
)


@pytest.fixture
def heap():
    return Heap(AddressSpace())


class TestVMString:
    def test_two_bytes_per_char(self, heap):
        # Paper footnote 1: "in Java, each character consumes two bytes".
        s = heap.new_string("abc")
        assert s.length == 3
        assert s.data_range().size == 6

    def test_value_roundtrip(self, heap):
        s = heap.new_string("type=sms&imei=")
        assert s.value() == "type=sms&imei="

    def test_char_addressing(self, heap):
        s = heap.new_string("xyz")
        assert s.char_address(1) == s.chars_base + 2
        assert s.char_range(2).size == 2
        with pytest.raises(IndexError):
            s.char_address(3)

    def test_empty_string_has_addressable_payload(self, heap):
        s = heap.new_string("")
        assert s.data_range().size >= 1

    def test_interning_reuses_instances(self, heap):
        a = heap.intern_string("hello")
        b = heap.intern_string("hello")
        c = heap.intern_string("other")
        assert a is b
        assert a is not c

    def test_strings_do_not_overlap(self, heap):
        a = heap.new_string("aaaa")
        b = heap.new_string("bbbb")
        assert not a.data_range().overlaps(b.data_range())


class TestVMArray:
    def test_element_addressing(self, heap):
        arr = heap.new_array(10, element_width=4)
        assert arr.element_address(3) == arr.data_base + 12
        assert arr.element_range(3).size == 4
        with pytest.raises(IndexError):
            arr.element_address(10)

    def test_get_put(self, heap):
        arr = heap.new_array(4, element_width=2, class_name="[C")
        arr.put(2, ord("x"))
        assert arr.get(2) == ord("x")

    def test_put_masks_to_width(self, heap):
        arr = heap.new_array(4, element_width=1, class_name="[B")
        arr.put(0, 0x1FF)
        assert arr.get(0) == 0xFF

    def test_length_word_in_memory(self, heap):
        arr = heap.new_array(7, element_width=4)
        assert heap.space.memory.read_u32(arr.address + 8) == 7

    def test_rejects_bad_width(self, heap):
        with pytest.raises(ValueError):
            VMArray(heap, 0x1000, heap.lookup_class(Heap.OBJECT_CLASS), 4, 3)


class TestVMInstanceAndClasses:
    def test_field_layout_offsets(self, heap):
        heap.define_class("T/Pair", fields=[("first", 4), ("second", 4)])
        obj = heap.new_instance("T/Pair")
        first = obj.field_range("first")
        second = obj.field_range("second")
        assert first.size == 4 and second.size == 4
        assert not first.overlaps(second)

    def test_wide_field_alignment(self, heap):
        heap.define_class("T/Mixed", fields=[("flag", 4), ("value", 8)])
        spec = heap.lookup_class("T/Mixed").field("value")
        assert spec.offset % 8 == 0

    def test_field_get_set(self, heap):
        heap.define_class("T/Box", fields=[("v", 4)])
        obj = heap.new_instance("T/Box")
        obj.set_field("v", 0xCAFE)
        assert obj.get_field("v") == 0xCAFE

    def test_inherited_fields(self, heap):
        heap.define_class("T/Base", fields=[("a", 4)])
        heap.define_class("T/Derived", fields=[("b", 4)], superclass="T/Base")
        obj = heap.new_instance("T/Derived")
        obj.set_field("a", 1)
        obj.set_field("b", 2)
        assert obj.get_field("a") == 1
        assert obj.get_field("b") == 2

    def test_subclass_relation(self, heap):
        base = heap.define_class("T/A")
        derived = heap.define_class("T/B", superclass="T/A")
        assert derived.is_subclass_of(base)
        assert not base.is_subclass_of(derived)

    def test_unknown_field_rejected(self, heap):
        heap.define_class("T/Empty")
        with pytest.raises(KeyError):
            heap.lookup_class("T/Empty").field("ghost")

    def test_duplicate_class_rejected(self, heap):
        heap.define_class("T/Once")
        with pytest.raises(ValueError):
            heap.define_class("T/Once")

    def test_statics_area(self, heap):
        klass = heap.define_class("T/WithStatics", statics=[("count", 4)])
        assert klass.static_base is not None
        assert klass.static_field("count").offset == 0


class TestDereference:
    def test_deref_roundtrip(self, heap):
        s = heap.new_string("x")
        assert heap.deref(s.address) is s

    def test_null_deref_raises(self, heap):
        with pytest.raises(NullPointerError):
            heap.deref(0)

    def test_wild_pointer_rejected(self, heap):
        with pytest.raises(ValueError):
            heap.deref(0x12345678)

    def test_maybe_deref(self, heap):
        assert heap.maybe_deref(0) is None
        s = heap.new_string("x")
        assert heap.maybe_deref(s.address) is s

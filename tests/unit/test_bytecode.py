"""Unit tests for the opcode table, instruction encoding, and validation."""

import pytest

from repro.dalvik.bytecode import (
    Category,
    Format,
    Instr,
    OPCODES,
    data_moving_opcodes,
    known_distance_opcodes,
    opcode,
    unknown_distance_opcodes,
)


class TestOpcodeTable:
    def test_paper_unknown_count(self):
        # Paper §4.1: "There exist 47 bytecodes of which load-store
        # distances were not measured" (ABI-helper backed).
        assert len(unknown_distance_opcodes()) == 47

    def test_every_unknown_has_a_helper(self):
        for info in unknown_distance_opcodes():
            assert info.helper is not None, info.name

    def test_known_plus_unknown_equals_movers(self):
        assert len(known_distance_opcodes()) + len(
            unknown_distance_opcodes()
        ) == len(data_moving_opcodes())

    def test_paper_table1_spot_checks(self):
        # Distances straight out of the paper's Table 1 / Figure 10.
        expected = {
            "return": 1,
            "return-wide": 1,
            "return-object": 1,
            "move-result": 2,
            "move-result-object": 2,
            "move/16": 2,
            "move/from16": 2,
            "aget": 2,
            "aput": 2,
            "sput": 2,
            "iput-quick": 2,
            "move": 3,
            "move-object": 3,
            "sget": 3,
            "sget-object": 3,
            "long-to-int": 3,
            "iput": 4,
            "iget-quick": 4,
            "neg-double": 4,
            "iget": 5,
            "iget-object": 5,
            "iput-object": 5,
            "int-to-long": 5,
            "add-int/lit8": 5,
            "add-int/2addr": 5,
            "int-to-char": 6,
            "sub-long": 6,
            "shl-int/lit8": 6,
            "aput-object": 10,
            "mul-long/2addr": 12,
        }
        for name, distance in expected.items():
            assert opcode(name).load_store_distance == distance, name

    def test_float_and_division_are_unknown(self):
        for name in ("add-float", "mul-double", "div-int", "rem-int",
                     "div-int/lit16", "double-to-int"):
            assert opcode(name).load_store_distance is None, name

    def test_names_unique(self):
        names = [info.name for info in OPCODES]
        assert len(names) == len(set(names))

    def test_unknown_opcode_lookup(self):
        with pytest.raises(ValueError):
            opcode("frobnicate")

    def test_invokes_do_not_move_data(self):
        # The paper classifies method invocations in the non-mover group.
        for kind in ("virtual", "static", "direct", "interface", "super"):
            assert not opcode(f"invoke-{kind}").moves_data


class TestEncoding:
    def test_12x_packs_nibbles(self):
        instr = Instr(opcode("move"), a=3, b=11)
        (unit,) = instr.encode()
        assert unit & 0xFF == opcode("move").value
        assert (unit >> 8) & 0xF == 3
        assert (unit >> 12) & 0xF == 11

    def test_22x_layout(self):
        instr = Instr(opcode("move/from16"), a=200, b=4000)
        unit0, unit1 = instr.encode()
        assert (unit0 >> 8) & 0xFF == 200
        assert unit1 == 4000

    def test_23x_layout(self):
        instr = Instr(opcode("add-int"), a=1, b=2, c=3)
        unit0, unit1 = instr.encode()
        assert (unit0 >> 8) & 0xFF == 1
        assert unit1 & 0xFF == 2
        assert (unit1 >> 8) & 0xFF == 3

    def test_22b_literal(self):
        instr = Instr(opcode("add-int/lit8"), a=1, b=2, literal=-1)
        unit0, unit1 = instr.encode()
        assert (unit1 >> 8) & 0xFF == 0xFF  # two's-complement byte

    def test_51l_wide_literal(self):
        instr = Instr(opcode("const-wide"), a=4, literal=0x1122334455667788)
        units = instr.encode()
        assert len(units) == 5
        assert units[1] == 0x7788
        assert units[4] == 0x1122

    def test_35c_argument_packing(self):
        instr = Instr(opcode("invoke-virtual"), literal=7, args=(1, 2, 3))
        unit0, unit1, unit2 = instr.encode()
        assert (unit0 >> 12) & 0xF == 3  # argument count
        assert unit1 == 7
        assert unit2 & 0xF == 1
        assert (unit2 >> 4) & 0xF == 2

    def test_unit_counts_match_format(self):
        for info in OPCODES:
            instr = Instr(info, a=1, b=1, c=1)
            assert len(instr.encode()) == info.units, info.name

    def test_str_is_readable(self):
        instr = Instr(opcode("mul-int/2addr"), a=3, b=4)
        assert str(instr) == "mul-int/2addr v3, v4"


class TestValidation:
    def test_nibble_overflow_rejected(self):
        with pytest.raises(ValueError):
            Instr(opcode("move"), a=16, b=0).validate(register_count=32)

    def test_register_count_enforced(self):
        with pytest.raises(ValueError):
            Instr(opcode("move"), a=3, b=2).validate(register_count=3)

    def test_invoke_argument_nibbles(self):
        with pytest.raises(ValueError):
            Instr(opcode("invoke-virtual"), args=(16,)).validate(32)
        with pytest.raises(ValueError):
            Instr(opcode("invoke-virtual"), args=(1, 2, 3, 4, 5, 6)).validate(32)

    def test_valid_instruction_passes(self):
        Instr(opcode("move"), a=15, b=15).validate(register_count=16)
        Instr(opcode("move/from16"), a=255, b=4000).validate(register_count=4096)

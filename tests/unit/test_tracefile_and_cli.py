"""Unit tests for trace persistence and the command-line interface."""

import gzip
import json

import pytest

from repro.core.config import PIFTConfig
from repro.analysis.replay import replay
from repro.analysis.tracefile import (
    TraceFormatError,
    load_recorded_run,
    save_recorded_run,
)
from repro.apps.droidbench import app_by_name, record_app
from repro.__main__ import main


@pytest.fixture(scope="module")
def recorded():
    return record_app(app_by_name("GeneralJava.StringFormatter")).recorded


class TestTraceFile:
    def test_roundtrip_preserves_everything(self, recorded, tmp_path):
        path = save_recorded_run(recorded, tmp_path / "run.pift.gz")
        loaded = load_recorded_run(path)
        assert loaded.instruction_count == recorded.instruction_count
        assert len(loaded.trace) == len(recorded.trace)
        for original, restored in zip(recorded.trace, loaded.trace):
            assert original == restored
        assert loaded.sources == recorded.sources
        assert loaded.sink_checks == recorded.sink_checks

    def test_replay_of_loaded_trace_matches(self, recorded, tmp_path):
        path = save_recorded_run(recorded, tmp_path / "run.pift.gz")
        loaded = load_recorded_run(path)
        for config in (PIFTConfig(13, 3), PIFTConfig(1, 1)):
            original = replay(recorded, config)
            restored = replay(loaded, config)
            assert original.alarm == restored.alarm
            assert (
                original.stats.taint_operations
                == restored.stats.taint_operations
            )

    def test_file_is_inspectable_json(self, recorded, tmp_path):
        path = save_recorded_run(recorded, tmp_path / "run.pift.gz")
        with gzip.open(path, "rt") as handle:
            document = json.load(handle)
        assert document["format"] == "pift-trace"
        assert len(document["events"]["kinds"]) == len(recorded.trace)

    def test_rejects_garbage(self, tmp_path):
        garbage = tmp_path / "bad.gz"
        garbage.write_bytes(b"not a gzip file")
        with pytest.raises(TraceFormatError):
            load_recorded_run(garbage)

    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "other.gz"
        with gzip.open(path, "wt") as handle:
            json.dump({"format": "something-else"}, handle)
        with pytest.raises(TraceFormatError):
            load_recorded_run(path)

    def test_rejects_wrong_version(self, recorded, tmp_path):
        path = save_recorded_run(recorded, tmp_path / "run.pift.gz")
        with gzip.open(path, "rt") as handle:
            document = json.load(handle)
        document["version"] = 999
        with gzip.open(path, "wt") as handle:
            json.dump(document, handle)
        with pytest.raises(TraceFormatError):
            load_recorded_run(path)


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Unknown" in out and "return" in out

    def test_malware(self, capsys):
        assert main(["malware", "--ni", "3", "--nt", "2"]) == 0
        out = capsys.readouterr().out
        assert "7/7 detected" in out

    def test_trace_then_analyze(self, tmp_path, capsys):
        trace_path = str(tmp_path / "lg.pift.gz")
        assert main(["trace", trace_path, "--work", "16"]) == 0
        assert main(["analyze", trace_path, "--ni", "13", "--nt", "3"]) == 0
        out = capsys.readouterr().out
        assert "LEAK DETECTED" in out

    def test_analyze_respects_untainting_flag(self, tmp_path, capsys):
        trace_path = str(tmp_path / "lg.pift.gz")
        main(["trace", trace_path, "--work", "16"])
        capsys.readouterr()
        main(["analyze", trace_path, "--no-untainting"])
        out = capsys.readouterr().out
        assert "0 untaints" in out

    def test_suite_smoke(self, capsys):
        assert main(["suite", "--ni", "13", "--nt", "3"]) == 0
        out = capsys.readouterr().out
        assert "accuracy 98.2%" in out
        assert "missed: ImplicitFlows.ImplicitFlow2" in out

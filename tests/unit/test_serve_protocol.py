"""Wire protocol and streaming loaders for `repro serve`.

Covers frame encode/decode, the replay-plan-ordered ``run_to_frames``
framing (the ordering contract behind fleet parity), and the two
streaming loaders the fleet client feeds on: the incremental
``iter_suite_runs`` suite reader and ``ArtifactStore.stream_runs``.
"""

import gzip

import pytest

from repro.analysis.accuracy import AppRun
from repro.analysis.replay import replay, replay_plan_for
from repro.analysis.tracefile import FORMAT_VERSION, TraceFormatError
from repro.android.device import RecordedRun, SinkCheck, SourceRegistration
from repro.core.config import PIFTConfig
from repro.core.events import EventTrace, load, store
from repro.core.ranges import AddressRange
from repro.serve import protocol
from repro.store import ArtifactStore, StoreKey
from repro.store.suitefile import (
    dump_suite_bytes,
    iter_suite_runs,
    load_suite_bytes,
)

CONFIG = PIFTConfig(5, 2)


def make_run(pids=(0,), rounds=6, leak=True):
    """A synthetic multi-PID recorded run with one check per PID."""
    events, sources, checks = [], [], []
    top = 0
    for i, pid in enumerate(pids):
        src = 0x1000 + 0x100000 * i
        dst = 0x8000 + 0x100000 * i
        sources.append(
            SourceRegistration(
                AddressRange(src, src + 0xF), 0, f"src-{pid}", pid=pid
            )
        )
        index = 1
        for r in range(rounds):
            events.append(load(src, src + 3, index, pid))
            if leak:
                events.append(
                    store(dst + 4 * r, dst + 4 * r + 3, index + 1, pid)
                )
            index += 3
        checks.append(
            SinkCheck(
                AddressRange(dst, dst + 4 * rounds - 1), index,
                f"sink-{pid}", "net", pid=pid,
            )
        )
        checks.append(
            SinkCheck(
                AddressRange(0xF0000, 0xF0003), index + 1,
                f"clean-{pid}", "sms", pid=pid,
            )
        )
        top += index + 2
    return RecordedRun(
        trace=EventTrace(events, instruction_count=top),
        sources=sources,
        sink_checks=checks,
    )


class TestFrames:
    def test_encode_decode_round_trip(self):
        frame = {"op": "hello", "device": "d", "n": 3}
        assert protocol.decode_frame(protocol.encode_frame(frame)) == frame

    def test_encoding_is_one_sorted_compact_line(self):
        line = protocol.encode_frame({"b": 1, "a": 2, "op": "x"})
        assert line == b'{"a":2,"b":1,"op":"x"}\n'

    def test_decode_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(b"not json\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(b"[1,2]\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(b'{"no_op":1}\n')

    def test_events_frame_round_trip(self):
        events = [load(0x10, 0x13, 1, 0), store(0x20, 0x23, 2, 7)]
        decoded = list(protocol.decode_events(protocol.events_frame(events)))
        assert decoded == events

    def test_events_frame_length_mismatch_rejected(self):
        frame = protocol.events_frame([load(0x10, 0x13, 1, 0)])
        frame["pids"] = []
        with pytest.raises(protocol.ProtocolError, match="length"):
            list(protocol.decode_events(frame))

    def test_frame_range_rejects_missing_fields(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.frame_range({"op": "check"})


class TestRunToFrames:
    def test_framing_matches_replay_plan_order(self):
        recorded = make_run(pids=(0, 3))
        plan = replay_plan_for(recorded)
        frames = list(protocol.run_to_frames(recorded, chunk=4))

        # Reconstruct the three streams and check each is complete and
        # in recorded order.
        events = [
            e for f in frames if f["op"] == "events"
            for e in protocol.decode_events(f)
        ]
        assert events == recorded.trace.events
        names = [f["name"] for f in frames if f["op"] == "source"]
        assert names == [s.source_name for s in plan.sources]
        sinks = [f["sink"] for f in frames if f["op"] == "check"]
        assert sinks == [c.sink_name for c in plan.checks]

        # The interleaving respects every plan boundary: when a
        # source/check frame appears, exactly the events before its
        # boundary position have been streamed.
        position = source_i = check_i = 0
        bounds = {}
        for boundary, sources_due, checks_due in plan.boundaries:
            for _ in range(sources_due):
                bounds[("s", source_i)] = boundary
                source_i += 1
            for _ in range(checks_due):
                bounds[("c", check_i)] = boundary
                check_i += 1
        source_i = check_i = 0
        for frame in frames:
            if frame["op"] == "events":
                position += len(frame["starts"])
            elif frame["op"] == "source":
                expected = bounds.get(("s", source_i), len(events))
                assert position == expected
                source_i += 1
            else:
                expected = bounds.get(("c", check_i), len(events))
                assert position == expected
                check_i += 1

    def test_chunking_bounds_frame_size(self):
        recorded = make_run(rounds=10)
        frames = list(protocol.run_to_frames(recorded, chunk=3))
        sizes = [
            len(f["starts"]) for f in frames if f["op"] == "events"
        ]
        assert sizes and max(sizes) <= 3
        with pytest.raises(ValueError):
            list(protocol.run_to_frames(recorded, chunk=0))

    def test_verdict_key_mirrors_outcome_key(self):
        recorded = make_run()
        result = replay(recorded, CONFIG)
        for outcome in result.sink_outcomes:
            verdict = {
                "sink": outcome.sink_name,
                "channel": outcome.channel,
                "index": outcome.instruction_index,
                "pid": outcome.pid,
                "tainted": outcome.tainted,
                "colours": list(outcome.colours),
            }
            assert (
                protocol.verdict_key(verdict)
                == protocol.outcome_key(outcome)
            )


def make_suite(count=3):
    return [
        AppRun(
            name=f"app-{i}",
            recorded=make_run(pids=(0, i + 1), rounds=3 + i),
            leaks=bool(i % 2),
            category="synthetic",
        )
        for i in range(count)
    ]


class TestStreamingSuiteIterator:
    def equivalent(self, left, right):
        assert left.name == right.name
        assert left.leaks == right.leaks
        assert left.category == right.category
        assert left.recorded.trace.events == right.recorded.trace.events
        assert (
            replay(left.recorded, CONFIG).sink_outcomes
            == replay(right.recorded, CONFIG).sink_outcomes
        )

    def test_streamed_equals_bulk_load(self, tmp_path):
        payload = dump_suite_bytes(make_suite())
        bulk = load_suite_bytes(payload)
        streamed = list(iter_suite_runs(payload))
        assert len(streamed) == len(bulk) == 3
        for left, right in zip(streamed, bulk):
            self.equivalent(left, right)
        # Path and file-object sources behave identically.
        path = tmp_path / "suite.gz"
        path.write_bytes(payload)
        assert [r.name for r in iter_suite_runs(str(path))] == [
            r.name for r in bulk
        ]

    def test_empty_suite_streams_empty(self):
        assert list(iter_suite_runs(dump_suite_bytes([]))) == []

    def test_truncated_payload_raises(self):
        payload = dump_suite_bytes(make_suite(2))
        raw = gzip.decompress(payload)
        truncated = gzip.compress(raw[: len(raw) // 2], mtime=0)
        with pytest.raises(TraceFormatError):
            list(iter_suite_runs(truncated))

    def test_non_canonical_document_rejected(self):
        raw = b'{"runs":[],"format":"pift-suite","version":3}'
        with pytest.raises(TraceFormatError, match="canonical"):
            list(iter_suite_runs(gzip.compress(raw, mtime=0)))

    def test_version_mismatch_detected_at_tail(self):
        payload = dump_suite_bytes(make_suite(2))
        raw = gzip.decompress(payload).replace(
            f'"version":{FORMAT_VERSION}'.encode(), b'"version":9999'
        )
        runs = []
        with pytest.raises(TraceFormatError, match="version"):
            for run in iter_suite_runs(gzip.compress(raw, mtime=0)):
                runs.append(run.name)
        # The canonical key order puts version at the tail, so the runs
        # themselves streamed before the mismatch surfaced.
        assert len(runs) == 2


KEY = StoreKey(kind="serve-test", inputs=(("suite", "synthetic"),))


class TestStoreStreamRuns:
    def put(self, tmp_path, runs):
        store_dir = ArtifactStore(tmp_path / "store")
        store_dir.put_runs(KEY, runs)
        return store_dir, KEY

    def test_stream_matches_get(self, tmp_path):
        suite = make_suite()
        store, key = self.put(tmp_path, suite)
        streamed = list(store.stream_runs(key))
        bulk = store.get_runs(key)
        assert [r.name for r in streamed] == [r.name for r in bulk]
        for left, right in zip(streamed, bulk):
            assert left.recorded.trace.events == right.recorded.trace.events

    def test_stream_miss_returns_none(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.stream_runs(KEY) is None

    def test_stream_corruption_quarantines(self, tmp_path):
        store, key = self.put(tmp_path, make_suite(1))
        payload_path, _meta = store._entry_paths(key.digest)
        payload_path.write_bytes(b"garbage")
        assert store.stream_runs(key) is None
        assert not payload_path.exists()  # quarantined away

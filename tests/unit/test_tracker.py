"""Unit tests for Algorithm 1 (the tainting-window heuristic)."""

import pytest

from repro.core.config import PIFTConfig
from repro.core.events import load, store
from repro.core.ranges import AddressRange
from repro.core.tracker import PIFTTracker, track_trace


SRC = AddressRange(0x1000, 0x1003)


def make_tracker(ni=5, nt=2, untainting=True, **kwargs):
    tracker = PIFTTracker(
        PIFTConfig(window_size=ni, max_propagations=nt, untainting=untainting),
        **kwargs,
    )
    tracker.taint_source(SRC)
    return tracker


class TestConfig:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            PIFTConfig(window_size=0)

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            PIFTConfig(max_propagations=0)

    def test_aliases(self):
        cfg = PIFTConfig(window_size=13, max_propagations=3)
        assert cfg.ni == 13
        assert cfg.nt == 3

    def test_with_untainting(self):
        cfg = PIFTConfig().with_untainting(False)
        assert not cfg.untainting

    def test_str_mentions_parameters(self):
        assert "NI=13" in str(PIFTConfig(13, 3))


class TestTaintedLoadOpensWindow:
    def test_store_in_window_is_tainted(self):
        t = make_tracker(ni=5, nt=2)
        t.observe(load(0x1000, 0x1003, 0))  # tainted load at k=0
        t.observe(store(0x2000, 0x2003, 3))  # k=3 <= 0+5
        assert t.check(AddressRange(0x2000, 0x2003))

    def test_store_at_window_edge_is_tainted(self):
        # Algorithm 1 line 17: k <= LTLT + NI is inclusive.
        t = make_tracker(ni=5, nt=2)
        t.observe(load(0x1000, 0x1003, 0))
        t.observe(store(0x2000, 0x2003, 5))
        assert t.check(AddressRange(0x2000, 0x2003))

    def test_store_past_window_not_tainted(self):
        t = make_tracker(ni=5, nt=2)
        t.observe(load(0x1000, 0x1003, 0))
        t.observe(store(0x2000, 0x2003, 6))
        assert not t.check(AddressRange(0x2000, 0x2003))

    def test_untainted_load_does_not_open_window(self):
        t = make_tracker(ni=5, nt=2)
        t.observe(load(0x5000, 0x5003, 0))  # clean load
        t.observe(store(0x2000, 0x2003, 2))
        assert not t.check(AddressRange(0x2000, 0x2003))

    def test_partial_overlap_load_opens_window(self):
        t = make_tracker()
        t.observe(load(0x0FFE, 0x1001, 0))  # straddles the source start
        t.observe(store(0x2000, 0x2003, 2))
        assert t.check(AddressRange(0x2000, 0x2003))

    def test_window_restarts_on_new_tainted_load(self):
        t = make_tracker(ni=5, nt=1)
        t.observe(load(0x1000, 0x1003, 0))
        t.observe(store(0x2000, 0x2003, 2))  # consumes the only propagation
        t.observe(load(0x1000, 0x1003, 4))  # restart: nt resets to 0
        t.observe(store(0x3000, 0x3003, 6))
        assert t.check(AddressRange(0x3000, 0x3003))


class TestPropagationCap:
    def test_nt_limits_stores_tainted(self):
        t = make_tracker(ni=10, nt=2)
        t.observe(load(0x1000, 0x1003, 0))
        t.observe(store(0x2000, 0x2003, 1))
        t.observe(store(0x2010, 0x2013, 2))
        t.observe(store(0x2020, 0x2023, 3))  # third store: past NT cap
        assert t.check(AddressRange(0x2000, 0x2003))
        assert t.check(AddressRange(0x2010, 0x2013))
        assert not t.check(AddressRange(0x2020, 0x2023))

    def test_stats_count_taint_operations(self):
        t = make_tracker(ni=10, nt=2)
        t.observe(load(0x1000, 0x1003, 0))
        for i, base in enumerate((0x2000, 0x2010, 0x2020), start=1):
            t.observe(store(base, base + 3, i))
        assert t.stats.taint_operations == 2


class TestUntainting:
    def test_out_of_window_store_untaints(self):
        t = make_tracker(ni=5, nt=2, untainting=True)
        t.observe(load(0x1000, 0x1003, 0))
        t.observe(store(0x2000, 0x2003, 2))  # tainted
        assert t.check(AddressRange(0x2000, 0x2003))
        # Much later, a clean store overwrites the tainted region.
        t.observe(store(0x2000, 0x2003, 100))
        assert not t.check(AddressRange(0x2000, 0x2003))

    def test_untainting_disabled_keeps_taint(self):
        t = make_tracker(ni=5, nt=2, untainting=False)
        t.observe(load(0x1000, 0x1003, 0))
        t.observe(store(0x2000, 0x2003, 2))
        t.observe(store(0x2000, 0x2003, 100))
        assert t.check(AddressRange(0x2000, 0x2003))

    def test_untaint_op_counted_only_when_taint_removed(self):
        t = make_tracker(ni=5, nt=2, untainting=True)
        t.observe(store(0x9000, 0x9003, 50))  # never tainted: no-op
        assert t.stats.untaint_operations == 0
        t.observe(load(0x1000, 0x1003, 60))
        t.observe(store(0x9000, 0x9003, 61))
        t.observe(store(0x9000, 0x9003, 200))  # out of window: real untaint
        assert t.stats.untaint_operations == 1

    def test_over_cap_store_untaints_when_enabled(self):
        # Algorithm 1 line 20-22: the else branch covers both out-of-window
        # and past-NT stores.
        t = make_tracker(ni=10, nt=1, untainting=True)
        t.observe(load(0x1000, 0x1003, 0))
        t.observe(store(0x2000, 0x2003, 1))  # tainted (first)
        t.observe(load(0x1000, 0x1003, 2))  # window restarts, nt = 0
        t.observe(store(0x3000, 0x3003, 3))  # tainted (first of new window)
        t.observe(store(0x2000, 0x2003, 4))  # second store: past cap; untaint
        assert not t.check(AddressRange(0x2000, 0x2003))
        assert t.check(AddressRange(0x3000, 0x3003))


class TestSourceRegistrationAndCheck:
    def test_source_itself_is_tainted(self):
        t = make_tracker()
        assert t.check(SRC)
        assert t.check(AddressRange(0x1001, 0x1001))

    def test_clean_range_not_tainted(self):
        t = make_tracker()
        assert not t.check(AddressRange(0x9000, 0x9003))


class TestChainedPropagation:
    def test_taint_flows_through_copy_chain(self):
        """load src -> store A; load A -> store B; load B -> store C."""
        t = make_tracker(ni=3, nt=1)
        t.observe(load(0x1000, 0x1003, 0))
        t.observe(store(0x2000, 0x2003, 1))
        t.observe(load(0x2000, 0x2003, 10))
        t.observe(store(0x3000, 0x3003, 11))
        t.observe(load(0x3000, 0x3003, 20))
        t.observe(store(0x4000, 0x4003, 21))
        assert t.check(AddressRange(0x4000, 0x4003))

    def test_broken_chain_does_not_propagate(self):
        t = make_tracker(ni=3, nt=1)
        t.observe(load(0x1000, 0x1003, 0))
        t.observe(store(0x2000, 0x2003, 1))
        t.observe(load(0x5000, 0x5003, 10))  # clean load: no window
        t.observe(store(0x3000, 0x3003, 11))
        assert not t.check(AddressRange(0x3000, 0x3003))


class TestPerProcessIsolation:
    def test_taint_is_per_pid(self):
        t = PIFTTracker(PIFTConfig(window_size=5, max_propagations=2))
        t.taint_source(SRC, pid=1)
        assert t.check(SRC, pid=1)
        assert not t.check(SRC, pid=2)

    def test_window_state_is_per_pid(self):
        t = PIFTTracker(PIFTConfig(window_size=5, max_propagations=2))
        t.taint_source(SRC, pid=1)
        t.observe(load(0x1000, 0x1003, 0, pid=1))  # opens window for pid 1
        t.observe(store(0x2000, 0x2003, 1, pid=2))  # pid 2 has no window
        assert not t.check(AddressRange(0x2000, 0x2003), pid=2)
        t.observe(store(0x2000, 0x2003, 2, pid=1))
        assert t.check(AddressRange(0x2000, 0x2003), pid=1)


class TestMultiProcessAccounting:
    """§3.3: instruction counters are per-process, so totals must sum
    per-PID high-water marks — a single global high-water undercounts."""

    def test_two_pid_instructions_sum_not_max(self):
        t = PIFTTracker(PIFTConfig(window_size=5, max_propagations=2))
        t.observe(load(0x1000, 0x1003, 99, pid=1))   # pid 1 at k=99
        t.observe(load(0x5000, 0x5003, 99, pid=2))   # pid 2 also at k=99
        # 100 instructions retired in EACH process: the regression was
        # reporting max(100, 100) == 100 instead of 200.
        assert t.stats.instructions_observed == 200
        assert t.instructions_per_pid == {1: 100, 2: 100}

    def test_interleaved_pids_never_double_count(self):
        t = PIFTTracker(PIFTConfig(window_size=5, max_propagations=2))
        for k in range(10):
            t.observe(load(0x1000, 0x1003, k, pid=1))
            t.observe(load(0x5000, 0x5003, k, pid=2))
        assert t.stats.instructions_observed == 20
        # Replaying an already-retired index must not re-count it.
        t.observe(load(0x1000, 0x1003, 4, pid=1))
        assert t.stats.instructions_observed == 20

    def test_snapshot_restore_keeps_per_pid_counters(self):
        t = PIFTTracker(PIFTConfig(window_size=5, max_propagations=2))
        t.observe(load(0x1000, 0x1003, 7, pid=1))
        t.observe(load(0x5000, 0x5003, 3, pid=2))
        payload = t.snapshot()
        clone = PIFTTracker(PIFTConfig(window_size=5, max_propagations=2))
        clone.restore(payload)
        assert clone.instructions_per_pid == t.instructions_per_pid

    def test_reset_and_restore_clear_churn_hysteresis(self):
        # The dense executor's churn streak is execution-strategy state;
        # leaking it across reset/restore would let a previous run route
        # the next run's first chunks to the scalar loop.
        t = PIFTTracker(PIFTConfig(window_size=5, max_propagations=2))
        assert t._dense_churn_streak == 0
        t._dense_churn_streak = 3
        t.reset()
        assert t._dense_churn_streak == 0
        t._dense_churn_streak = 3
        t.restore(t.snapshot())
        assert t._dense_churn_streak == 0

    def test_event_trace_counts_sum_of_per_pid_maxima(self):
        from repro.core.events import EventTrace

        trace = EventTrace()
        trace.append(load(0x1000, 0x1003, 49, pid=1))
        trace.append(load(0x5000, 0x5003, 49, pid=2))
        assert trace.instruction_count == 100
        assert trace.per_pid_instruction_counts == {1: 50, 2: 50}

    def test_event_trace_note_instruction_and_floor(self):
        from repro.core.events import EventTrace

        trace = EventTrace()
        trace.note_instruction(9, pid=1)    # non-memory instructions
        trace.note_instruction(4, pid=2)
        assert trace.instruction_count == 15
        trace.instruction_count = 40        # legacy assignment is a floor
        assert trace.instruction_count == 40
        trace.note_instruction(59, pid=2)
        assert trace.instruction_count == 70

    def test_batch_path_accounts_like_observe(self):
        events = [
            load(0x1000, 0x1003, 99, pid=1),
            load(0x5000, 0x5003, 99, pid=2),
            store(0x2000, 0x2003, 100, pid=1),
        ]
        serial = PIFTTracker(PIFTConfig(window_size=5, max_propagations=2))
        for event in events:
            serial.observe(event)
        batched = PIFTTracker(PIFTConfig(window_size=5, max_propagations=2))
        batched.observe_batch(events)
        assert batched.stats.instructions_observed == 201
        assert (
            batched.stats.instructions_observed
            == serial.stats.instructions_observed
        )
        assert batched.instructions_per_pid == serial.instructions_per_pid


class TestStatsAndTimeline:
    def test_counters(self):
        t = make_tracker(ni=5, nt=2)
        t.observe(load(0x1000, 0x1003, 0))
        t.observe(load(0x8000, 0x8003, 1))
        t.observe(store(0x2000, 0x2003, 2))
        assert t.stats.loads_observed == 2
        assert t.stats.stores_observed == 1
        assert t.stats.tainted_loads == 1
        assert t.stats.instructions_observed == 3

    def test_max_tainted_bytes_high_water_mark(self):
        t = make_tracker(ni=50, nt=10, untainting=True)
        t.observe(load(0x1000, 0x1003, 0))
        t.observe(store(0x2000, 0x200F, 1))  # 16 bytes
        peak = t.stats.max_tainted_bytes
        t.observe(store(0x2000, 0x200F, 500))  # untaint later
        assert t.stats.max_tainted_bytes == peak
        assert t.tainted_bytes < peak

    def test_timeline_recorded_when_enabled(self):
        t = make_tracker(ni=5, nt=2, record_timeline=True)
        t.observe(load(0x1000, 0x1003, 0))
        t.observe(store(0x2000, 0x2003, 1))
        assert t.stats.timeline
        point = t.stats.timeline[-1]
        assert point.instruction_index == 1
        assert point.tainted_bytes == t.tainted_bytes
        assert point.cumulative_operations == 1

    def test_timeline_not_recorded_by_default(self):
        t = make_tracker(ni=5, nt=2)
        t.observe(load(0x1000, 0x1003, 0))
        t.observe(store(0x2000, 0x2003, 1))
        # Source registration may or may not log, but store ops must not.
        assert all(p.instruction_index == 0 for p in t.stats.timeline)


class TestTrackTraceHelper:
    def test_one_shot_run(self):
        events = [
            load(0x1000, 0x1003, 0),
            store(0x2000, 0x2003, 1),
        ]
        tracker = track_trace(
            events,
            sources=[(SRC, 0)],
            config=PIFTConfig(window_size=5, max_propagations=2),
        )
        assert tracker.check(AddressRange(0x2000, 0x2003))

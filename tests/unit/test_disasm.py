"""Unit tests for the annotated disassembly recorder."""

from repro.core import MemoryAccess, PIFTConfig, PIFTHardwareModule
from repro.core.ranges import AddressRange
from repro.isa import asm
from repro.isa.cpu import CPU
from repro.isa.disasm import DisassemblyRecorder


def test_lines_rendered_with_operands():
    cpu = CPU(render_text=True)
    recorder = DisassemblyRecorder()
    cpu.add_observer(recorder)
    cpu.registers["r1"] = 0x5000
    cpu.run([asm.ldrh("r6", "r1"), asm.adds("r3", "r3", 1)])
    assert "ldrh r6, [r1]" in recorder.lines[0]
    assert "load [0x5000,0x5001]" in recorder.lines[0]
    assert recorder.lines[1].endswith("adds r3, r3, #1")


def test_taint_annotations():
    cpu = CPU(render_text=True)
    hw = PIFTHardwareModule(PIFTConfig(5, 2))
    cpu.add_observer(
        lambda r, i, p: hw.on_memory_event(
            MemoryAccess(r.kind, r.address_range, i, p)
        )
        if r.is_memory
        else None
    )
    recorder = DisassemblyRecorder(tracker=hw.tracker)
    cpu.add_observer(recorder)
    hw.tracker.taint_source(AddressRange(0x5000, 0x5001))
    cpu.registers["r1"] = 0x5000
    cpu.registers["r2"] = 0x6000
    cpu.run([asm.ldrh("r6", "r1"), asm.strh("r6", "r2")])
    assert "TAINTED-LOAD" in recorder.lines[0]
    assert "TAINT" in recorder.lines[1]


def test_addresses_monotone():
    cpu = CPU(render_text=True)
    recorder = DisassemblyRecorder()
    cpu.add_observer(recorder)
    cpu.run([asm.nop()] * 3)
    addresses = [int(line.split(":")[0], 16) for line in recorder.lines]
    assert addresses == sorted(addresses)
    assert len(set(addresses)) == 3


def test_truncation():
    cpu = CPU(render_text=True)
    recorder = DisassemblyRecorder(max_lines=2)
    cpu.add_observer(recorder)
    cpu.run([asm.nop()] * 5)
    assert len(recorder.lines) == 2
    assert recorder.truncated
    assert recorder.text().endswith("... (truncated)")


def test_without_render_text_falls_back_to_mnemonic():
    cpu = CPU()  # render_text off
    recorder = DisassemblyRecorder()
    cpu.add_observer(recorder)
    cpu.run([asm.mov("r0", 5)])
    assert recorder.lines[0].endswith("mov")


def test_text_slicing():
    cpu = CPU(render_text=True)
    recorder = DisassemblyRecorder()
    cpu.add_observer(recorder)
    cpu.run([asm.nop(), asm.mov("r0", 1), asm.nop()])
    sliced = recorder.text(first=1, count=1)
    assert "mov r0, #1" in sliced
    assert sliced.count("\n") == 0

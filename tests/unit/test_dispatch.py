"""Tests for repro.sweep.dispatch: the fault-tolerant queue backend.

Process-level coverage of the lease dispatcher — fault-free parity with
the serial/pool paths, chaos-driven worker deaths, retry-then-poison
quarantine, journal integration, and interrupt/resume semantics.  The
pure lease bookkeeping is covered in ``test_leases.py``.
"""

import json

import pytest

from repro.sweep import (
    BackoffPolicy,
    ChaosPlan,
    DispatchError,
    GridSpec,
    QueueBackend,
    TraceCache,
    run_sweep,
)

#: Small real grid: 8 cells over a 6-app slice of the suite.
SPEC = GridSpec(window_sizes=(5, 13), propagation_caps=(2, 3),
                rates=(0.0, 0.02), seed=3)

#: Snappy failure handling so chaos tests run in seconds.
FAST = {
    "lease_timeout": 5.0,
    "heartbeat_interval": 0.05,
    "backoff": BackoffPolicy(base=0.02, cap=0.2, seed=0),
}


def digest(result) -> str:
    return json.dumps(result.as_dict(), sort_keys=True)


class TestQueueBackend:
    @pytest.fixture(scope="class")
    def cache(self):
        cache = TraceCache(droidbench=TraceCache().droidbench_runs()[:6])
        cache.prime_replay_state()
        return cache

    @pytest.fixture(scope="class")
    def serial(self, cache):
        return run_sweep(SPEC, cache=cache, jobs=1)

    def test_fault_free_parity_with_serial(self, cache, serial):
        queued = run_sweep(SPEC, cache=cache, jobs=2, backend="queue",
                           backend_options=dict(FAST))
        assert digest(queued) == digest(serial)
        assert queued.worker_deaths == 0
        assert queued.retries == 0
        assert queued.poisoned == []
        workers = {cell.worker for cell in queued.cells}
        assert len(workers) > 1  # it actually fanned out

    def test_chaos_kills_leave_grid_bit_identical(self, cache, serial):
        chaos = ChaosPlan.parse("kill-workers:0.3", seed=7)
        survived = run_sweep(SPEC, cache=cache, jobs=3, backend="queue",
                             backend_options={**FAST, "chaos": chaos})
        assert digest(survived) == digest(serial)
        assert survived.worker_deaths > 0  # the schedule really killed
        assert survived.retries > 0
        assert survived.poisoned == []

    def test_chaos_hang_expires_lease_and_recovers(self, cache, serial):
        chaos = ChaosPlan.parse("hang-workers:0.25", seed=11)
        survived = run_sweep(
            SPEC, cache=cache, jobs=2, backend="queue",
            backend_options={**FAST, "lease_timeout": 0.5, "chaos": chaos},
        )
        assert digest(survived) == digest(serial)
        assert survived.worker_deaths > 0  # frozen holders were killed

    def test_failing_cells_are_poisoned_not_fatal(self, cache, serial):
        chaos = ChaosPlan.parse("fail-cells:1.0", seed=7)
        result = run_sweep(
            SPEC, cache=cache, jobs=2, backend="queue",
            backend_options={**FAST, "max_retries": 1, "chaos": chaos},
        )
        assert result.cells == []
        assert len(result.poisoned) == len(SPEC)
        assert result.retries == len(SPEC)  # one retry each, then poison
        for cell in result.poisoned:
            assert cell["attempts"] == 2
            assert "ChaosFailure" in cell["error"]
        assert result.as_dict()["poisoned"] == result.poisoned

    def test_partial_failure_leaves_explicit_hole(self, cache, serial):
        # fail-cells at 60% with a zero retry budget: some cells poison,
        # the survivors still match the serial run at their indexes.
        chaos = ChaosPlan.parse("fail-cells:0.6", seed=5)
        result = run_sweep(
            SPEC, cache=cache, jobs=2, backend="queue",
            backend_options={**FAST, "max_retries": 0, "chaos": chaos},
        )
        assert 0 < len(result.poisoned) < len(SPEC)
        assert len(result.cells) + len(result.poisoned) == len(SPEC)
        by_index = {cell.index: cell for cell in serial.cells}
        for cell in result.cells:
            assert cell.as_dict() == by_index[cell.index].as_dict()

    def test_out_of_workers_raises_dispatch_error(self, cache):
        chaos = ChaosPlan.parse("kill-workers:1.0", seed=3)
        with pytest.raises(DispatchError, match="out of workers"):
            run_sweep(
                SPEC, cache=cache, jobs=2, backend="queue",
                backend_options={
                    **FAST, "max_worker_restarts": 1, "chaos": chaos,
                },
            )

    def test_queue_backend_serial_jobs(self, cache, serial):
        # backend="queue" with jobs=1 still goes through the dispatcher.
        queued = run_sweep(SPEC, cache=cache, jobs=1, backend="queue",
                           backend_options=dict(FAST))
        assert digest(queued) == digest(serial)

    def test_unknown_backend_rejected(self, cache):
        with pytest.raises(ValueError, match="unknown sweep backend"):
            run_sweep(SPEC, cache=cache, jobs=2, backend="carrier-pigeon")
        with pytest.raises(ValueError, match="backend_options"):
            run_sweep(SPEC, cache=cache, jobs=2,
                      backend_options={"lease_timeout": 1.0})

    def test_backend_instance_passthrough(self, cache, serial):
        backend = QueueBackend(jobs=2, **FAST)
        queued = run_sweep(SPEC, cache=cache, backend=backend)
        assert digest(queued) == digest(serial)
        assert backend.stats.worker_deaths == 0


class TestJournalIntegration:
    @pytest.fixture(scope="class")
    def cache(self):
        cache = TraceCache(droidbench=TraceCache().droidbench_runs()[:6])
        cache.prime_replay_state()
        return cache

    def _journal(self, tmp_path, cells):
        from repro.store import RunJournal

        return RunJournal.create(tmp_path / "run.jsonl", cells, "test-run")

    def test_poison_and_attempts_are_journaled(self, cache, tmp_path):
        from repro.store import RunJournal

        cells = list(SPEC.cells())
        journal = self._journal(tmp_path, cells)
        chaos = ChaosPlan.parse("fail-cells:0.6", seed=5)
        result = run_sweep(
            SPEC, cache=cache, jobs=2, journal=journal, backend="queue",
            backend_options={**FAST, "max_retries": 1, "chaos": chaos},
        )
        reloaded = RunJournal.load(tmp_path / "run.jsonl")
        assert set(reloaded.poisoned) == {
            cell["index"] for cell in result.poisoned
        }
        assert len(reloaded.completed) == len(result.cells)
        assert sum(len(v) for v in reloaded.attempts.values()) == (
            result.retries
        )
        rows = reloaded.poison_rows()
        assert [row["index"] for row in rows] == sorted(reloaded.poisoned)

    def test_resume_cures_poisoned_cells(self, cache, tmp_path):
        from repro.store import RunJournal

        cells = list(SPEC.cells())
        journal = self._journal(tmp_path, cells)
        chaos = ChaosPlan.parse("fail-cells:0.6", seed=5)
        first = run_sweep(
            SPEC, cache=cache, jobs=2, journal=journal, backend="queue",
            backend_options={**FAST, "max_retries": 0, "chaos": chaos},
        )
        assert first.poisoned  # some cells were quarantined
        # Resume without chaos: the poisoned cells re-run and complete.
        resumed_journal = RunJournal.load(tmp_path / "run.jsonl")
        second = run_sweep(
            SPEC, cache=cache, jobs=2, journal=resumed_journal,
            backend="queue", backend_options=dict(FAST),
        )
        serial = run_sweep(SPEC, cache=cache, jobs=1)
        assert digest(second) == digest(serial)
        assert second.resumed == len(first.cells)
        cured = RunJournal.load(tmp_path / "run.jsonl")
        assert cured.poisoned == {}  # completed wins over poison records

    def test_interrupt_mid_grid_leaves_journal_resumable(self, cache, tmp_path):
        from repro.store import RunJournal

        cells = list(SPEC.cells())
        journal = self._journal(tmp_path, cells)

        done = []

        def interrupt(result, finished, total):
            done.append(result.index)
            if len(done) == 3:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep(SPEC, cache=cache, jobs=2, journal=journal,
                      progress=interrupt, backend="queue",
                      backend_options=dict(FAST))

        # Every cell reported before the interrupt is checkpointed, and
        # the resumed run is bit-identical to an uninterrupted one.
        reloaded = RunJournal.load(tmp_path / "run.jsonl")
        assert set(reloaded.completed) == set(done)
        resumed = run_sweep(SPEC, cache=cache, jobs=2, journal=reloaded,
                            backend="queue", backend_options=dict(FAST))
        assert resumed.resumed == len(done)
        serial = run_sweep(SPEC, cache=cache, jobs=1)
        assert digest(resumed) == digest(serial)

    def test_interrupt_under_pool_backend_still_resumable(self, cache, tmp_path):
        from repro.store import RunJournal

        cells = list(SPEC.cells())
        journal = self._journal(tmp_path, cells)
        done = []

        def interrupt(result, finished, total):
            done.append(result.index)
            if len(done) == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep(SPEC, cache=cache, jobs=2, journal=journal,
                      progress=interrupt)
        reloaded = RunJournal.load(tmp_path / "run.jsonl")
        assert set(reloaded.completed) == set(done)
        resumed = run_sweep(SPEC, cache=cache, jobs=2, journal=reloaded)
        serial = run_sweep(SPEC, cache=cache, jobs=1)
        assert digest(resumed) == digest(serial)


class TestTelemetryIntegration:
    @pytest.fixture(scope="class")
    def cache(self):
        cache = TraceCache(droidbench=TraceCache().droidbench_runs()[:6])
        cache.prime_replay_state()
        return cache

    def test_fault_metrics_and_events_are_emitted(self, cache):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        events = []

        class _Writer:
            def emit(self, event_type, **fields):
                events.append(event_type)

            def flush(self):
                pass

            def close(self):
                pass

        telemetry.writer = _Writer()
        chaos = ChaosPlan.parse("fail-cells:0.6", seed=5)
        result = run_sweep(
            SPEC, cache=cache, jobs=2, telemetry=telemetry, backend="queue",
            backend_options={**FAST, "max_retries": 1, "chaos": chaos},
        )
        assert result.retries > 0 and result.poisoned
        metrics = telemetry.metrics
        assert metrics.get("sweep.cell.retries").value == result.retries
        assert metrics.get("sweep.cells.poisoned").value == len(
            result.poisoned
        )
        assert "sweep_cell_retry" in events
        assert "sweep_cell_poisoned" in events

    def test_fault_free_run_creates_no_fault_metrics(self, cache):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        result = run_sweep(SPEC, cache=cache, jobs=2, telemetry=telemetry,
                           backend="queue", backend_options=dict(FAST))
        assert result.worker_deaths == 0
        # Lazy counters: a clean run exposes the same metric families as
        # the pool backend.
        assert telemetry.metrics.get("sweep.cell.retries") is None
        assert telemetry.metrics.get("sweep.worker.deaths") is None

    def test_relay_heartbeats_renew_leases(self, cache):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        # Lease TTL far below the cell runtime ceiling but heartbeats
        # (control-plane at 50ms + relay) keep every lease alive: no
        # deaths, no retries, clean parity.
        result = run_sweep(
            SPEC, cache=cache, jobs=2, telemetry=telemetry,
            backend="queue",
            backend_options={**FAST, "lease_timeout": 1.0},
        )
        assert result.worker_deaths == 0
        assert result.retries == 0

"""Seeded fuzz test: RangeSet against a naive byte-set model.

The tracker's correctness rests entirely on ``RangeSet`` keeping its
sorted/coalesced/disjoint invariants under arbitrary interleavings of
add, remove, drop, and query.  This test drives ~10k random operations
from a fixed seed and cross-checks every observable against a model that
stores the tainted bytes one by one — slow but obviously correct.
"""

import random

from repro.core.ranges import AddressRange, RangeSet

ADDRESS_SPACE = 2048  # small enough that collisions/coalescing are constant
MAX_RANGE = 48
OPERATIONS = 10_000
SEED = 20160402  # the paper's conference date; any fixed seed works


def random_range(rng: random.Random) -> AddressRange:
    start = rng.randrange(ADDRESS_SPACE)
    return AddressRange(start, start + rng.randrange(MAX_RANGE))


def check_invariants(rangeset: RangeSet, model: set) -> None:
    ranges = list(rangeset)
    # Sorted, disjoint, and coalesced: a gap of at least one byte
    # between consecutive ranges, starts strictly increasing.
    for earlier, later in zip(ranges, ranges[1:]):
        assert earlier.end + 1 < later.start, (
            f"uncoalesced or overlapping neighbours {earlier} and {later}"
        )
    # Aggregates match the byte-exact model.
    assert rangeset.total_size == len(model)
    covered = set()
    for item in ranges:
        covered.update(range(item.start, item.end + 1))
    assert covered == model
    # range_count equals the number of maximal runs in the model.
    runs = 0
    previous = None
    for address in sorted(model):
        if previous is None or address != previous + 1:
            runs += 1
        previous = address
    assert rangeset.range_count == runs


def test_rangeset_matches_byte_model_under_fuzz():
    rng = random.Random(SEED)
    rangeset = RangeSet()
    model: set = set()
    for step in range(OPERATIONS):
        op = rng.random()
        item = random_range(rng)
        span = set(range(item.start, item.end + 1))
        if op < 0.45:
            rangeset.add(item)
            model |= span
        elif op < 0.80:
            rangeset.remove(item)
            model -= span
        elif op < 0.90:
            victim = rangeset.drop_nth_range(rng.randrange(1 << 30))
            if victim is None:
                assert not model
            else:
                model -= set(range(victim.start, victim.end + 1))
        else:
            # Pure queries: must agree with the model and mutate nothing.
            assert rangeset.overlaps(item) == bool(span & model)
            address = rng.randrange(ADDRESS_SPACE + MAX_RANGE)
            assert rangeset.covers_address(address) == (address in model)
            for hit in rangeset.overlapping(item):
                assert set(range(hit.start, hit.end + 1)) & span
        # Invariants are cheap enough to check at a sampled cadence, and
        # exhaustively near the start where regressions usually surface.
        if step < 200 or step % 97 == 0:
            check_invariants(rangeset, model)
    check_invariants(rangeset, model)


def test_rangeset_snapshot_restore_under_fuzz():
    rng = random.Random(SEED + 1)
    rangeset = RangeSet()
    for _ in range(500):
        if rng.random() < 0.7:
            rangeset.add(random_range(rng))
        else:
            rangeset.remove(random_range(rng))
    clone = RangeSet()
    clone.restore(rangeset.snapshot())
    assert clone == rangeset
    assert clone.total_size == rangeset.total_size
    # Restoring does not alias the source's internals.
    clone.add(AddressRange(0, ADDRESS_SPACE + MAX_RANGE + 10))
    assert clone != rangeset


# -- batch primitives vs the scalar oracle (hypothesis) ----------------------
#
# The dense executor commits taint runs through add_many/remove_many; the
# parity guarantee of the vectorised kernel rests on those batch
# primitives being *content-equivalent* to the scalar add/remove loop the
# exact tracker runs.  These properties drive both against each other on
# the same interleavings, including remove-induced splits (range_count can
# rise on a remove) and batches that straddle the top of the address space.

from hypothesis import given, settings
from hypothesis import strategies as st

HUGE = (1 << 62)  # overflow edge: far beyond any trace address

pair = st.builds(
    lambda start, size: (start, start + size),
    st.one_of(
        st.integers(0, ADDRESS_SPACE),
        st.integers(HUGE, HUGE + ADDRESS_SPACE),
    ),
    st.integers(0, MAX_RANGE),
)

batches = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]), st.lists(pair, max_size=8)),
    max_size=12,
)


@given(batches)
@settings(max_examples=150, deadline=None)
def test_add_many_remove_many_match_interleaved_scalar_oracle(ops):
    batched = RangeSet()
    oracle = RangeSet()
    for op, items in ops:
        if op == "add":
            extent = batched.add_many(items)
            for start, end in items:
                oracle.add(AddressRange(start, end))
            if items:
                # Extent contract: the returned span covers every batch
                # item's final coverage (callers patch caches from it).
                lo, hi = extent
                assert lo <= min(s for s, _ in items)
                assert hi >= max(e for _, e in items)
            else:
                assert extent is None
        else:
            steps = batched.remove_many(items)
            assert len(steps) == len(items)
            for (start, end), step in zip(items, steps):
                before_version = oracle._version
                oracle.remove(AddressRange(start, end))
                effective, total_after, count_after = step
                assert effective == (oracle._version != before_version)
                assert total_after == oracle.total_size
                assert count_after == oracle.range_count
        assert list(batched) == list(oracle)
        assert batched.total_size == oracle.total_size
        assert batched.range_count == oracle.range_count


@given(st.lists(pair, min_size=1, max_size=10))
@settings(max_examples=150, deadline=None)
def test_remove_many_reports_split_growth(items):
    """A remove that lands strictly inside a stored range splits it —
    remove_many's per-step range counts must show the growth, because the
    tracker's max_range_count high-water is taken per mutation."""
    rangeset = RangeSet()
    hull_lo = min(s for s, _ in items)
    hull_hi = max(e for _, e in items) + 2
    rangeset.add(AddressRange(hull_lo, hull_hi))
    interior = [
        (s + 1, min(e, hull_hi - 1))
        for s, e in items
        if s + 1 <= min(e, hull_hi - 1)
    ]
    steps = rangeset.remove_many(interior)
    oracle = RangeSet()
    oracle.add(AddressRange(hull_lo, hull_hi))
    for (start, end), (effective, total_after, count_after) in zip(
        interior, steps
    ):
        before_version = oracle._version
        oracle.remove(AddressRange(start, end))
        # A repeated interior pair is a no-op the second time around;
        # what matters is that per-step reports track the oracle exactly.
        assert effective == (oracle._version != before_version)
        assert total_after == oracle.total_size
        assert count_after == oracle.range_count
    assert list(rangeset) == list(oracle)

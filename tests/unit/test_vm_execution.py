"""Unit tests for VM execution semantics: every bytecode family runs a
small program and the architectural result is checked."""

import pytest

from repro.isa.cpu import CPU
from repro.dalvik import (
    DalvikVM,
    MethodBuilder,
    UncaughtVMException,
    VMError,
    bits_to_double,
    bits_to_float,
    double_to_bits,
    float_to_bits,
)


@pytest.fixture
def vm():
    return DalvikVM(CPU())


_NAME_COUNTER = [0]


def run_int(vm, build, registers=12):
    """Build a uniquely-named main method with ``build(b)`` appending code;
    run; return v0 as a signed int via the retval."""
    _NAME_COUNTER[0] += 1
    name = f"T.main{_NAME_COUNTER[0]}"
    b = MethodBuilder(name, registers=registers)
    build(b)
    b.return_value(0)
    vm.register_method(b.build())
    value = vm.call(name)
    return value - 0x100000000 if value & 0x80000000 else value


class TestConstants:
    def test_const4_positive(self, vm):
        assert run_int(vm, lambda b: b.const(0, 7)) == 7

    def test_const4_negative(self, vm):
        assert run_int(vm, lambda b: b.const(0, -3)) == -3

    def test_const16(self, vm):
        assert run_int(vm, lambda b: b.const(0, -30000)) == -30000

    def test_const32(self, vm):
        assert run_int(vm, lambda b: b.const(0, 0x12345678)) == 0x12345678

    def test_const_wide(self, vm):
        b = MethodBuilder("T.main", registers=8)
        b.const_wide(0, -(2**40))
        b.return_wide(0)
        vm.register_method(b.build())
        vm.call("T.main")
        assert vm.retval_wide == (-(2**40)) & (2**64 - 1)


class TestArithmetic:
    def test_add(self, vm):
        assert run_int(vm, lambda b: (b.const(1, 20), b.const(2, 22),
                                      b.add_int(0, 1, 2))) == 42

    def test_sub_negative_result(self, vm):
        assert run_int(vm, lambda b: (b.const(1, 5), b.const(2, 9),
                                      b.sub_int(0, 1, 2))) == -4

    def test_mul(self, vm):
        assert run_int(vm, lambda b: (b.const(1, -6), b.const(2, 7),
                                      b.mul_int(0, 1, 2))) == -42

    def test_div_truncates_toward_zero(self, vm):
        # Java semantics: -7 / 2 == -3.
        assert run_int(vm, lambda b: (b.const(1, -7), b.const(2, 2),
                                      b.div_int(0, 1, 2))) == -3

    def test_rem_sign_follows_dividend(self, vm):
        assert run_int(vm, lambda b: (b.const(1, -7), b.const(2, 2),
                                      b.rem_int(0, 1, 2))) == -1

    def test_div_by_zero_throws(self, vm):
        with pytest.raises(UncaughtVMException):
            run_int(vm, lambda b: (b.const(1, 1), b.const(2, 0),
                                   b.div_int(0, 1, 2)))

    def test_xor(self, vm):
        assert run_int(vm, lambda b: (b.const(1, 0b1100), b.const(2, 0b1010),
                                      b.xor_int(0, 1, 2))) == 0b0110

    def test_shifts(self, vm):
        assert run_int(vm, lambda b: (b.const(1, 1), b.const(2, 5),
                                      b.binop("shl-int", 0, 1, 2))) == 32
        assert run_int(vm, lambda b: (b.const(1, -32), b.const(2, 2),
                                      b.binop("shr-int", 0, 1, 2))) == -8
        assert run_int(vm, lambda b: (b.const(1, -1), b.const(2, 28),
                                      b.binop("ushr-int", 0, 1, 2))) == 0xF

    def test_2addr_variant(self, vm):
        assert run_int(vm, lambda b: (b.const(0, 6), b.const(1, 7),
                                      b.binop_2addr("mul-int", 0, 1))) == 42

    def test_lit8_negative_literal(self, vm):
        assert run_int(vm, lambda b: (b.const(1, 10),
                                      b.add_int_lit8(0, 1, -1))) == 9

    def test_lit16(self, vm):
        assert run_int(vm, lambda b: (b.const(1, 10),
                                      b.raw("add-int/lit16", a=0, b=1, literal=-500))) == -490

    def test_rsub(self, vm):
        assert run_int(vm, lambda b: (b.const(1, 3),
                                      b.raw("rsub-int", a=0, b=1, literal=10))) == 7

    def test_neg_and_not(self, vm):
        assert run_int(vm, lambda b: (b.const(1, 42),
                                      b.raw("neg-int", a=0, b=1))) == -42
        assert run_int(vm, lambda b: (b.const(1, 0),
                                      b.raw("not-int", a=0, b=1))) == -1


class TestWideArithmetic:
    def run_long(self, vm, op, a, c):
        b = MethodBuilder("T.main", registers=12)
        b.const_wide(0, a)
        b.const_wide(2, c)
        b.raw(op, a=4, b=0, c=2)
        b.return_wide(4)
        vm.register_method(b.build())
        vm.call("T.main")
        raw = vm.retval_wide
        return raw - 2**64 if raw & (1 << 63) else raw

    def test_add_long_with_carry(self, vm):
        assert self.run_long(vm, "add-long", 0xFFFFFFFF, 1) == 0x100000000

    def test_sub_long_borrow(self, vm):
        assert self.run_long(vm, "sub-long", 0, 1) == -1

    def test_mul_long(self, vm):
        assert self.run_long(vm, "mul-long", 123456789, 987654321) == (
            123456789 * 987654321
        )

    def test_div_long(self, vm):
        assert self.run_long(vm, "div-long", -(2**40), 3) == -((2**40) // 3)

    def test_shl_long(self, vm):
        assert self.run_long(vm, "shl-long", 1, 40) == 1 << 40

    def test_cmp_long(self, vm):
        b = MethodBuilder("T.main", registers=12)
        b.const_wide(0, 2**40)
        b.const_wide(2, 5)
        b.raw("cmp-long", a=4, b=0, c=2)
        b.return_value(4)
        vm.register_method(b.build())
        assert vm.call("T.main") == 1


class TestFloatingPoint:
    def run_double(self, vm, op, a, c):
        b = MethodBuilder("T.main", registers=12)
        b.const_wide(0, double_to_bits(a))
        b.raw("const-wide", a=2, literal=double_to_bits(c))
        b.raw(op, a=4, b=0, c=2)
        b.return_wide(4)
        vm.register_method(b.build())
        vm.call("T.main")
        return bits_to_double(vm.retval_wide)

    def test_add_double(self, vm):
        assert self.run_double(vm, "add-double", 1.5, 2.25) == 3.75

    def test_mul_double(self, vm):
        assert self.run_double(vm, "mul-double", -2.0, 8.5) == -17.0

    def test_div_double(self, vm):
        assert self.run_double(vm, "div-double", 1.0, 4.0) == 0.25

    def test_cmpl_double(self, vm):
        b = MethodBuilder("T.main", registers=12)
        b.raw("const-wide", a=0, literal=double_to_bits(1.5))
        b.raw("const-wide", a=2, literal=double_to_bits(2.5))
        b.raw("cmpl-double", a=4, b=0, c=2)
        b.return_value(4)
        vm.register_method(b.build())
        value = vm.call("T.main")
        assert value == 0xFFFFFFFF  # -1


class TestConversions:
    def test_int_to_long(self, vm):
        b = MethodBuilder("T.main", registers=8)
        b.const(0, -5)
        b.raw("int-to-long", a=2, b=0)
        b.return_wide(2)
        vm.register_method(b.build())
        vm.call("T.main")
        assert vm.retval_wide == (-5) & (2**64 - 1)

    def test_long_to_int_truncates(self, vm):
        b = MethodBuilder("T.main", registers=8)
        b.const_wide(0, 0x1_0000_002A)
        b.raw("long-to-int", a=2, b=0)
        b.return_value(2)
        vm.register_method(b.build())
        assert vm.call("T.main") == 42

    def test_int_to_char_masks(self, vm):
        assert run_int(vm, lambda b: (b.const(1, 0x12345),
                                      b.int_to_char(0, 1))) == 0x2345

    def test_int_to_byte_sign_extends(self, vm):
        assert run_int(vm, lambda b: (b.const(1, 0x80),
                                      b.raw("int-to-byte", a=0, b=1))) == -128

    def test_int_to_double_roundtrip(self, vm):
        b = MethodBuilder("T.main", registers=8)
        b.const(0, 37)
        b.raw("int-to-double", a=2, b=0)
        b.raw("double-to-int", a=4, b=2)
        b.return_value(4)
        vm.register_method(b.build())
        assert vm.call("T.main") == 37

    def test_double_to_int_clamps(self, vm):
        b = MethodBuilder("T.main", registers=8)
        b.raw("const-wide", a=0, literal=double_to_bits(1e18))
        b.raw("double-to-int", a=2, b=0)
        b.return_value(2)
        vm.register_method(b.build())
        assert vm.call("T.main") == 2**31 - 1


class TestControlFlow:
    def test_loop_sums(self, vm):
        b = MethodBuilder("T.main", registers=8)
        b.const(0, 0)  # sum
        b.const(1, 0)  # i
        b.const(2, 10)
        b.label("loop")
        b.if_ge(1, 2, "done")
        b.add_int(0, 0, 1)
        b.add_int_lit8(1, 1, 1)
        b.goto("loop")
        b.label("done")
        b.return_value(0)
        vm.register_method(b.build())
        assert vm.call("T.main") == 45

    def test_packed_switch(self, vm):
        b = MethodBuilder("T.main", registers=8)
        b.const(1, 2)
        b.packed_switch(1, 0, ["zero", "one", "two"])
        b.const(0, -1)
        b.return_value(0)
        for i, label in enumerate(["zero", "one", "two"]):
            b.label(label)
            b.const(0, i * 100)
            b.return_value(0)
        vm.register_method(b.build())
        assert vm.call("T.main") == 200

    def test_packed_switch_default(self, vm):
        b = MethodBuilder("T.main", registers=8)
        b.const(1, 7)
        b.packed_switch(1, 0, ["zero"])
        b.const(0, -1)
        b.return_value(0)
        b.label("zero")
        b.const(0, 0)
        b.return_value(0)
        vm.register_method(b.build())
        assert vm.call("T.main") == 0xFFFFFFFF  # -1 as a raw 32-bit word

    def test_sparse_switch(self, vm):
        b = MethodBuilder("T.main", registers=8)
        b.const(1, 1000)
        b.sparse_switch(1, [(10, "ten"), (1000, "thousand")])
        b.const(0, -1)
        b.return_value(0)
        b.label("ten")
        b.const(0, 1)
        b.return_value(0)
        b.label("thousand")
        b.const(0, 2)
        b.return_value(0)
        vm.register_method(b.build())
        assert vm.call("T.main") == 2

    def test_all_if_conditions(self, vm):
        for name, a, c, taken in [
            ("if-eq", 5, 5, True), ("if-ne", 5, 5, False),
            ("if-lt", -1, 0, True), ("if-ge", -1, 0, False),
            ("if-gt", 3, 2, True), ("if-le", 3, 2, False),
        ]:
            fresh = DalvikVM(CPU())
            b = MethodBuilder("T.main", registers=8)
            b.const(1, a)
            b.const(2, c)
            b.raw(name, a=1, b=2, symbol="yes")
            b.const(0, 0)
            b.return_value(0)
            b.label("yes")
            b.const(0, 1)
            b.return_value(0)
            fresh.register_method(b.build())
            assert bool(fresh.call("T.main")) == taken, name


class TestMethodsAndFrames:
    def test_arguments_and_return(self, vm):
        callee = MethodBuilder("T.sum3", registers=6, ins=3)
        callee.add_int(0, 3, 4)
        callee.add_int(0, 0, 5)
        callee.return_value(0)
        vm.register_method(callee.build())
        main = MethodBuilder("T.main", registers=8)
        main.const(1, 10)
        main.const(2, 20)
        main.const(3, 12)
        main.invoke_static("T.sum3", 1, 2, 3)
        main.move_result(0)
        main.return_value(0)
        vm.register_method(main.build())
        assert vm.call("T.main") == 42

    def test_nested_calls(self, vm):
        inner = MethodBuilder("T.twice", registers=4, ins=1)
        inner.add_int(0, 3, 3)
        inner.return_value(0)
        vm.register_method(inner.build())
        outer = MethodBuilder("T.quad", registers=4, ins=1)
        outer.invoke_static("T.twice", 3)
        outer.move_result(0)
        outer.invoke_static("T.twice", 0)
        outer.move_result(0)
        outer.return_value(0)
        vm.register_method(outer.build())
        main = MethodBuilder("T.main", registers=4)
        main.const(1, 5)
        main.invoke_static("T.quad", 1)
        main.move_result(0)
        main.return_value(0)
        vm.register_method(main.build())
        assert vm.call("T.main") == 20

    def test_recursion(self, vm):
        fact = MethodBuilder("T.fact", registers=6, ins=1)
        fact.if_nez(5, "recurse")
        fact.const(0, 1)
        fact.return_value(0)
        fact.label("recurse")
        fact.add_int_lit8(1, 5, -1)
        fact.invoke_static("T.fact", 1)
        fact.move_result(0)
        fact.mul_int(0, 0, 5)
        fact.return_value(0)
        vm.register_method(fact.build())
        main = MethodBuilder("T.main", registers=4)
        main.const(1, 6)
        main.invoke_static("T.fact", 1)
        main.move_result(0)
        main.return_value(0)
        vm.register_method(main.build())
        assert vm.call("T.main") == 720

    def test_wrong_arity_rejected(self, vm):
        callee = MethodBuilder("T.one", registers=2, ins=1)
        callee.return_value(1)
        vm.register_method(callee.build())
        main = MethodBuilder("T.main", registers=4)
        main.invoke_static("T.one")
        main.return_void()
        vm.register_method(main.build())
        with pytest.raises(VMError):
            vm.call("T.main")

    def test_unknown_method_rejected(self, vm):
        with pytest.raises(VMError):
            vm.call("T.ghost")


class TestFieldsAndArrays:
    def test_instance_fields(self, vm):
        vm.heap.define_class("T/Point", fields=[("x", 4), ("y", 4)])
        b = MethodBuilder("T.main", registers=8)
        b.new_instance(1, "T/Point")
        b.const(2, 11)
        b.iput(2, 1, "T/Point.x")
        b.const(2, 31)
        b.iput(2, 1, "T/Point.y")
        b.iget(3, 1, "T/Point.x")
        b.iget(4, 1, "T/Point.y")
        b.add_int(0, 3, 4)
        b.return_value(0)
        vm.register_method(b.build())
        assert vm.call("T.main") == 42

    def test_wide_fields(self, vm):
        vm.heap.define_class("T/Holder", fields=[("big", 8)])
        b = MethodBuilder("T.main", registers=8)
        b.new_instance(1, "T/Holder")
        b.const_wide(2, 2**40)
        b.iput(2, 1, "T/Holder.big", wide=True)
        b.iget(4, 1, "T/Holder.big", wide=True)
        b.return_wide(4)
        vm.register_method(b.build())
        vm.call("T.main")
        assert vm.retval_wide == 2**40

    def test_static_fields(self, vm):
        b = MethodBuilder("T.main", registers=8)
        b.const(1, 77)
        b.sput(1, "T.counter")
        b.sget(0, "T.counter")
        b.return_value(0)
        vm.register_method(b.build())
        assert vm.call("T.main") == 77

    def test_array_roundtrip(self, vm):
        b = MethodBuilder("T.main", registers=8)
        b.const(1, 4)
        b.new_array(2, 1, "[I")
        b.const(3, 2)
        b.const(4, 99)
        b.aput(4, 2, 3)
        b.aget(0, 2, 3)
        b.return_value(0)
        vm.register_method(b.build())
        assert vm.call("T.main") == 99

    def test_array_length(self, vm):
        b = MethodBuilder("T.main", registers=8)
        b.const(1, 9)
        b.new_array(2, 1, "[I")
        b.array_length(0, 2)
        b.return_value(0)
        vm.register_method(b.build())
        assert vm.call("T.main") == 9

    def test_array_bounds_throw(self, vm):
        b = MethodBuilder("T.main", registers=8)
        b.const(1, 2)
        b.new_array(2, 1, "[I")
        b.const(3, 5)
        b.aget(0, 2, 3)
        b.return_value(0)
        vm.register_method(b.build())
        with pytest.raises(UncaughtVMException):
            vm.call("T.main")

    def test_null_field_access_throws(self, vm):
        vm.heap.define_class("T/N", fields=[("v", 4)])
        b = MethodBuilder("T.main", registers=8)
        b.const(1, 0)
        b.iget(0, 1, "T/N.v")
        b.return_value(0)
        vm.register_method(b.build())
        with pytest.raises(UncaughtVMException):
            vm.call("T.main")


class TestExceptions:
    def test_catch_in_same_method(self, vm):
        b = MethodBuilder("T.main", registers=8)
        b.label("try_start")
        b.new_instance(1, "java/lang/Exception")
        b.throw(1)
        b.label("try_end")
        b.const(0, -1)  # skipped
        b.return_value(0)
        b.label("handler")
        b.move_exception(2)
        b.const(0, 42)
        b.return_value(0)
        b.catch("try_start", "try_end", "handler", "java/lang/Exception")
        vm.register_method(b.build())
        assert vm.call("T.main") == 42

    def test_unwind_to_caller(self, vm):
        thrower = MethodBuilder("T.boom", registers=4)
        thrower.new_instance(0, "java/lang/RuntimeException")
        thrower.throw(0)
        vm.register_method(thrower.build())
        main = MethodBuilder("T.main", registers=8)
        main.label("try_start")
        main.invoke_static("T.boom")
        main.label("try_end")
        main.const(0, -1)
        main.return_value(0)
        main.label("handler")
        main.const(0, 7)
        main.return_value(0)
        main.catch("try_start", "try_end", "handler", "java/lang/RuntimeException")
        vm.register_method(main.build())
        assert vm.call("T.main") == 7

    def test_type_mismatch_not_caught(self, vm):
        vm.heap.define_class("T/Special", superclass="java/lang/Exception")
        b = MethodBuilder("T.main", registers=8)
        b.label("try_start")
        b.new_instance(1, "java/lang/RuntimeException")
        b.throw(1)
        b.label("try_end")
        b.return_void()
        b.label("handler")
        b.return_void()
        b.catch("try_start", "try_end", "handler", "T/Special")
        vm.register_method(b.build())
        with pytest.raises(UncaughtVMException):
            vm.call("T.main")

    def test_instance_of_and_check_cast(self, vm):
        vm.heap.define_class("T/A")
        vm.heap.define_class("T/B", superclass="T/A")
        b = MethodBuilder("T.main", registers=8)
        b.new_instance(1, "T/B")
        b.instance_of(0, 1, "T/A")
        b.check_cast(1, "T/A")  # must not throw
        b.return_value(0)
        vm.register_method(b.build())
        assert vm.call("T.main") == 1

    def test_failed_check_cast_throws(self, vm):
        vm.heap.define_class("T/X")
        vm.heap.define_class("T/Y")
        b = MethodBuilder("T.main", registers=8)
        b.new_instance(1, "T/X")
        b.check_cast(1, "T/Y")
        b.return_void()
        vm.register_method(b.build())
        with pytest.raises(UncaughtVMException):
            vm.call("T.main")


class TestMoves:
    def test_move_variants(self, vm):
        b = MethodBuilder("T.main", registers=20)
        b.const(5, 42)
        b.move(4, 5)
        b.move_from16(3, 4)
        b.raw("move/16", a=2, b=3)
        b.move(0, 2)
        b.return_value(0)
        vm.register_method(b.build())
        assert vm.call("T.main") == 42

    def test_move_wide(self, vm):
        b = MethodBuilder("T.main", registers=8)
        b.const_wide(0, 2**50)
        b.move_wide(2, 0)
        b.return_wide(2)
        vm.register_method(b.build())
        vm.call("T.main")
        assert vm.retval_wide == 2**50

"""Unit tests for the simulated memory, allocator, and register file."""

import pytest

from repro.core.ranges import AddressRange
from repro.isa.memory import AddressSpace, BumpAllocator, Memory, MemoryFault
from repro.isa.registers import ConditionFlags, RegisterFile, register_number


class TestMemory:
    def test_zero_initialised(self):
        mem = Memory()
        assert mem.read_u32(0x1000) == 0

    def test_u8_roundtrip(self):
        mem = Memory()
        mem.write_u8(0x10, 0xAB)
        assert mem.read_u8(0x10) == 0xAB

    def test_u16_little_endian(self):
        mem = Memory()
        mem.write_u16(0x10, 0x1234)
        assert mem.read_u8(0x10) == 0x34
        assert mem.read_u8(0x11) == 0x12
        assert mem.read_u16(0x10) == 0x1234

    def test_u32_roundtrip(self):
        mem = Memory()
        mem.write_u32(0x100, 0xDEADBEEF)
        assert mem.read_u32(0x100) == 0xDEADBEEF

    def test_u64_roundtrip(self):
        mem = Memory()
        mem.write_u64(0x100, 0x0123456789ABCDEF)
        assert mem.read_u64(0x100) == 0x0123456789ABCDEF
        assert mem.read_u32(0x100) == 0x89ABCDEF

    def test_cross_page_access(self):
        mem = Memory()
        addr = 0x1FFE  # straddles the 0x1000/0x2000 page boundary
        mem.write_u32(addr, 0xCAFEBABE)
        assert mem.read_u32(addr) == 0xCAFEBABE

    def test_bulk_bytes(self):
        mem = Memory()
        payload = bytes(range(100))
        mem.write_bytes(0x3000, payload)
        assert mem.read_bytes(0x3000, 100) == payload

    def test_write_truncates_to_width(self):
        mem = Memory()
        mem.write_u8(0x10, 0x1FF)
        assert mem.read_u8(0x10) == 0xFF

    def test_out_of_space_rejected(self):
        mem = Memory()
        with pytest.raises(MemoryFault):
            mem.read_bytes(0xFFFFFFFF, 2)
        with pytest.raises(MemoryFault):
            mem.write_bytes(-4, b"1234")


class TestBumpAllocator:
    def test_sequential_disjoint(self):
        alloc = BumpAllocator(0x1000, 0x2000)
        a = alloc.alloc(16)
        b = alloc.alloc(16)
        assert a == 0x1000
        assert b == 0x1010

    def test_alignment(self):
        alloc = BumpAllocator(0x1000, 0x2000)
        alloc.alloc(3)
        assert alloc.alloc(4, align=8) % 8 == 0

    def test_exhaustion(self):
        alloc = BumpAllocator(0x1000, 0x1010)
        alloc.alloc(16)
        with pytest.raises(MemoryFault):
            alloc.alloc(1)

    def test_region_helper(self):
        alloc = BumpAllocator(0x1000, 0x2000)
        region = alloc.alloc_region("imei", 30)
        assert region.range == AddressRange(0x1000, 0x101D)
        assert region.size == 30

    def test_rejects_bad_arguments(self):
        alloc = BumpAllocator(0x1000, 0x2000)
        with pytest.raises(ValueError):
            alloc.alloc(0)
        with pytest.raises(ValueError):
            alloc.alloc(4, align=3)
        with pytest.raises(ValueError):
            BumpAllocator(0x2000, 0x1000)

    def test_bytes_used(self):
        alloc = BumpAllocator(0x1000, 0x2000)
        alloc.alloc(10)
        assert alloc.bytes_used == 10


class TestAddressSpace:
    def test_regions_disjoint(self):
        space = AddressSpace()
        frame = space.frames.alloc(256)
        heap = space.heap.alloc(256)
        assert frame < heap
        assert space.FRAME_LIMIT <= space.HEAP_BASE


class TestRegisterFile:
    def test_named_and_numbered_access(self):
        regs = RegisterFile()
        regs.write("rFP", 0x1234)
        assert regs.read(5) == 0x1234
        assert regs["rFP"] == 0x1234

    def test_values_wrap_to_32_bits(self):
        regs = RegisterFile()
        regs.write(0, 0x1_0000_0001)
        assert regs.read(0) == 1

    def test_signed_read(self):
        regs = RegisterFile()
        regs.write(0, 0xFFFFFFFF)
        assert regs.read_signed(0) == -1

    def test_unknown_register_rejected(self):
        with pytest.raises(ValueError):
            register_number("r16")
        with pytest.raises(ValueError):
            register_number("bogus")

    def test_flags_set_nz(self):
        flags = ConditionFlags()
        flags.set_nz(0)
        assert flags.zero and not flags.negative
        flags.set_nz(0x80000000)
        assert flags.negative and not flags.zero

    def test_snapshot_is_copy(self):
        regs = RegisterFile()
        snap = regs.snapshot()
        regs.write(0, 42)
        assert snap[0] == 0

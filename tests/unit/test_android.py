"""Unit tests for the Android device model: sources, sinks, PIFT wiring."""

import pytest

from repro.core.config import PIFTConfig
from repro.android import AndroidDevice, DeviceSecrets
from repro.dalvik import MethodBuilder
from repro.dalvik.objects import bits_to_double


@pytest.fixture
def device():
    return AndroidDevice(config=PIFTConfig(13, 3))


def install_and_run(device, builder):
    device.install([builder.build()])
    return device.run(builder.name)


class TestSources:
    def test_device_id_returns_and_taints(self, device):
        b = MethodBuilder("S.main", registers=4)
        b.invoke_static("TelephonyManager.getDeviceId")
        b.move_result_object(0)
        b.return_object(0)
        ref = install_and_run(device, b)
        imei = device.vm.heap.deref(ref)
        assert imei.value() == device.secrets.imei
        assert device.hw.tracker.check(imei.data_range())
        assert device.manager.sources_registered[0].source_name == (
            "TelephonyManager.getDeviceId"
        )

    def test_phone_number_and_serial(self, device):
        b = MethodBuilder("S.main", registers=4)
        b.invoke_static("TelephonyManager.getLine1Number")
        b.move_result_object(0)
        b.invoke_static("TelephonyManager.getSimSerialNumber")
        b.move_result_object(1)
        b.return_object(1)
        ref = install_and_run(device, b)
        assert device.vm.heap.deref(ref).value() == device.secrets.sim_serial
        assert len(device.recorded.sources) == 2

    def test_location_fields_tainted(self, device):
        b = MethodBuilder("S.main", registers=6)
        b.invoke_static("LocationManager.getLastKnownLocation")
        b.move_result_object(0)
        b.invoke("Location.getLatitude", 0)
        b.move_result_wide(2)
        b.return_wide(2)
        install_and_run(device, b)
        assert bits_to_double(device.vm.retval_wide) == device.secrets.latitude
        # Both coordinate fields registered as tainted ranges.
        assert len(device.recorded.sources) == 2

    def test_custom_secrets(self):
        device = AndroidDevice(secrets=DeviceSecrets(imei="111222333444555"))
        b = MethodBuilder("S.main", registers=4)
        b.invoke_static("TelephonyManager.getDeviceId")
        b.move_result_object(0)
        b.return_object(0)
        ref = install_and_run(device, b)
        assert device.vm.heap.deref(ref).value() == "111222333444555"


class TestSinks:
    def test_sms_sink_records_payload(self, device):
        b = MethodBuilder("S.main", registers=6)
        b.const_string(0, "+15550001111")
        b.const(1, 0)
        b.const_string(2, "hello")
        b.invoke("SmsManager.sendTextMessage", 0, 1, 2)
        b.return_void()
        install_and_run(device, b)
        (event,) = device.sinks
        assert event.channel == "sms"
        assert event.destination == "+15550001111"
        assert event.payload == "hello"
        assert not event.pift_alarm
        assert device.framework.sent_sms == ["hello"]

    def test_http_sink_via_url(self, device):
        b = MethodBuilder("S.main", registers=8)
        b.const_string(0, "http://example.com/ping")
        b.new_instance(1, "java/net/URL")
        b.invoke_direct("URL.<init>", 1, 0)
        b.invoke("URL.openConnection", 1)
        b.move_result_object(2)
        b.invoke("HttpURLConnection.connect", 2)
        b.return_void()
        install_and_run(device, b)
        (event,) = device.sinks
        assert event.channel == "http"
        assert event.payload == "http://example.com/ping"

    def test_log_sink(self, device):
        b = MethodBuilder("S.main", registers=6)
        b.const_string(0, "TAG")
        b.const_string(1, "message")
        b.invoke_static("Log.i", 0, 1)
        b.return_void()
        install_and_run(device, b)
        assert device.framework.log_lines == ["TAG: message"]
        assert device.sinks[0].channel == "log"

    def test_tainted_sink_raises_alarm_and_leak_event(self, device):
        b = MethodBuilder("S.main", registers=6)
        b.invoke_static("TelephonyManager.getDeviceId")
        b.move_result_object(0)
        b.const_string(1, "+15550001111")
        b.const(2, 0)
        b.invoke("SmsManager.sendTextMessage", 1, 2, 0)
        b.return_void()
        install_and_run(device, b)
        assert device.leak_detected
        assert device.sinks[0].pift_alarm
        assert device.module.leak_events  # kernel-level event raised


class TestRecording:
    def test_recorded_run_is_complete(self, device):
        b = MethodBuilder("S.main", registers=6)
        b.invoke_static("TelephonyManager.getDeviceId")
        b.move_result_object(0)
        b.const_string(1, "+15550001111")
        b.const(2, 0)
        b.invoke("SmsManager.sendTextMessage", 1, 2, 0)
        b.return_void()
        install_and_run(device, b)
        recorded = device.recorded
        assert recorded.trace.load_count > 0
        assert recorded.trace.store_count > 0
        assert len(recorded.sources) == 1
        assert len(recorded.sink_checks) == 1
        check = recorded.sink_checks[0]
        assert check.channel == "sms"
        assert check.instruction_index <= recorded.instruction_count

    def test_replay_matches_live_verdict(self, device):
        from repro.analysis.replay import replay

        b = MethodBuilder("S.main", registers=6)
        b.invoke_static("TelephonyManager.getDeviceId")
        b.move_result_object(0)
        b.const_string(1, "+15550001111")
        b.const(2, 0)
        b.invoke("SmsManager.sendTextMessage", 1, 2, 0)
        b.return_void()
        install_and_run(device, b)
        result = replay(device.recorded, device.config)
        assert result.alarm == device.leak_detected

    def test_intents_round_trip(self, device):
        b = MethodBuilder("S.main", registers=8)
        b.new_instance(0, "android/content/Intent")
        b.invoke_direct("Intent.<init>", 0)
        b.const_string(1, "k")
        b.const_string(2, "v")
        b.invoke("Intent.putExtra", 0, 1, 2)
        b.invoke("Intent.getStringExtra", 0, 1)
        b.move_result_object(3)
        b.return_object(3)
        ref = install_and_run(device, b)
        assert device.vm.heap.deref(ref).value() == "v"

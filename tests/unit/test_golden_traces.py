"""Golden-trace regression freeze.

``tests/data/golden_v{2,3}.pift.gz`` are committed fixtures produced by
``tests/data/make_golden_traces.py``.  These tests replay them and assert
the *exact* observable outcome — sink verdicts, instruction counts, and
tracker stats — so any drift in the tracefile codec, the replay
scheduler, Algorithm 1, or the vectorised kernel is caught against a
byte-frozen input.  Intentional semantic changes must regenerate the
fixtures and update the expectations here, in the same commit.
"""

import gzip
import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.analysis.replay import replay
from repro.analysis.tracefile import load_recorded_run
from repro.core.config import PAPER_DEFAULT

DATA = Path(__file__).parent.parent / "data"

#: (fixture name, expected instruction_count, expected event count,
#:  expected [(sink, pid, tainted)] in replay order, expected stats).
GOLDEN = {
    "golden_v3": {
        "instruction_count": 7550,
        "events": 3015,
        "verdicts": [
            ("network", 2, False),
            ("network", 2, False),
            ("network", 1, True),
            ("network", 1, False),
            ("log", 1, False),
        ],
        "stats": {
            "instructions_observed": 7540,
            "loads_observed": 1524,
            "stores_observed": 1491,
            "tainted_loads": 5,
            "taint_operations": 15,
            "untaint_operations": 1,
            "max_tainted_bytes": 136,
            "max_range_count": 16,
        },
    },
    "golden_dense_v1": {
        "instruction_count": 6002,
        "events": 6000,
        "verdicts": [
            ("network", 0, True),
            ("log", 0, False),
        ],
        "stats": {
            "instructions_observed": 6001,
            "loads_observed": 1500,
            "stores_observed": 4500,
            "tainted_loads": 1500,
            "taint_operations": 4500,
            "untaint_operations": 0,
            "max_tainted_bytes": 36864,
            "max_range_count": 2,
        },
    },
    "golden_dense_prefix_v1": {
        "instruction_count": 20135,
        "events": 6000,
        "verdicts": [
            ("network", 0, True),
            ("network", 0, False),
        ],
        "stats": {
            "instructions_observed": 20134,
            "loads_observed": 2660,
            "stores_observed": 3340,
            "tainted_loads": 500,
            "taint_operations": 500,
            "untaint_operations": 500,
            "max_tainted_bytes": 20,
            "max_range_count": 2,
        },
    },
    "golden_colours_v1": {
        "instruction_count": 2530,
        "events": 2464,
        "verdicts": [
            ("network", 0, True),
            ("sms", 0, True),
            ("network", 0, True),
            ("network", 0, True),
            ("log", 0, False),
        ],
        "stats": {
            "instructions_observed": 2529,
            "loads_observed": 1176,
            "stores_observed": 1288,
            "tainted_loads": 24,
            "taint_operations": 72,
            "untaint_operations": 0,
            "max_tainted_bytes": 575,
            "max_range_count": 67,
        },
    },
    "golden_v2": {
        "instruction_count": 3979,
        "events": 2008,
        "verdicts": [
            ("sms", 0, True),
            ("sms", 0, True),
            ("log", 0, False),
        ],
        "stats": {
            "instructions_observed": 3976,
            "loads_observed": 1000,
            "stores_observed": 1008,
            "tainted_loads": 4,
            "taint_operations": 12,
            "untaint_operations": 0,
            "max_tainted_bytes": 117,
            "max_range_count": 6,
        },
    },
}


def _load(name):
    return load_recorded_run(DATA / f"{name}.pift.gz")


@pytest.mark.parametrize("name", sorted(GOLDEN))
@pytest.mark.parametrize("vectorized", [True, False], ids=["vec", "scalar"])
def test_golden_replay_is_frozen(name, vectorized):
    expected = GOLDEN[name]
    recorded = _load(name)
    assert recorded.instruction_count == expected["instruction_count"]
    assert len(recorded.trace) == expected["events"]
    result = replay(recorded, replace(PAPER_DEFAULT, vectorized=vectorized))
    assert [
        (o.sink_name, o.pid, o.tainted) for o in result.sink_outcomes
    ] == expected["verdicts"]
    stats = result.stats.as_dict()
    for key, value in expected["stats"].items():
        assert stats[key] == value, f"{name}: stats[{key}]"


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_strategies_bit_identical(name):
    recorded = _load(name)
    runs = {}
    for vectorized in (True, False):
        result = replay(
            recorded, replace(PAPER_DEFAULT, vectorized=vectorized)
        )
        runs[vectorized] = json.dumps(
            {
                "stats": result.stats.as_dict(),
                "verdicts": [
                    (o.sink_name, o.channel, o.instruction_index, o.pid,
                     o.tainted)
                    for o in result.sink_outcomes
                ],
            },
            sort_keys=True,
        )
    assert runs[True] == runs[False]


def test_golden_dense_runs_the_dense_executor(monkeypatch):
    """``golden_dense_v1`` is taint-dense end to end: the vectorised
    replay must execute it entirely in the dense numpy path — zero
    hand-offs to the scalar loop.  Catches silent regressions where the
    dense executor starts bailing (which would keep parity but lose the
    whole speedup this regime exists to freeze)."""
    from repro.core.tracker import PIFTTracker

    recorded = _load("golden_dense_v1")
    calls = []
    original = PIFTTracker.observe_columns_scalar

    def counting(self, columns, start=0, stop=None):
        calls.append((start, stop))
        return original(self, columns, start, stop)

    monkeypatch.setattr(PIFTTracker, "observe_columns_scalar", counting)
    replay(recorded, replace(PAPER_DEFAULT, vectorized=True))
    assert calls == []


def test_golden_dense_prefix_trips_and_recovers(monkeypatch):
    """``golden_dense_prefix_v1`` must engage the density bail-out on
    its churn prefix (scalar spans happen) while every span stays
    bounded — the one-way wholesale hand-off this PR removed would show
    up here as a single span swallowing the sparse tail."""
    from repro.core.tracker import PIFTTracker
    from repro.core.vectorized import REPROBE_EVERY

    recorded = _load("golden_dense_prefix_v1")
    spans = []
    original = PIFTTracker.observe_columns_scalar

    def counting(self, columns, start=0, stop=None):
        spans.append((start, len(columns) if stop is None else stop))
        return original(self, columns, start, stop)

    monkeypatch.setattr(PIFTTracker, "observe_columns_scalar", counting)
    replay(recorded, replace(PAPER_DEFAULT, vectorized=True))
    assert spans, "churn prefix should force scalar spans"
    assert max(hi - lo for lo, hi in spans) <= REPROBE_EVERY


#: Frozen per-sink colour attribution of ``golden_colours_v1`` — three
#: single-colour flows, one mixed (two-colour) area, one clean sink.
GOLDEN_COLOUR_VERDICTS = [
    ("network", "socket", True, ("imei",)),
    ("sms", "sms", True, ("location",)),
    ("network", "socket", True, ("phone_number",)),
    ("network", "socket", True, ("imei", "location")),
    ("log", "logcat", False, ()),
]


@pytest.mark.parametrize("vectorized", [True, False], ids=["vec", "scalar"])
def test_golden_colours_attribution_is_frozen(vectorized):
    """The coloured replay of ``golden_colours_v1`` must attribute every
    sink hit to exactly these source colours — including the mixed area
    whose intervals carry a two-colour mask — and its stats must equal
    the plain replay's (the colour layer adds labels, never events)."""
    from repro.analysis.replay import replay_coloured

    recorded = _load("golden_colours_v1")
    config = replace(PAPER_DEFAULT, vectorized=vectorized)
    coloured = replay_coloured(recorded, config)
    assert [
        (o.sink_name, o.channel, o.tainted, o.colours)
        for o in coloured.sink_outcomes
    ] == GOLDEN_COLOUR_VERDICTS
    assert all(
        o.tainted == bool(o.colours) for o in coloured.sink_outcomes
    )
    plain = replay(recorded, config)
    assert coloured.stats.as_dict() == plain.stats.as_dict()


def test_golden_v2_document_shape():
    """The v2 fixture must stay a faithful version-2 document: version
    field 2 and no pid keys anywhere (the v2 writer predates them)."""
    with gzip.open(DATA / "golden_v2.pift.gz", "rt", encoding="utf-8") as fh:
        document = json.load(fh)
    assert document["version"] == 2
    assert "pids" not in document["events"]
    assert all("pid" not in s for s in document["sources"])
    assert all("pid" not in c for c in document["sink_checks"])


def test_golden_v3_document_shape():
    with gzip.open(DATA / "golden_v3.pift.gz", "rt", encoding="utf-8") as fh:
        document = json.load(fh)
    assert document["version"] == 3
    assert "pids" in document["events"]
    assert {s["pid"] for s in document["sources"]} == {1}
    assert {c["pid"] for c in document["sink_checks"]} == {1, 2}

"""Golden-trace regression freeze.

``tests/data/golden_v{2,3}.pift.gz`` are committed fixtures produced by
``tests/data/make_golden_traces.py``.  These tests replay them and assert
the *exact* observable outcome — sink verdicts, instruction counts, and
tracker stats — so any drift in the tracefile codec, the replay
scheduler, Algorithm 1, or the vectorised kernel is caught against a
byte-frozen input.  Intentional semantic changes must regenerate the
fixtures and update the expectations here, in the same commit.
"""

import gzip
import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.analysis.replay import replay
from repro.analysis.tracefile import load_recorded_run
from repro.core.config import PAPER_DEFAULT

DATA = Path(__file__).parent.parent / "data"

#: (fixture name, expected instruction_count, expected event count,
#:  expected [(sink, pid, tainted)] in replay order, expected stats).
GOLDEN = {
    "golden_v3": {
        "instruction_count": 7550,
        "events": 3015,
        "verdicts": [
            ("network", 2, False),
            ("network", 2, False),
            ("network", 1, True),
            ("network", 1, False),
            ("log", 1, False),
        ],
        "stats": {
            "instructions_observed": 7540,
            "loads_observed": 1524,
            "stores_observed": 1491,
            "tainted_loads": 5,
            "taint_operations": 15,
            "untaint_operations": 1,
            "max_tainted_bytes": 136,
            "max_range_count": 16,
        },
    },
    "golden_v2": {
        "instruction_count": 3979,
        "events": 2008,
        "verdicts": [
            ("sms", 0, True),
            ("sms", 0, True),
            ("log", 0, False),
        ],
        "stats": {
            "instructions_observed": 3976,
            "loads_observed": 1000,
            "stores_observed": 1008,
            "tainted_loads": 4,
            "taint_operations": 12,
            "untaint_operations": 0,
            "max_tainted_bytes": 117,
            "max_range_count": 6,
        },
    },
}


def _load(name):
    return load_recorded_run(DATA / f"{name}.pift.gz")


@pytest.mark.parametrize("name", sorted(GOLDEN))
@pytest.mark.parametrize("vectorized", [True, False], ids=["vec", "scalar"])
def test_golden_replay_is_frozen(name, vectorized):
    expected = GOLDEN[name]
    recorded = _load(name)
    assert recorded.instruction_count == expected["instruction_count"]
    assert len(recorded.trace) == expected["events"]
    result = replay(recorded, replace(PAPER_DEFAULT, vectorized=vectorized))
    assert [
        (o.sink_name, o.pid, o.tainted) for o in result.sink_outcomes
    ] == expected["verdicts"]
    stats = result.stats.as_dict()
    for key, value in expected["stats"].items():
        assert stats[key] == value, f"{name}: stats[{key}]"


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_strategies_bit_identical(name):
    recorded = _load(name)
    runs = {}
    for vectorized in (True, False):
        result = replay(
            recorded, replace(PAPER_DEFAULT, vectorized=vectorized)
        )
        runs[vectorized] = json.dumps(
            {
                "stats": result.stats.as_dict(),
                "verdicts": [
                    (o.sink_name, o.channel, o.instruction_index, o.pid,
                     o.tainted)
                    for o in result.sink_outcomes
                ],
            },
            sort_keys=True,
        )
    assert runs[True] == runs[False]


def test_golden_v2_document_shape():
    """The v2 fixture must stay a faithful version-2 document: version
    field 2 and no pid keys anywhere (the v2 writer predates them)."""
    with gzip.open(DATA / "golden_v2.pift.gz", "rt", encoding="utf-8") as fh:
        document = json.load(fh)
    assert document["version"] == 2
    assert "pids" not in document["events"]
    assert all("pid" not in s for s in document["sources"])
    assert all("pid" not in c for c in document["sink_checks"])


def test_golden_v3_document_shape():
    with gzip.open(DATA / "golden_v3.pift.gz", "rt", encoding="utf-8") as fh:
        document = json.load(fh)
    assert document["version"] == 3
    assert "pids" in document["events"]
    assert {s["pid"] for s in document["sources"]} == {1}
    assert {c["pid"] for c in document["sink_checks"]} == {1, 2}

"""Unit tests for the benchmark history store and perf-regression gate.

The benchmark itself (``benchmarks/bench_sweep_scaling.py``) is tier-2;
the bookkeeping it gates CI on — history parsing, the median baseline,
and the >25% regression rule — is plain logic and belongs in tier-1.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_BENCH = (
    Path(__file__).parent.parent.parent
    / "benchmarks"
    / "bench_sweep_scaling.py"
)


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_sweep_scaling", _BENCH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write_history(path, speedups):
    with open(path, "w", encoding="utf-8") as fh:
        for s in speedups:
            fh.write(json.dumps({"vectorized_speedup": s}) + "\n")


class TestHistory:
    def test_missing_file_is_empty(self, bench, tmp_path):
        assert bench.load_history(tmp_path / "absent.jsonl") == []

    def test_roundtrip(self, bench, tmp_path):
        path = tmp_path / "h.jsonl"
        bench.append_history(path, {"vectorized_speedup": 7.5, "mode": "full"})
        bench.append_history(path, {"vectorized_speedup": 8.0, "mode": "full"})
        records = bench.load_history(path)
        assert [r["vectorized_speedup"] for r in records] == [7.5, 8.0]

    def test_malformed_and_foreign_lines_skipped(self, bench, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(
            "not json\n"
            '{"some_other_tool": 1}\n'
            "\n"
            '{"vectorized_speedup": 6.0}\n',
            encoding="utf-8",
        )
        records = bench.load_history(path)
        assert [r["vectorized_speedup"] for r in records] == [6.0]


class TestBaseline:
    def test_median_odd(self, bench, tmp_path):
        path = tmp_path / "h.jsonl"
        write_history(path, [5.0, 50.0, 8.0])
        assert bench.baseline_speedup(bench.load_history(path)) == 8.0

    def test_median_even(self, bench, tmp_path):
        path = tmp_path / "h.jsonl"
        write_history(path, [6.0, 10.0])
        assert bench.baseline_speedup(bench.load_history(path)) == 8.0


class TestGate:
    def test_no_history_always_ok(self, bench):
        ok, baseline = bench.check_regression([], 1.0)
        assert ok and baseline is None

    def test_within_tolerance_ok(self, bench):
        history = [{"vectorized_speedup": 10.0}]
        # 25% tolerance: 7.5x against a 10x baseline still passes...
        ok, baseline = bench.check_regression(history, 7.5)
        assert ok and baseline == 10.0

    def test_regression_fails(self, bench):
        history = [{"vectorized_speedup": 10.0}]
        # ...but anything below does not.
        ok, _ = bench.check_regression(history, 7.4)
        assert not ok

    def test_median_resists_noisy_outlier(self, bench):
        history = [{"vectorized_speedup": s} for s in (9.0, 10.0, 2.0)]
        ok, baseline = bench.check_regression(history, 8.0)
        assert ok and baseline == 9.0

    def test_tolerance_constant(self, bench):
        assert bench.REGRESSION_TOLERANCE == 0.25

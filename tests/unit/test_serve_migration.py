"""The migration primitive: mid-stream snapshot/restore round-trips.

`repro serve`'s drain/restore verbs promise that a shard checkpointed
mid-stream — events still queued, immediate checks still pending — and
revived elsewhere produces bit-identical verdicts.  These tests pin the
underlying machinery shard-by-shard: ``BufferedPIFT`` round-trips with a
non-empty FIFO, pending-verdict reconciliation survives the move,
``ColourTracker`` masks and colour spaces travel intact, and the
execution-strategy hysteresis (``_dense_churn_streak``) deliberately
does *not* travel.
"""

import pytest

from repro.core.buffered import BufferedPIFT
from repro.core.colours import ColourSpace
from repro.core.config import OverflowPolicy, PIFTConfig
from repro.core.events import load, store
from repro.core.ranges import AddressRange
from repro.core.tracker import ColourTracker, PIFTTracker
from repro.serve.shard import ShardError, TrackerShard

CONFIG = PIFTConfig(5, 2)
SRC = AddressRange(0x1000, 0x100F)
DST = AddressRange(0x8000, 0x8003)
CLEAN = AddressRange(0xF000, 0xF003)


def leaky_events(rounds=8):
    """load-from-source / store-to-sink pairs, one taint per round."""
    events = []
    index = 1
    for r in range(rounds):
        events.append(load(0x1000, 0x1003, index))
        events.append(store(0x8000 + (r % 4), 0x8000 + (r % 4), index + 1))
        index += 3
    return events


class TestBufferedMidStreamRoundTrip:
    def migrated(self, events, split, coloured=False):
        """Feed ``events[:split]``, snapshot with the FIFO non-empty,
        restore into a *fresh* instance, feed the rest; return it."""
        def build():
            return BufferedPIFT(
                CONFIG, capacity=1024, drain_batch=4,
                colours=ColourSpace() if coloured else None,
            )

        donor = build()
        donor.taint_source(SRC, colour="imei" if coloured else None)
        for event in events[:split]:
            donor.on_memory_event(event)
        assert donor.queue_depth > 0  # the move happens mid-flight
        snapshot = donor.snapshot()

        heir = build()
        heir.restore(snapshot)
        for event in events[split:]:
            heir.on_memory_event(event)
        return heir

    def reference(self, events, coloured=False):
        buffered = BufferedPIFT(
            CONFIG, capacity=1024, drain_batch=4,
            colours=ColourSpace() if coloured else None,
        )
        buffered.taint_source(SRC, colour="imei" if coloured else None)
        for event in events:
            buffered.on_memory_event(event)
        return buffered

    def test_verdicts_identical_after_migration(self):
        events = leaky_events()
        for split in (1, 5, len(events) - 1):
            heir = self.migrated(events, split)
            ref = self.reference(events)
            assert heir.check_blocking(DST) == ref.check_blocking(DST) is True
            assert heir.check_blocking(CLEAN) is ref.check_blocking(CLEAN)
            # The whole tracker state is identical, not just verdicts.
            assert heir.tracker.snapshot() == ref.tracker.snapshot()

    def test_coloured_attribution_identical_after_migration(self):
        events = leaky_events()
        heir = self.migrated(events, 5, coloured=True)
        ref = self.reference(events, coloured=True)
        assert (
            heir.check_blocking_colours(DST)
            == ref.check_blocking_colours(DST)
            == ("imei",)
        )
        assert heir.tracker.snapshot() == ref.tracker.snapshot()

    def test_queue_contents_travel_unflushed(self):
        events = leaky_events()
        donor = self.reference([])  # plain empty tracker
        donor.taint_source(SRC)
        for event in events:
            donor.on_memory_event(event)
        depth = donor.queue_depth
        heir = BufferedPIFT(CONFIG, capacity=1024, drain_batch=4)
        heir.restore(donor.snapshot())
        assert heir.queue_depth == depth
        assert heir.drain_all() == depth


class TestPendingVerdictReconciliation:
    def test_pending_immediate_check_settles_after_migration(self):
        donor = BufferedPIFT(CONFIG, capacity=1024, drain_batch=4)
        donor.taint_source(SRC)
        for event in leaky_events(rounds=3):
            donor.on_memory_event(event)
        verdict = donor.check_immediate_verdict(DST, sink_name="sms")
        assert not verdict.tainted  # stale: the taint is still queued

        heir = BufferedPIFT(CONFIG, capacity=1024, drain_batch=4)
        heir.restore(donor.snapshot())
        assert not heir.late_detections
        heir.drain_all()
        (late,) = heir.late_detections
        assert late.sink_name == "sms"
        assert late.address_range == DST
        assert late.events_behind == 6
        # The donor, had it stayed put, reconciles identically.
        donor.drain_all()
        assert donor.late_detections == heir.late_detections

    def test_sequence_barriers_survive_partial_drain_after_restore(self):
        donor = BufferedPIFT(CONFIG, capacity=1024, drain_batch=2)
        donor.taint_source(SRC)
        events = leaky_events(rounds=4)
        for event in events[:4]:
            donor.on_memory_event(event)
        donor.check_immediate_verdict(DST, sink_name="net")
        for event in events[4:]:
            donor.on_memory_event(event)  # enqueued after the barrier

        heir = BufferedPIFT(CONFIG, capacity=1024, drain_batch=2)
        heir.restore(donor.snapshot())
        heir.drain(2)  # partial: barrier (4 events) not yet retired
        assert not heir.late_detections
        heir.drain(2)  # barrier reached: the check settles now
        assert [d.sink_name for d in heir.late_detections] == ["net"]


class TestHysteresisAfterRestore:
    def test_tracker_restore_clears_dense_churn_streak(self):
        tracker = PIFTTracker(CONFIG)
        tracker.taint_source(SRC)
        tracker._dense_churn_streak = 5
        snapshot = tracker.snapshot()
        heir = PIFTTracker(CONFIG)
        heir._dense_churn_streak = 3
        heir.restore(snapshot)
        assert heir._dense_churn_streak == 0

    def test_buffered_restore_clears_wrapped_tracker_hysteresis(self):
        donor = BufferedPIFT(CONFIG, capacity=64, drain_batch=4)
        donor.taint_source(SRC)
        donor.tracker._dense_churn_streak = 7
        heir = BufferedPIFT(CONFIG, capacity=64, drain_batch=4)
        heir.restore(donor.snapshot())
        assert heir.tracker._dense_churn_streak == 0

    def test_backpressure_flag_travels(self):
        donor = BufferedPIFT(
            CONFIG, capacity=64, drain_batch=4,
            high_watermark=8, low_watermark=2,
        )
        for event in leaky_events(rounds=6):
            donor.on_memory_event(event)
        assert donor.backpressure
        heir = BufferedPIFT(
            CONFIG, capacity=64, drain_batch=4,
            high_watermark=8, low_watermark=2,
        )
        heir.restore(donor.snapshot())
        assert heir.backpressure  # a paused reader must stay paused
        heir.drain_all()
        assert not heir.backpressure


class TestColourTrackerRoundTrip:
    def test_colour_space_and_masks_travel(self):
        donor = ColourTracker(CONFIG)
        donor.taint_source(SRC, colour="imei")
        donor.taint_source(AddressRange(0x3000, 0x300F), colour="location")
        for event in leaky_events(rounds=4):
            donor.observe(event)
        snapshot = donor.snapshot()
        heir = ColourTracker(CONFIG)
        heir.restore(snapshot)
        assert heir.check_colours(DST) == donor.check_colours(DST)
        assert heir.colours.names == donor.colours.names
        # New registrations continue from the travelled space.
        heir.taint_source(AddressRange(0x5000, 0x500F), colour="contacts")
        assert heir.colours.names[-1] == "contacts"


class TestShardSnapshotValidation:
    def make_shard(self, coloured=False, key=("dev", 0)):
        return TrackerShard(key, CONFIG, coloured=coloured)

    def test_round_trip_increments_restores(self):
        shard = self.make_shard()
        shard.register_source(SRC)
        shard.ingest(leaky_events(rounds=2))
        snapshot = shard.snapshot()
        heir = self.make_shard()
        heir.restore(snapshot)
        assert heir.restores == 1
        assert heir.events_ingested == shard.events_ingested
        tainted, colours, degraded = heir.check(DST)
        assert tainted and not degraded

    def test_rejects_wrong_version(self):
        snapshot = self.make_shard().snapshot()
        snapshot["version"] = 99
        with pytest.raises(ShardError, match="version"):
            self.make_shard().restore(snapshot)

    def test_rejects_wrong_key(self):
        snapshot = self.make_shard(key=("dev-a", 0)).snapshot()
        with pytest.raises(ShardError, match="dev-a"):
            self.make_shard(key=("dev-b", 0)).restore(snapshot)

    def test_rejects_colour_mode_mismatch(self):
        snapshot = self.make_shard(coloured=True).snapshot()
        with pytest.raises(ShardError, match="colour"):
            self.make_shard(coloured=False).restore(snapshot)

    def test_coloured_shard_attribution_after_migration(self):
        donor = self.make_shard(coloured=True)
        donor.register_source(SRC, colour="imei")
        events = leaky_events(rounds=6)
        donor.ingest(events[:5])
        heir = self.make_shard(coloured=True)
        heir.restore(donor.snapshot())
        heir.ingest(events[5:])

        reference = self.make_shard(coloured=True)
        reference.register_source(SRC, colour="imei")
        reference.ingest(events)
        assert heir.check(DST) == reference.check(DST)
        assert heir.check(DST)[1] == ["imei"]

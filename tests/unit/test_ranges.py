"""Unit tests for AddressRange and RangeSet."""

import pytest

from repro.core.ranges import AddressRange, RangeSet


class TestAddressRange:
    def test_single_byte_range(self):
        r = AddressRange(0x10, 0x10)
        assert r.size == 1
        assert r.contains_address(0x10)

    def test_size_is_inclusive(self):
        assert AddressRange(0, 3).size == 4

    def test_from_base_size(self):
        r = AddressRange.from_base_size(0x100, 16)
        assert r == AddressRange(0x100, 0x10F)

    def test_from_base_size_rejects_zero(self):
        with pytest.raises(ValueError):
            AddressRange.from_base_size(0x100, 0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            AddressRange(5, 4)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            AddressRange(-1, 4)

    def test_overlap_is_papers_condition(self):
        # max(s_i, s_L) <= min(e_i, e_L)
        a = AddressRange(10, 20)
        assert a.overlaps(AddressRange(20, 30))
        assert a.overlaps(AddressRange(0, 10))
        assert a.overlaps(AddressRange(12, 15))
        assert a.overlaps(AddressRange(0, 100))
        assert not a.overlaps(AddressRange(21, 30))
        assert not a.overlaps(AddressRange(0, 9))

    def test_contains(self):
        outer = AddressRange(0, 100)
        assert outer.contains(AddressRange(0, 100))
        assert outer.contains(AddressRange(10, 20))
        assert not outer.contains(AddressRange(50, 101))

    def test_intersection(self):
        a = AddressRange(10, 20)
        assert a.intersection(AddressRange(15, 30)) == AddressRange(15, 20)
        assert a.intersection(AddressRange(21, 30)) is None

    def test_union_of_adjacent(self):
        assert AddressRange(0, 4).union(AddressRange(5, 9)) == AddressRange(0, 9)

    def test_union_of_disjoint_raises(self):
        with pytest.raises(ValueError):
            AddressRange(0, 4).union(AddressRange(6, 9))

    def test_subtract_middle_splits(self):
        pieces = AddressRange(0, 10).subtract(AddressRange(3, 6))
        assert pieces == (AddressRange(0, 2), AddressRange(7, 10))

    def test_subtract_disjoint_is_identity(self):
        assert AddressRange(0, 10).subtract(AddressRange(20, 30)) == (
            AddressRange(0, 10),
        )

    def test_subtract_covering_removes_all(self):
        assert AddressRange(5, 6).subtract(AddressRange(0, 10)) == ()

    def test_subtract_prefix(self):
        assert AddressRange(0, 10).subtract(AddressRange(0, 4)) == (
            AddressRange(5, 10),
        )

    def test_aligned_expand_to_word(self):
        # 4-byte granularity: [5, 6] covers the block [4, 7].
        assert AddressRange(5, 6).aligned_expand(2) == AddressRange(4, 7)

    def test_aligned_expand_zero_bits_is_identity(self):
        assert AddressRange(5, 6).aligned_expand(0) == AddressRange(5, 6)

    def test_ordering_and_hash(self):
        assert AddressRange(0, 5) < AddressRange(1, 2)
        assert len({AddressRange(0, 5), AddressRange(0, 5)}) == 1


class TestRangeSet:
    def test_empty(self):
        s = RangeSet()
        assert len(s) == 0
        assert not s
        assert s.total_size == 0
        assert not s.overlaps(AddressRange(0, 100))

    def test_add_and_query(self):
        s = RangeSet()
        s.add(AddressRange(10, 20))
        assert s.overlaps(AddressRange(15, 15))
        assert s.overlaps(AddressRange(0, 10))
        assert not s.overlaps(AddressRange(21, 30))
        assert s.total_size == 11
        assert s.range_count == 1

    def test_add_merges_overlapping(self):
        s = RangeSet([AddressRange(10, 20), AddressRange(15, 30)])
        assert list(s) == [AddressRange(10, 30)]

    def test_add_merges_adjacent(self):
        s = RangeSet([AddressRange(10, 20), AddressRange(21, 30)])
        assert list(s) == [AddressRange(10, 30)]

    def test_add_keeps_disjoint_separate(self):
        s = RangeSet([AddressRange(10, 20), AddressRange(22, 30)])
        assert s.range_count == 2

    def test_add_bridging_range_merges_many(self):
        s = RangeSet([AddressRange(0, 4), AddressRange(10, 14), AddressRange(20, 24)])
        s.add(AddressRange(3, 21))
        assert list(s) == [AddressRange(0, 24)]

    def test_remove_splits(self):
        s = RangeSet([AddressRange(0, 10)])
        s.remove(AddressRange(3, 6))
        assert list(s) == [AddressRange(0, 2), AddressRange(7, 10)]

    def test_remove_entire(self):
        s = RangeSet([AddressRange(0, 10)])
        s.remove(AddressRange(0, 10))
        assert not s

    def test_remove_spanning_many(self):
        s = RangeSet([AddressRange(0, 4), AddressRange(10, 14), AddressRange(20, 24)])
        s.remove(AddressRange(2, 22))
        assert list(s) == [AddressRange(0, 1), AddressRange(23, 24)]

    def test_remove_disjoint_is_noop(self):
        s = RangeSet([AddressRange(0, 4)])
        s.remove(AddressRange(10, 20))
        assert list(s) == [AddressRange(0, 4)]

    def test_remove_from_empty(self):
        s = RangeSet()
        s.remove(AddressRange(0, 10))
        assert not s

    def test_contains_full_coverage_only(self):
        s = RangeSet([AddressRange(0, 10)])
        assert AddressRange(0, 10) in s
        assert AddressRange(3, 6) in s
        assert AddressRange(5, 15) not in s

    def test_overlapping_returns_sorted_hits(self):
        s = RangeSet([AddressRange(0, 4), AddressRange(10, 14), AddressRange(20, 24)])
        assert s.overlapping(AddressRange(3, 12)) == [
            AddressRange(0, 4),
            AddressRange(10, 14),
        ]

    def test_covers_address(self):
        s = RangeSet([AddressRange(5, 9)])
        assert s.covers_address(5)
        assert s.covers_address(9)
        assert not s.covers_address(4)
        assert not s.covers_address(10)

    def test_copy_is_independent(self):
        s = RangeSet([AddressRange(0, 10)])
        clone = s.copy()
        clone.add(AddressRange(20, 30))
        assert s.range_count == 1
        assert clone.range_count == 2
        assert s == RangeSet([AddressRange(0, 10)])

    def test_clear(self):
        s = RangeSet([AddressRange(0, 10)])
        s.clear()
        assert not s

    def test_iteration_is_sorted(self):
        s = RangeSet([AddressRange(20, 24), AddressRange(0, 4), AddressRange(10, 14)])
        assert list(s) == [
            AddressRange(0, 4),
            AddressRange(10, 14),
            AddressRange(20, 24),
        ]

    def test_add_at_address_zero(self):
        s = RangeSet()
        s.add(AddressRange(0, 0))
        s.add(AddressRange(1, 1))
        assert list(s) == [AddressRange(0, 1)]

    def test_equality(self):
        assert RangeSet([AddressRange(0, 5)]) == RangeSet(
            [AddressRange(0, 2), AddressRange(3, 5)]
        )
        assert RangeSet([AddressRange(0, 5)]) != RangeSet([AddressRange(0, 6)])

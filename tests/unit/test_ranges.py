"""Unit tests for AddressRange and RangeSet."""

import pytest

from repro.core.ranges import AddressRange, RangeSet


class TestAddressRange:
    def test_single_byte_range(self):
        r = AddressRange(0x10, 0x10)
        assert r.size == 1
        assert r.contains_address(0x10)

    def test_size_is_inclusive(self):
        assert AddressRange(0, 3).size == 4

    def test_from_base_size(self):
        r = AddressRange.from_base_size(0x100, 16)
        assert r == AddressRange(0x100, 0x10F)

    def test_from_base_size_rejects_zero(self):
        with pytest.raises(ValueError):
            AddressRange.from_base_size(0x100, 0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            AddressRange(5, 4)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            AddressRange(-1, 4)

    def test_overlap_is_papers_condition(self):
        # max(s_i, s_L) <= min(e_i, e_L)
        a = AddressRange(10, 20)
        assert a.overlaps(AddressRange(20, 30))
        assert a.overlaps(AddressRange(0, 10))
        assert a.overlaps(AddressRange(12, 15))
        assert a.overlaps(AddressRange(0, 100))
        assert not a.overlaps(AddressRange(21, 30))
        assert not a.overlaps(AddressRange(0, 9))

    def test_contains(self):
        outer = AddressRange(0, 100)
        assert outer.contains(AddressRange(0, 100))
        assert outer.contains(AddressRange(10, 20))
        assert not outer.contains(AddressRange(50, 101))

    def test_intersection(self):
        a = AddressRange(10, 20)
        assert a.intersection(AddressRange(15, 30)) == AddressRange(15, 20)
        assert a.intersection(AddressRange(21, 30)) is None

    def test_union_of_adjacent(self):
        assert AddressRange(0, 4).union(AddressRange(5, 9)) == AddressRange(0, 9)

    def test_union_of_disjoint_raises(self):
        with pytest.raises(ValueError):
            AddressRange(0, 4).union(AddressRange(6, 9))

    def test_subtract_middle_splits(self):
        pieces = AddressRange(0, 10).subtract(AddressRange(3, 6))
        assert pieces == (AddressRange(0, 2), AddressRange(7, 10))

    def test_subtract_disjoint_is_identity(self):
        assert AddressRange(0, 10).subtract(AddressRange(20, 30)) == (
            AddressRange(0, 10),
        )

    def test_subtract_covering_removes_all(self):
        assert AddressRange(5, 6).subtract(AddressRange(0, 10)) == ()

    def test_subtract_prefix(self):
        assert AddressRange(0, 10).subtract(AddressRange(0, 4)) == (
            AddressRange(5, 10),
        )

    def test_aligned_expand_to_word(self):
        # 4-byte granularity: [5, 6] covers the block [4, 7].
        assert AddressRange(5, 6).aligned_expand(2) == AddressRange(4, 7)

    def test_aligned_expand_zero_bits_is_identity(self):
        assert AddressRange(5, 6).aligned_expand(0) == AddressRange(5, 6)

    def test_ordering_and_hash(self):
        assert AddressRange(0, 5) < AddressRange(1, 2)
        assert len({AddressRange(0, 5), AddressRange(0, 5)}) == 1


class TestRangeSet:
    def test_empty(self):
        s = RangeSet()
        assert len(s) == 0
        assert not s
        assert s.total_size == 0
        assert not s.overlaps(AddressRange(0, 100))

    def test_add_and_query(self):
        s = RangeSet()
        s.add(AddressRange(10, 20))
        assert s.overlaps(AddressRange(15, 15))
        assert s.overlaps(AddressRange(0, 10))
        assert not s.overlaps(AddressRange(21, 30))
        assert s.total_size == 11
        assert s.range_count == 1

    def test_add_merges_overlapping(self):
        s = RangeSet([AddressRange(10, 20), AddressRange(15, 30)])
        assert list(s) == [AddressRange(10, 30)]

    def test_add_merges_adjacent(self):
        s = RangeSet([AddressRange(10, 20), AddressRange(21, 30)])
        assert list(s) == [AddressRange(10, 30)]

    def test_add_keeps_disjoint_separate(self):
        s = RangeSet([AddressRange(10, 20), AddressRange(22, 30)])
        assert s.range_count == 2

    def test_add_bridging_range_merges_many(self):
        s = RangeSet([AddressRange(0, 4), AddressRange(10, 14), AddressRange(20, 24)])
        s.add(AddressRange(3, 21))
        assert list(s) == [AddressRange(0, 24)]

    def test_remove_splits(self):
        s = RangeSet([AddressRange(0, 10)])
        s.remove(AddressRange(3, 6))
        assert list(s) == [AddressRange(0, 2), AddressRange(7, 10)]

    def test_remove_entire(self):
        s = RangeSet([AddressRange(0, 10)])
        s.remove(AddressRange(0, 10))
        assert not s

    def test_remove_spanning_many(self):
        s = RangeSet([AddressRange(0, 4), AddressRange(10, 14), AddressRange(20, 24)])
        s.remove(AddressRange(2, 22))
        assert list(s) == [AddressRange(0, 1), AddressRange(23, 24)]

    def test_remove_disjoint_is_noop(self):
        s = RangeSet([AddressRange(0, 4)])
        s.remove(AddressRange(10, 20))
        assert list(s) == [AddressRange(0, 4)]

    def test_remove_from_empty(self):
        s = RangeSet()
        s.remove(AddressRange(0, 10))
        assert not s

    def test_contains_full_coverage_only(self):
        s = RangeSet([AddressRange(0, 10)])
        assert AddressRange(0, 10) in s
        assert AddressRange(3, 6) in s
        assert AddressRange(5, 15) not in s

    def test_overlapping_returns_sorted_hits(self):
        s = RangeSet([AddressRange(0, 4), AddressRange(10, 14), AddressRange(20, 24)])
        assert s.overlapping(AddressRange(3, 12)) == [
            AddressRange(0, 4),
            AddressRange(10, 14),
        ]

    def test_covers_address(self):
        s = RangeSet([AddressRange(5, 9)])
        assert s.covers_address(5)
        assert s.covers_address(9)
        assert not s.covers_address(4)
        assert not s.covers_address(10)

    def test_copy_is_independent(self):
        s = RangeSet([AddressRange(0, 10)])
        clone = s.copy()
        clone.add(AddressRange(20, 30))
        assert s.range_count == 1
        assert clone.range_count == 2
        assert s == RangeSet([AddressRange(0, 10)])

    def test_clear(self):
        s = RangeSet([AddressRange(0, 10)])
        s.clear()
        assert not s

    def test_iteration_is_sorted(self):
        s = RangeSet([AddressRange(20, 24), AddressRange(0, 4), AddressRange(10, 14)])
        assert list(s) == [
            AddressRange(0, 4),
            AddressRange(10, 14),
            AddressRange(20, 24),
        ]

    def test_add_at_address_zero(self):
        s = RangeSet()
        s.add(AddressRange(0, 0))
        s.add(AddressRange(1, 1))
        assert list(s) == [AddressRange(0, 1)]

    def test_equality(self):
        assert RangeSet([AddressRange(0, 5)]) == RangeSet(
            [AddressRange(0, 2), AddressRange(3, 5)]
        )
        assert RangeSet([AddressRange(0, 5)]) != RangeSet([AddressRange(0, 6)])


class TestBulkMutations:
    """add_many / remove_many: one sorted-merge (or one version bump)
    must be content-equivalent to sequential add()/remove() calls."""

    def test_add_many_matches_sequential_adds(self):
        import random

        rng = random.Random(20260808)
        for _ in range(50):
            base = [
                AddressRange.from_base_size(rng.randrange(0, 500), rng.randint(1, 9))
                for _ in range(rng.randint(0, 8))
            ]
            batch = [
                (s, s + rng.randint(0, 8))
                for s in (rng.randrange(0, 500) for _ in range(rng.randint(1, 20)))
            ]
            bulk = RangeSet(base)
            sequential = RangeSet(base)
            bulk.add_many(batch)
            for s, e in batch:
                sequential.add(AddressRange(s, e))
            assert bulk == sequential
            assert bulk.total_size == sequential.total_size
            assert bulk.range_count == sequential.range_count

    def test_add_many_extent_covers_every_touched_range(self):
        s = RangeSet([AddressRange(0, 4), AddressRange(100, 104), AddressRange(300, 304)])
        extent = s.add_many([(3, 10), (98, 99)])
        # [0,4] merged with [3,10] -> [0,10]; [98,99] adjacent to [100,104]
        # -> [98,104]; [300,304] untouched.
        assert extent == (0, 104)
        assert list(s) == [
            AddressRange(0, 10),
            AddressRange(98, 104),
            AddressRange(300, 304),
        ]

    def test_add_many_empty_batch_is_noop(self):
        s = RangeSet([AddressRange(0, 4)])
        assert s.add_many([]) is None
        assert list(s) == [AddressRange(0, 4)]

    def test_add_many_writes_mirror_back(self):
        s = RangeSet([AddressRange(0, 4)])
        s.add_many([(10, 14)])
        mirror = s._np_mirror
        assert mirror is not None and mirror[0] == s._version
        starts, ends = s.as_arrays()
        assert s._np_mirror is mirror  # no rebuild needed
        assert starts.tolist() == [0, 10]
        assert ends.tolist() == [4, 14]

    def test_remove_many_matches_sequential_removes(self):
        import random

        rng = random.Random(777)
        for _ in range(50):
            base = [
                AddressRange.from_base_size(rng.randrange(0, 300), rng.randint(1, 12))
                for _ in range(rng.randint(1, 10))
            ]
            batch = [
                (s, s + rng.randint(0, 10))
                for s in (rng.randrange(0, 300) for _ in range(rng.randint(1, 12)))
            ]
            bulk = RangeSet(base)
            sequential = RangeSet(base)
            steps = bulk.remove_many(batch)
            for (s, e), (effective, total_after, count_after) in zip(batch, steps):
                query = AddressRange(s, e)
                assert effective == sequential.overlaps(query)
                sequential.remove(query)
                assert total_after == sequential.total_size
                assert count_after == sequential.range_count
            assert bulk == sequential

    def test_remove_many_reports_split_counts_per_step(self):
        s = RangeSet([AddressRange(0, 99)])
        steps = s.remove_many([(10, 19), (50, 59), (200, 300)])
        # Each split raises the range count; the miss is ineffective.
        assert steps == [(True, 90, 2), (True, 80, 3), (False, 80, 3)]

    def test_remove_many_single_version_bump(self):
        s = RangeSet([AddressRange(0, 99)])
        s.as_arrays()
        before = s._version
        s.remove_many([(10, 19), (50, 59)])
        assert s._version == before + 1
        s.remove_many([(500, 600)])  # all misses: no bump
        assert s._version == before + 1

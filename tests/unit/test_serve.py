"""End-to-end tests of the `repro serve` daemon over unix sockets.

Each test boots a real :class:`PIFTServer` on a throwaway unix socket
inside an ``asyncio.run`` and exercises the full stack — protocol
handshake and error frames, live backpressure under tight watermarks,
admin verbs (query/stats/drain/restore/migrate/stop_worker), the HTTP
metrics scrape, and the fleet harness's parity claim in plain, coloured,
and mid-stream-migration configurations.
"""

import asyncio

import pytest

from repro.android.device import RecordedRun, SinkCheck, SourceRegistration
from repro.core.config import OverflowPolicy, PIFTConfig
from repro.core.events import EventTrace, load, store
from repro.core.ranges import AddressRange
from repro.serve import protocol
from repro.serve.client import (
    AdminClient,
    DeviceClient,
    ServeClientError,
    open_connection,
)
from repro.serve.fleet import run_fleet, run_fleet_sync
from repro.serve.router import ShardRouter
from repro.serve.server import PIFTServer

CONFIG = PIFTConfig(5, 2)


def make_run(pids=(0,), rounds=6, leak=True):
    """A synthetic recorded run: per-PID source, leak loop, two checks."""
    events, sources, checks = [], [], []
    top = 0
    for i, pid in enumerate(pids):
        src = 0x1000 + 0x100000 * i
        dst = 0x8000 + 0x100000 * i
        sources.append(
            SourceRegistration(
                AddressRange(src, src + 0xF), 0, f"src-{pid}", pid=pid
            )
        )
        index = 1
        for r in range(rounds):
            events.append(load(src, src + 3, index, pid))
            if leak:
                events.append(
                    store(dst + 4 * r, dst + 4 * r + 3, index + 1, pid)
                )
            index += 3
        checks.append(
            SinkCheck(
                AddressRange(dst, dst + 4 * rounds - 1), index,
                f"sink-{pid}", "net", pid=pid,
            )
        )
        checks.append(
            SinkCheck(
                AddressRange(0xF0000, 0xF0003), index + 1,
                f"clean-{pid}", "sms", pid=pid,
            )
        )
        top += index + 2
    return RecordedRun(
        trace=EventTrace(events, instruction_count=top),
        sources=sources,
        sink_checks=checks,
    )


def make_suite(count=6, pids_per_run=2):
    return [
        (f"app-{i}", make_run(
            pids=tuple(range(pids_per_run)), rounds=3 + i % 4,
            leak=bool(i % 3),
        ))
        for i in range(count)
    ]


class Daemon:
    """Async context manager: a live daemon on a tmp unix socket."""

    def __init__(self, tmp_path, metrics=False, **router_kwargs):
        router_kwargs.setdefault("workers", 2)
        self.router = ShardRouter(CONFIG, **router_kwargs)
        self.server = PIFTServer(self.router)
        self.path = str(tmp_path / "serve.sock")
        self.metrics = metrics

    async def __aenter__(self):
        await self.server.start(
            unix_path=self.path,
            metrics=("127.0.0.1", 0) if self.metrics else None,
        )
        return self

    async def __aexit__(self, *exc):
        await self.server.stop()


class TestHandshakeAndErrors:
    def test_version_mismatch_rejected(self, tmp_path):
        async def scenario():
            async with Daemon(tmp_path) as daemon:
                reader, writer = await open_connection(
                    unix_path=daemon.path
                )
                bad = protocol.hello_frame("dev")
                bad["version"] = 999
                writer.write(protocol.encode_frame(bad))
                await writer.drain()
                reply = protocol.decode_frame(await reader.readline())
                writer.close()
                return reply

        reply = asyncio.run(scenario())
        assert reply["op"] == "error"
        assert "version 999" in reply["error"]

    def test_colour_mode_mismatch_rejected(self, tmp_path):
        async def scenario():
            async with Daemon(tmp_path, coloured=False) as daemon:
                with pytest.raises(ServeClientError, match="colour-mode"):
                    await DeviceClient.connect(
                        "dev", unix_path=daemon.path, colours=True
                    )

        asyncio.run(scenario())

    def test_frames_before_hello_rejected(self, tmp_path):
        async def scenario():
            async with Daemon(tmp_path) as daemon:
                reader, writer = await open_connection(
                    unix_path=daemon.path
                )
                writer.write(protocol.encode_frame(
                    protocol.events_frame([load(0x10, 0x13, 1)])
                ))
                await writer.drain()
                reply = protocol.decode_frame(await reader.readline())
                writer.close()
                return reply

        reply = asyncio.run(scenario())
        assert reply["op"] == "error"
        assert "no hello yet" in reply["error"]

    def test_unknown_op_and_garbage_keep_connection_alive(self, tmp_path):
        async def scenario():
            async with Daemon(tmp_path) as daemon:
                reader, writer = await open_connection(
                    unix_path=daemon.path
                )
                writer.write(b"this is not json\n")
                writer.write(protocol.encode_frame({"op": "frobnicate"}))
                await writer.drain()
                first = protocol.decode_frame(await reader.readline())
                second = protocol.decode_frame(await reader.readline())
                # The connection survived both errors: a hello still works.
                writer.write(protocol.encode_frame(
                    protocol.hello_frame("dev")
                ))
                await writer.drain()
                third = protocol.decode_frame(await reader.readline())
                writer.close()
                return first, second, third

        first, second, third = asyncio.run(scenario())
        assert first["op"] == "error" and "unparseable" in first["error"]
        assert second["op"] == "error" and "frobnicate" in second["error"]
        assert third["op"] == "welcome"


class TestStreamAndQuery:
    def test_streamed_verdicts_and_query_api(self, tmp_path):
        recorded = make_run(pids=(0, 5))

        async def scenario():
            async with Daemon(tmp_path) as daemon:
                client = await DeviceClient.connect(
                    "dev-a", unix_path=daemon.path
                )
                verdicts = await client.stream_run(recorded)
                admin = await AdminClient.connect(unix_path=daemon.path)
                result = await admin.query("dev-a")
                stats = await admin.stats()
                await admin.close()
                await client.end()
                return verdicts, result, stats

        verdicts, result, stats = asyncio.run(scenario())
        # One tainted + one clean check per pid; both pids share
        # instruction indices, so the replay plan interleaves them.
        assert [(v["sink"], v["tainted"]) for v in verdicts] == [
            ("sink-0", True), ("sink-5", True),
            ("clean-0", False), ("clean-5", False),
        ]
        assert not any(v["degraded"] for v in verdicts)
        assert [v["sink"] for v in result["verdicts"]] == [
            v["sink"] for v in verdicts
        ]
        assert {s["pid"] for s in result["shards"]} == {0, 5}
        assert stats["server"]["devices"] == ["dev-a"]
        assert stats["shards"] == 2
        assert stats["events_ingested"] == len(recorded.trace.events)

    def test_reset_drops_shards_but_keeps_verdict_log(self, tmp_path):
        async def scenario():
            async with Daemon(tmp_path) as daemon:
                client = await DeviceClient.connect(
                    "dev-a", unix_path=daemon.path
                )
                await client.stream_run(make_run())
                dropped = await client.reset()
                admin = await AdminClient.connect(unix_path=daemon.path)
                result = await admin.query("dev-a")
                await admin.close()
                await client.end()
                return dropped, result

        dropped, result = asyncio.run(scenario())
        assert dropped == 1
        assert result["shards"] == []  # live shards gone...
        assert len(result["verdicts"]) == 2  # ...log survives


class TestBackpressure:
    def test_watermarks_pause_reads_without_loss(self, tmp_path):
        # A FIFO of 32 with the drain worker racing a 200-round burst:
        # the gate must engage, and parity must still hold.
        recorded = make_run(rounds=200)

        async def scenario():
            async with Daemon(
                tmp_path, capacity=32, drain_batch=4,
                high_watermark=24, low_watermark=4,
            ) as daemon:
                client = await DeviceClient.connect(
                    "dev-a", unix_path=daemon.path
                )
                verdicts = await client.stream_run(recorded, chunk=16)
                admin = await AdminClient.connect(unix_path=daemon.path)
                stats = await admin.stats()
                await admin.close()
                await client.end()
                return verdicts, stats

        verdicts, stats = asyncio.run(scenario())
        assert stats["backpressure_engagements"] > 0
        assert stats["forced_drops"] == 0
        assert [v["tainted"] for v in verdicts] == [True, False]

    def test_drop_oldest_policy_degrades_verdicts(self, tmp_path):
        # Overflow the FIFO inside one frame (frame chunk > capacity):
        # ingest is synchronous, so the drain worker cannot interleave
        # and the drop policy must fire; every later verdict carries the
        # degraded-confidence flag.
        recorded = make_run(rounds=300)

        async def scenario():
            async with Daemon(
                tmp_path, capacity=16, drain_batch=4,
                policy=OverflowPolicy.DROP_OLDEST,
            ) as daemon:
                client = await DeviceClient.connect(
                    "dev-a", unix_path=daemon.path
                )
                verdicts = await client.stream_run(recorded, chunk=600)
                admin = await AdminClient.connect(unix_path=daemon.path)
                stats = await admin.stats()
                await admin.close()
                await client.end()
                return verdicts, stats

        verdicts, stats = asyncio.run(scenario())
        assert stats["forced_drops"] > 0
        assert all(v["degraded"] for v in verdicts)


class TestAdminVerbs:
    def test_drain_of_nonexistent_shard_errors(self, tmp_path):
        async def scenario():
            async with Daemon(tmp_path) as daemon:
                admin = await AdminClient.connect(unix_path=daemon.path)
                with pytest.raises(ServeClientError, match="no live shard"):
                    await admin.drain("ghost", 0)
                await admin.close()

        asyncio.run(scenario())

    def test_restore_of_live_shard_errors(self, tmp_path):
        async def scenario():
            async with Daemon(tmp_path) as daemon:
                client = await DeviceClient.connect(
                    "dev-a", unix_path=daemon.path
                )
                await client.stream_run(make_run())
                admin = await AdminClient.connect(unix_path=daemon.path)
                snapshot = await admin.drain("dev-a", 0)
                await admin.restore(snapshot)
                with pytest.raises(ServeClientError, match="already live"):
                    await admin.restore(snapshot)
                await admin.close()
                await client.end()

        asyncio.run(scenario())

    def test_stop_last_worker_refused(self, tmp_path):
        async def scenario():
            async with Daemon(tmp_path, workers=2) as daemon:
                admin = await AdminClient.connect(unix_path=daemon.path)
                await admin.stop_worker(0)
                with pytest.raises(ServeClientError, match="last live"):
                    await admin.stop_worker(1)
                with pytest.raises(ServeClientError, match="no live worker"):
                    await admin.stop_worker(0)  # already dead
                await admin.close()

        asyncio.run(scenario())

    def test_server_side_migrate_moves_worker(self, tmp_path):
        async def scenario():
            async with Daemon(tmp_path, workers=2) as daemon:
                client = await DeviceClient.connect(
                    "dev-a", unix_path=daemon.path
                )
                await client.stream_run(make_run())
                before = daemon.router.placement[("dev-a", 0)]
                admin = await AdminClient.connect(unix_path=daemon.path)
                placed = await admin.migrate("dev-a", 0, worker=1 - before)
                await admin.close()
                await client.end()
                return before, placed, daemon.router.migrations

        before, placed, migrations = asyncio.run(scenario())
        assert placed == 1 - before
        assert migrations == 1


class TestMetricsScrape:
    async def _get(self, port, path):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        await writer.drain()
        response = await reader.read()
        writer.close()
        head, _, body = response.partition(b"\r\n\r\n")
        return head.decode("latin-1"), body.decode()

    def test_metrics_endpoint(self, tmp_path):
        async def scenario():
            async with Daemon(tmp_path, metrics=True) as daemon:
                client = await DeviceClient.connect(
                    "dev-a", unix_path=daemon.path
                )
                await client.stream_run(make_run())
                port = daemon.server.metrics_port
                ok = await self._get(port, "/metrics")
                missing = await self._get(port, "/nope")
                await client.end()
                return ok, missing

        (ok_head, ok_body), (miss_head, _) = asyncio.run(scenario())
        assert ok_head.startswith("HTTP/1.0 200")
        assert "pift_serve_shards 1" in ok_body
        assert "pift_serve_events_ingested_total" in ok_body
        assert "pift_serve_checks_answered_total" in ok_body
        assert miss_head.startswith("HTTP/1.0 404")


class TestFleetParity:
    def test_plain_fleet(self):
        report = run_fleet_sync(make_suite(), devices=3)
        assert report["parity"] is True
        assert report["runs"] == 6
        assert report["checks"] == report["verdicts"] == 6 * 2 * 2
        assert report["mismatches"] == []

    def test_coloured_fleet_carries_attribution(self):
        # Every run leaks, so whichever runs device-00 pulled off the
        # shared queue, its attribution fold has colours in it.
        suite = [
            (f"app-{i}", make_run(pids=(0, 1), rounds=4 + i))
            for i in range(6)
        ]
        report = run_fleet_sync(suite, devices=3, coloured=True)
        assert report["parity"] is True
        assert report["coloured"] is True
        attribution = {row["colour"] for row in report["attribution"]}
        assert any(c.startswith("src-") for c in attribution)

    def test_migrating_fleet_stays_byte_identical(self):
        report = run_fleet_sync(
            make_suite(8), devices=4, migrate=True, workers=2,
            capacity=64, drain_batch=8, high_watermark=48, low_watermark=8,
        )
        assert report["parity"] is True
        assert report["migration"] is not None
        assert report["migration"]["killed_worker"] == 0
        assert report["server_stats"]["migrations"] >= 2
        dead = [
            w for w in report["server_stats"]["workers"] if not w["alive"]
        ]
        assert [w["id"] for w in dead] == [0]

    def test_fleet_against_external_daemon(self, tmp_path):
        # The fleet can point at a daemon it does not own.
        async def scenario():
            async with Daemon(tmp_path) as daemon:
                return await run_fleet(
                    make_suite(4), devices=2, unix_path=daemon.path
                )

        report = asyncio.run(scenario())
        assert report["parity"] is True

    def test_fleet_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="devices"):
            run_fleet_sync(make_suite(1), devices=0)
        with pytest.raises(ValueError, match="workers"):
            run_fleet_sync(make_suite(1), migrate=True, workers=1)
        with pytest.raises(ValueError, match="at least one"):
            run_fleet_sync([], devices=2)

"""Unit tests for ``repro.store`` — the artifact store and run journal.

The properties worth pinning are the crash-safety ones: corrupt entries
are detected, quarantined, and transparently re-recorded; concurrent
writers racing on one key leave exactly one valid entry; a journal
survives a mid-grid kill and resumes bit-identically.  Synthetic
mini-suites keep everything tier-1 fast — the store never cares whether
the runs came from the real 57-app recording.
"""

import gzip
import json
import multiprocessing
import pickle
import warnings

import pytest

from repro.analysis.accuracy import AppRun
from repro.android.device import RecordedRun, SinkCheck, SourceRegistration
from repro.core import PIFTConfig
from repro.core.events import load, store
from repro.core.ranges import AddressRange
from repro.store import (
    ArtifactStore,
    JournalError,
    RunJournal,
    StoreError,
    StoreKey,
    cell_result_from_record,
    cell_result_to_record,
    cells_fingerprint,
    droidbench_key,
    dump_suite_bytes,
    lgroot_key,
    malware_key,
    new_run_id,
)
from repro.sweep import GridSpec, TraceCache, run_sweep


def tiny_run(leaks: bool, seed: int = 0) -> RecordedRun:
    """A minimal recorded execution: one source, a few events, one sink."""
    run = RecordedRun()
    base = 1000 + 16 * seed
    run.sources.append(SourceRegistration(AddressRange(base, base + 3), 0, "imei"))
    run.trace.append(load(base, base + 3, 1))
    if leaks:
        run.trace.append(store(base + 8, base + 11, 2))
    run.trace.append(store(50_000, 50_003, 3))
    run.trace.note_instruction(4)
    run.sink_checks.append(
        SinkCheck(AddressRange(base + 8, base + 11), 4, "network", "socket")
    )
    return run


def tiny_suite(count: int = 3):
    return [
        AppRun(name=f"app{i}", recorded=tiny_run(leaks=i % 2 == 0, seed=i),
               leaks=i % 2 == 0)
        for i in range(count)
    ]


def tiny_cells(n: int = 4):
    return list(
        GridSpec(window_sizes=(5, 13), propagation_caps=(2, 3), seed=1).cells()
    )[:n]


TEST_KEY = StoreKey(kind="test", inputs=(("apps", ("a", "b")), ("work", 4)))


class TestStoreKey:
    def test_digest_is_stable(self):
        assert TEST_KEY.digest == StoreKey(
            kind="test", inputs=(("apps", ("a", "b")), ("work", 4))
        ).digest

    def test_any_input_change_changes_digest(self):
        variants = [
            StoreKey(kind="other", inputs=TEST_KEY.inputs),
            StoreKey(kind="test", inputs=(("apps", ("a", "c")), ("work", 4))),
            StoreKey(kind="test", inputs=(("apps", ("a", "b")), ("work", 5))),
        ]
        digests = {TEST_KEY.digest} | {k.digest for k in variants}
        assert len(digests) == 4

    def test_builtin_keys_are_distinct(self):
        digests = {
            droidbench_key().digest,
            malware_key(16).digest,
            malware_key(32).digest,
            lgroot_key(16).digest,
        }
        assert len(digests) == 4


class TestPutGet:
    def test_roundtrip_preserves_bytes(self, tmp_path):
        art = ArtifactStore(tmp_path / "store")
        suite = tiny_suite()
        digest = art.put_runs(TEST_KEY, suite)
        assert art.has(TEST_KEY)
        loaded = art.get_runs(TEST_KEY)
        assert dump_suite_bytes(loaded) == dump_suite_bytes(suite)
        assert [app.name for app in loaded] == [app.name for app in suite]
        assert [app.leaks for app in loaded] == [app.leaks for app in suite]
        assert (art.writes, art.hits, art.misses) == (1, 1, 0)
        assert digest == TEST_KEY.digest

    def test_miss_on_absent_entry(self, tmp_path):
        art = ArtifactStore(tmp_path / "store")
        assert art.get_runs(TEST_KEY) is None
        assert not art.has(TEST_KEY)
        assert art.misses == 1

    def test_read_only_store_never_writes(self, tmp_path):
        root = tmp_path / "store"
        ArtifactStore(root).put_runs(TEST_KEY, tiny_suite())
        reader = ArtifactStore(root, read_only=True)
        assert reader.get_runs(TEST_KEY) is not None
        with pytest.raises(StoreError):
            reader.put_runs(TEST_KEY, tiny_suite())
        with pytest.raises(StoreError):
            reader.prune()

    def test_read_only_store_on_missing_root_reads_as_empty(self, tmp_path):
        reader = ArtifactStore(tmp_path / "absent", read_only=True)
        assert reader.get_runs(TEST_KEY) is None
        assert not (tmp_path / "absent").exists()  # reads never create it

    def test_bad_run_ids_rejected(self, tmp_path):
        art = ArtifactStore(tmp_path / "store")
        for bad in ("", "a/b", ".hidden", "../escape"):
            with pytest.raises(StoreError):
                art.journal_path(bad)


def _entry_files(art: ArtifactStore, key: StoreKey):
    digest = key.digest
    shard = art.objects_dir / digest[:2]
    return shard / f"{digest}.suite.gz", shard / f"{digest}.meta.json"


class TestCorruption:
    def test_bit_flip_detected_and_quarantined(self, tmp_path):
        art = ArtifactStore(tmp_path / "store")
        art.put_runs(TEST_KEY, tiny_suite())
        payload_path, _ = _entry_files(art, TEST_KEY)
        blob = bytearray(payload_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        payload_path.write_bytes(bytes(blob))

        assert art.get_runs(TEST_KEY) is None
        assert art.corruptions == 1
        assert not art.has(TEST_KEY)  # both files moved aside
        assert len(list(art.quarantine_dir.iterdir())) == 2

    def test_truncation_detected_and_quarantined(self, tmp_path):
        art = ArtifactStore(tmp_path / "store")
        art.put_runs(TEST_KEY, tiny_suite())
        payload_path, _ = _entry_files(art, TEST_KEY)
        payload_path.write_bytes(payload_path.read_bytes()[:10])
        assert art.get_runs(TEST_KEY) is None
        assert art.corruptions == 1
        assert not art.has(TEST_KEY)

    def test_valid_gzip_wrong_schema_is_corruption(self, tmp_path):
        """An entry that unzips but doesn't decode is quarantined too —
        the checksum can't catch a foreign tool writing its own bytes."""
        art = ArtifactStore(tmp_path / "store")
        art.put_runs(TEST_KEY, tiny_suite())
        payload_path, meta_path = _entry_files(art, TEST_KEY)
        bogus = gzip.compress(b'{"not": "a suite"}', mtime=0)
        payload_path.write_bytes(bogus)
        meta = json.loads(meta_path.read_text())
        import hashlib

        meta["sha256"] = hashlib.sha256(bogus).hexdigest()
        meta_path.write_text(json.dumps(meta))
        assert art.get_runs(TEST_KEY) is None
        assert art.corruptions == 1

    def test_missing_meta_is_a_plain_miss(self, tmp_path):
        art = ArtifactStore(tmp_path / "store")
        art.put_runs(TEST_KEY, tiny_suite())
        _, meta_path = _entry_files(art, TEST_KEY)
        meta_path.unlink()
        assert art.get_runs(TEST_KEY) is None
        assert art.corruptions == 0  # payload-without-meta = uncommitted

    def test_verify_reports_and_quarantines(self, tmp_path):
        art = ArtifactStore(tmp_path / "store")
        good = StoreKey(kind="good", inputs=())
        art.put_runs(good, tiny_suite(1))
        art.put_runs(TEST_KEY, tiny_suite())
        payload_path, _ = _entry_files(art, TEST_KEY)
        payload_path.write_bytes(b"garbage")
        report = art.verify()
        assert report["checked"] == 2
        assert report["corrupt"] == 1
        assert report["digests"] == [TEST_KEY.digest]
        assert report["quarantined"] == 2  # payload + meta moved aside
        assert art.get_runs(good) is not None
        # A clean follow-up pass still flags the unresolved quarantine.
        followup = art.verify()
        assert followup["corrupt"] == 0
        assert followup["quarantined"] == 2


class TestCacheIntegration:
    @pytest.fixture
    def recorded_by_patch(self, monkeypatch):
        """Route the cache's droidbench recording to a tiny suite."""
        calls = []

        def fake_record_suite():
            calls.append(1)
            return tiny_suite()

        import repro.apps.droidbench

        monkeypatch.setattr(
            repro.apps.droidbench, "record_suite", fake_record_suite
        )
        return calls

    def test_record_once_ever(self, tmp_path, recorded_by_patch):
        """The acceptance criterion: the second cache performs ZERO
        recordings — the suite comes back from the store by digest."""
        root = tmp_path / "store"
        first = TraceCache(backing_store=ArtifactStore(root))
        first.droidbench_runs()
        assert (first.recordings, first.store_hits) == (1, 0)

        second = TraceCache(backing_store=ArtifactStore(root))
        runs = second.droidbench_runs()
        assert (second.recordings, second.store_hits) == (0, 1)
        assert dump_suite_bytes(runs) == dump_suite_bytes(tiny_suite())
        assert recorded_by_patch == [1]

    def test_corrupt_entry_transparently_re_records(self, tmp_path,
                                                    recorded_by_patch):
        root = tmp_path / "store"
        art = ArtifactStore(root)
        TraceCache(backing_store=art).droidbench_runs()
        payload_path, _ = _entry_files(art, droidbench_key())
        payload_path.write_bytes(b"bit rot")

        cache = TraceCache(backing_store=ArtifactStore(root))
        runs = cache.droidbench_runs()
        assert cache.recordings == 1  # fell back to recording...
        assert len(runs) == 3
        assert recorded_by_patch == [1, 1]
        # ...and healed the store for the next reader.
        healed = TraceCache(backing_store=ArtifactStore(root))
        healed.droidbench_runs()
        assert (healed.recordings, healed.store_hits) == (0, 1)

    def test_explicit_runs_bypass_the_store(self, tmp_path):
        art = ArtifactStore(tmp_path / "store")
        cache = TraceCache(droidbench=tiny_suite(2), backing_store=art)
        assert len(cache.droidbench_runs()) == 2
        assert art.writes == 0  # a subset must never claim the suite key
        assert cache.payload()["droidbench"].keys() == {"runs"}

    def test_digest_payload_roundtrip(self, tmp_path, recorded_by_patch):
        root = tmp_path / "store"
        parent = TraceCache(backing_store=ArtifactStore(root))
        parent.droidbench_runs()
        payload = parent.payload()
        assert payload["droidbench"] == {"digest": droidbench_key().digest}

        worker = TraceCache.from_payload(pickle.loads(pickle.dumps(payload)))
        assert worker.backing_store.read_only
        runs = worker.droidbench_runs()
        assert dump_suite_bytes(runs) == dump_suite_bytes(tiny_suite())
        assert worker.recordings == 0
        # The digest payload is tiny compared to shipping the suite.
        by_value = len(pickle.dumps(TraceCache(droidbench=tiny_suite()).payload()))
        assert len(pickle.dumps(payload)) < by_value


def _racing_writer(root: str, rounds: int) -> None:
    art = ArtifactStore(root)
    suite = tiny_suite()
    for _ in range(rounds):
        art.put_runs(TEST_KEY, suite)


class TestConcurrentWriters:
    def test_exactly_one_valid_entry_survives(self, tmp_path):
        root = tmp_path / "store"
        context = multiprocessing.get_context("fork")
        writers = [
            context.Process(target=_racing_writer, args=(str(root), 25))
            for _ in range(2)
        ]
        for p in writers:
            p.start()
        for p in writers:
            p.join(timeout=60)
            assert p.exitcode == 0

        art = ArtifactStore(root)
        payloads = list(art.objects_dir.glob("*/*.suite.gz"))
        metas = list(art.objects_dir.glob("*/*.meta.json"))
        assert len(payloads) == 1 and len(metas) == 1
        report = art.verify()
        assert (report["checked"], report["corrupt"]) == (1, 0)
        assert dump_suite_bytes(art.get_runs(TEST_KEY)) == dump_suite_bytes(
            tiny_suite()
        )


class TestJournal:
    def _results(self, cells=None):
        cache = TraceCache(droidbench=tiny_suite())
        return run_sweep(cells or tiny_cells(), cache=cache).cells

    def test_roundtrip(self, tmp_path):
        cells = tiny_cells()
        results = self._results(cells)
        journal = RunJournal.create(tmp_path / "run.jsonl", cells, "run-000")
        for result in results:
            journal.append(result)

        loaded = RunJournal.load(tmp_path / "run.jsonl")
        assert loaded.run_id == "run-000"
        assert loaded.fingerprint == cells_fingerprint(cells)
        assert loaded.total_cells == len(cells)
        rebuilt = loaded.completed_results()
        assert sorted(rebuilt) == [c.index for c in cells]
        for result in results:
            assert rebuilt[result.index].as_dict() == result.as_dict()
            assert rebuilt[result.index].duration_seconds == (
                result.duration_seconds
            )

    def test_record_keys_are_frozen(self):
        """The journal line format other tooling greps (schema freeze)."""
        result = self._results(tiny_cells(1))[0]
        record = cell_result_to_record(result)
        assert set(record) == {
            "type", "index", "cell", "duration_seconds", "worker",
        }
        assert record["type"] == "cell"
        assert cell_result_from_record(record).as_dict() == result.as_dict()

    def test_header_keys_are_frozen(self, tmp_path):
        cells = tiny_cells(2)
        RunJournal.create(tmp_path / "run.jsonl", cells, "run-000")
        header = json.loads(
            (tmp_path / "run.jsonl").read_text().splitlines()[0]
        )
        assert set(header) == {
            "type", "journal_version", "run_id", "fingerprint", "cells",
        }
        assert header["type"] == "header"
        assert header["cells"] == 2

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        cells = tiny_cells(2)
        results = self._results(cells)
        journal = RunJournal.create(tmp_path / "run.jsonl", cells, "run-000")
        journal.append(results[0])
        with open(tmp_path / "run.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"type": "cell", "index": 1, "cel')  # kill mid-append

        with pytest.warns(RuntimeWarning):
            loaded = RunJournal.load(tmp_path / "run.jsonl")
        assert sorted(loaded.completed) == [results[0].index]

    def test_torn_line_is_truncated_warned_and_appendable(self, tmp_path):
        """Regression: the fragment must be truncated away, not merely
        skipped — a later append would otherwise weld onto the torn
        bytes, corrupting the *middle* of the file for the next load."""
        cells = tiny_cells(2)
        results = self._results(cells)
        journal = RunJournal.create(tmp_path / "run.jsonl", cells, "run-000")
        journal.append(results[0])
        clean_size = (tmp_path / "run.jsonl").stat().st_size
        with open(tmp_path / "run.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"type": "cell", "index": 1, "cel')  # kill mid-append

        with pytest.warns(RuntimeWarning, match="torn trailing record"):
            loaded = RunJournal.load(tmp_path / "run.jsonl")
        assert (tmp_path / "run.jsonl").stat().st_size == clean_size

        loaded.append(results[1])
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second load must be clean
            healed = RunJournal.load(tmp_path / "run.jsonl")
        assert sorted(healed.completed) == [r.index for r in results]

    def test_attempt_and_poison_records_roundtrip(self, tmp_path):
        cells = tiny_cells(2)
        results = self._results(cells)
        journal = RunJournal.create(tmp_path / "run.jsonl", cells, "run-000")
        journal.append(results[0])
        journal.append_attempt(1, attempt=1, reason="lost")
        journal.append_attempt(1, attempt=2, reason="error: boom")
        journal.append_poison(1, attempts=3, error="boom")

        loaded = RunJournal.load(tmp_path / "run.jsonl")
        assert sorted(loaded.completed) == [0]
        assert [r["attempt"] for r in loaded.attempts[1]] == [1, 2]
        assert loaded.poison_rows() == [
            {"index": 1, "attempts": 3, "error": "boom"}
        ]

        # Completed wins: a later success for the cell cures the poison,
        # both live and across a reload.
        loaded.append(results[1])
        assert loaded.poisoned == {}
        assert RunJournal.load(tmp_path / "run.jsonl").poisoned == {}

    def test_mid_file_corruption_raises(self, tmp_path):
        cells = tiny_cells(2)
        results = self._results(cells)
        journal = RunJournal.create(tmp_path / "run.jsonl", cells, "run-000")
        lines = (tmp_path / "run.jsonl").read_text().splitlines()
        body = "\n".join([lines[0], "NOT JSON"]) + "\n"
        (tmp_path / "run.jsonl").write_text(body)
        with open(tmp_path / "run.jsonl", "a", encoding="utf-8") as fh:
            for result in results:
                fh.write(json.dumps(cell_result_to_record(result)) + "\n")
        with pytest.raises(JournalError, match="corrupt at line 2"):
            RunJournal.load(tmp_path / "run.jsonl")

    def test_missing_header_raises(self, tmp_path):
        (tmp_path / "run.jsonl").write_text('{"type": "cell", "index": 0}\n')
        with pytest.raises(JournalError, match="no header"):
            RunJournal.load(tmp_path / "run.jsonl")

    def test_version_mismatch_raises(self, tmp_path):
        (tmp_path / "run.jsonl").write_text(
            '{"type": "header", "journal_version": 99, '
            '"fingerprint": "x", "cells": 0}\n'
        )
        with pytest.raises(JournalError, match="version"):
            RunJournal.load(tmp_path / "run.jsonl")

    def test_create_refuses_existing_path(self, tmp_path):
        RunJournal.create(tmp_path / "run.jsonl", tiny_cells(1), "a")
        with pytest.raises(JournalError, match="already exists"):
            RunJournal.create(tmp_path / "run.jsonl", tiny_cells(1), "b")

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        journal = RunJournal.create(
            tmp_path / "run.jsonl", tiny_cells(4), "run-000"
        )
        other = list(
            GridSpec(window_sizes=(20,), propagation_caps=(6,), seed=2).cells()
        )
        with pytest.raises(JournalError, match="different grid"):
            journal.check_matches(other)

    def test_new_run_id_sequences(self):
        fp = "abcdef012345"
        first = new_run_id(fp, [])
        assert first == "abcdef0123-000"
        assert new_run_id(fp, [first]) == "abcdef0123-001"
        assert new_run_id(fp, [first, "abcdef0123-001"]) == "abcdef0123-002"


class TestResume:
    def test_partial_journal_resumes_bit_identically(self, tmp_path):
        """Simulated kill: journal holds half the grid; the resumed run
        must splice those cells back and match an uninterrupted run."""
        cells = tiny_cells(4)
        suite = tiny_suite()
        reference = run_sweep(cells, cache=TraceCache(droidbench=suite))

        journal = RunJournal.create(tmp_path / "run.jsonl", cells, "run-000")
        for result in reference.cells[:2]:  # checkpointed before the kill
            journal.append(result)

        resumed_journal = RunJournal.load(tmp_path / "run.jsonl")
        resumed = run_sweep(
            cells,
            cache=TraceCache(droidbench=suite),
            journal=resumed_journal,
        )
        assert resumed.resumed == 2
        assert json.dumps(
            [c.as_dict() for c in resumed.cells], sort_keys=True
        ) == json.dumps(
            [c.as_dict() for c in reference.cells], sort_keys=True
        )
        # The finished run's journal now holds the whole grid...
        assert sorted(resumed_journal.completed) == [c.index for c in cells]
        # ...so resuming again evaluates nothing and still matches.
        rerun = run_sweep(
            cells,
            cache=TraceCache(droidbench=suite),
            journal=RunJournal.load(tmp_path / "run.jsonl"),
        )
        assert rerun.resumed == len(cells)
        assert json.dumps(
            [c.as_dict() for c in rerun.cells], sort_keys=True
        ) == json.dumps(
            [c.as_dict() for c in reference.cells], sort_keys=True
        )

    def test_fully_journaled_grid_records_nothing(self, tmp_path):
        cells = tiny_cells(2)
        suite = tiny_suite()
        journal = RunJournal.create(tmp_path / "run.jsonl", cells, "run-000")
        for result in run_sweep(cells, cache=TraceCache(droidbench=suite)).cells:
            journal.append(result)

        cache = TraceCache()  # would record the real suite if primed
        result = run_sweep(cells, cache=cache,
                           journal=RunJournal.load(tmp_path / "run.jsonl"))
        assert cache.recordings == 0
        assert result.resumed == len(cells)

    def test_duplicate_cell_indexes_rejected(self):
        cell = tiny_cells(1)[0]
        with pytest.raises(ValueError, match="unique"):
            run_sweep([cell, cell], cache=TraceCache(droidbench=tiny_suite()))


class TestMaintenance:
    def test_stats_schema(self, tmp_path):
        art = ArtifactStore(tmp_path / "store")
        art.put_runs(TEST_KEY, tiny_suite())
        art.put_runs(malware_key(8), tiny_suite(1))
        RunJournal.create(art.journal_path("run-000"), tiny_cells(1), "run-000")
        stats = art.stats()
        assert set(stats) == {
            "root", "store_version", "entries", "payload_bytes", "kinds",
            "quarantined", "journals", "counters",
        }
        assert stats["entries"] == 2
        assert set(stats["kinds"]) == {"test", "malware"}
        assert stats["journals"] == ["run-000"]
        assert stats["payload_bytes"] > 0
        assert set(stats["counters"]) == {
            "hits", "misses", "writes", "corruptions",
        }

    def test_prune_clears_quarantine(self, tmp_path):
        art = ArtifactStore(tmp_path / "store")
        art.put_runs(TEST_KEY, tiny_suite())
        payload_path, _ = _entry_files(art, TEST_KEY)
        payload_path.write_bytes(b"junk")
        art.get_runs(TEST_KEY)  # quarantines both files
        assert art.stats()["quarantined"] == 2
        report = art.prune()
        assert report["quarantine_files_removed"] == 2
        assert art.stats()["quarantined"] == 0

    def test_prune_max_bytes_drops_oldest_first(self, tmp_path):
        art = ArtifactStore(tmp_path / "store")
        old = StoreKey(kind="old", inputs=())
        new = StoreKey(kind="new", inputs=())
        art.put_runs(old, tiny_suite())
        payload_path, meta_path = _entry_files(art, old)
        meta = json.loads(meta_path.read_text())
        meta["created"] -= 3600  # age the first entry
        meta_path.write_text(json.dumps(meta))
        art.put_runs(new, tiny_suite(2))

        report = art.prune(max_bytes=art.stats()["payload_bytes"] - 1)
        assert report["removed_entries"] == 1
        assert not art.has(old)
        assert art.has(new)

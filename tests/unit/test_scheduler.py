"""Unit tests for the PIFT-aware instruction scheduler (paper §7)."""

import pytest

from repro.isa import asm
from repro.isa.cpu import CPU
from repro.isa.scheduler import (
    effects_of,
    load_store_distances,
    tighten_load_store,
)


def run_program(instructions, setup=None):
    """Execute and return (registers snapshot, memory probe function)."""
    cpu = CPU()
    if setup:
        setup(cpu)
    cpu.run(instructions)
    return cpu


def evasion_program(dummy_count):
    """The §4.2 attack: tainted load, dummy block, then the real store."""
    program = [asm.ldrh("r0", "r1")]
    program += [asm.add("r2", "r2", 1) for _ in range(dummy_count)]
    program += [asm.strh("r0", "r3")]
    return program


class TestSemanticsPreserved:
    def test_evasion_program_same_result(self):
        program = evasion_program(30)

        def setup(cpu):
            cpu.registers["r1"] = 0x1000
            cpu.registers["r3"] = 0x2000
            cpu.address_space.memory.write_u16(0x1000, 0xBEEF)

        original = run_program(program, setup)
        scheduled = run_program(tighten_load_store(program), setup)
        assert (
            scheduled.address_space.memory.read_u16(0x2000)
            == original.address_space.memory.read_u16(0x2000)
            == 0xBEEF
        )
        assert scheduled.registers.snapshot() == original.registers.snapshot()

    def test_dependent_chain_not_reordered(self):
        # r0 derives from the load; everything in its chain must stay put.
        program = [
            asm.ldr("r0", "r1"),
            asm.add("r0", "r0", 1),
            asm.eor("r0", "r0", 0x5A),
            asm.str_("r0", "r3"),
        ]

        def setup(cpu):
            cpu.registers["r1"] = 0x1000
            cpu.registers["r3"] = 0x2000
            cpu.address_space.memory.write_u32(0x1000, 100)

        original = run_program(program, setup)
        scheduled = run_program(tighten_load_store(program), setup)
        assert (
            scheduled.address_space.memory.read_u32(0x2000)
            == original.address_space.memory.read_u32(0x2000)
            == (101 ^ 0x5A)
        )

    def test_memory_operations_keep_order(self):
        # Two stores to the same address must not swap (no alias analysis).
        program = [
            asm.mov("r0", 1),
            asm.str_("r0", "r3"),
            asm.mov("r0", 2),
            asm.str_("r0", "r3"),
        ]

        def setup(cpu):
            cpu.registers["r3"] = 0x2000

        scheduled = run_program(tighten_load_store(program), setup)
        assert scheduled.address_space.memory.read_u32(0x2000) == 2

    def test_flag_dependencies_respected(self):
        program = [
            asm.mov("r0", 0xFFFFFFFF),
            asm.adds("r0", "r0", 1),  # sets carry
            asm.adc("r1", "r1", 0),  # consumes carry
            asm.str_("r1", "r3"),
        ]

        def setup(cpu):
            cpu.registers["r3"] = 0x2000

        scheduled = run_program(tighten_load_store(program), setup)
        assert scheduled.address_space.memory.read_u32(0x2000) == 1

    def test_branches_fence_blocks(self):
        program = [
            asm.ldr("r0", "r1"),
            asm.b("somewhere"),
            asm.str_("r0", "r3"),
        ]
        scheduled = tighten_load_store(program)
        kinds = [type(i).__name__ for i in scheduled]
        assert kinds == ["Load", "Branch", "Store"]


class TestDistanceTightening:
    def test_evasion_distance_collapses(self):
        program = evasion_program(50)
        assert load_store_distances(program) == [51]
        scheduled = tighten_load_store(program)
        (distance,) = load_store_distances(scheduled)
        assert distance == 1  # the store now directly follows its load

    def test_dependent_work_bounds_distance(self):
        # Three dependent ops between load and store, plus 40 dummies: the
        # dummies leave, the three stay.
        program = [asm.ldr("r0", "r1")]
        program += [asm.add("r2", "r2", 1)] * 40
        program += [
            asm.add("r0", "r0", 1),
            asm.eor("r0", "r0", 7),
            asm.mul("r0", "r0", "r0"),
            asm.str_("r0", "r3"),
        ]
        scheduled = tighten_load_store(program)
        (distance,) = load_store_distances(scheduled)
        assert distance == 4

    def test_already_tight_code_unchanged_distance(self):
        program = [
            asm.ldrh("r6", "r1"),
            asm.adds("r3", "r3", 1),
            asm.strh("r6", "r0"),
        ]
        scheduled = tighten_load_store(program)
        assert load_store_distances(scheduled)[0] <= 2

    def test_pift_catches_scheduled_evasion(self):
        """End to end: PIFT misses the raw evasion, catches the scheduled
        version — the paper's proposed compiler countermeasure works."""
        from repro.core import MemoryAccess, PIFTConfig, PIFTTracker
        from repro.core.ranges import AddressRange

        def run_with_pift(program):
            cpu = CPU()
            tracker = PIFTTracker(PIFTConfig(13, 3))
            tracker.taint_source(AddressRange(0x1000, 0x1001))
            cpu.add_observer(
                lambda record, index, pid: tracker.observe(
                    MemoryAccess(record.kind, record.address_range, index, pid)
                )
                if record.is_memory
                else None
            )
            cpu.registers["r1"] = 0x1000
            cpu.registers["r3"] = 0x2000
            cpu.run(program)
            return tracker.check(AddressRange(0x2000, 0x2001))

        program = evasion_program(50)
        assert not run_with_pift(program)  # §4.2: evasion succeeds
        assert run_with_pift(tighten_load_store(program))  # §7: and is fixed


class TestEffects:
    def test_load_effects(self):
        eff = effects_of(asm.ldr("r0", "r1", 4))
        assert 1 in eff.reads and 0 in eff.writes and eff.is_memory

    def test_store_effects(self):
        eff = effects_of(asm.str_("r0", "r1"))
        assert {0, 1} <= set(eff.reads) and eff.is_memory

    def test_writeback_adds_base_write(self):
        eff = effects_of(asm.ldrh("r7", "r4", 2, wb=True))
        assert 4 in eff.writes

    def test_cmp_writes_flags(self):
        eff = effects_of(asm.cmp("r0", 1))
        assert eff.writes_flags and not eff.writes

    def test_patch_effects(self):
        eff = effects_of(asm.patch("r0", 7, reads=("r1",)))
        assert 1 in eff.reads and 0 in eff.writes

    def test_multiple_effects(self):
        eff = effects_of(asm.ldmia("sp", ["r0", "r1"]))
        assert {0, 1, 13} <= set(eff.writes)
        eff = effects_of(asm.stmdb("sp", ["r0", "r1"]))
        assert {0, 1, 13} <= set(eff.reads)

"""Tests for repro.sweep.leases and repro.sweep.chaos: the pure
bookkeeping under the fault-tolerant queue backend, driven by a fake
clock — no processes, no sleeping."""

import pytest

from repro.sweep import BackoffPolicy, ChaosError, ChaosPlan, LeaseSupervisor
from repro.sweep.leases import PoisonedCell
from repro.sweep.specs import GridSpec


def cells(n=4):
    spec = GridSpec(window_sizes=tuple(range(1, n + 1)),
                    propagation_caps=(1,), rates=(0.0,))
    return list(spec.cells())[:n]


def supervisor(n=4, lease_timeout=10.0, max_retries=2, **kwargs):
    return LeaseSupervisor(
        cells(n), lease_timeout=lease_timeout, max_retries=max_retries,
        backoff=kwargs.pop("backoff", BackoffPolicy(jitter=0.0)),
        **kwargs,
    )


class TestBackoffPolicy:
    def test_first_attempt_is_immediate(self):
        policy = BackoffPolicy(base=0.1, jitter=0.0)
        assert policy.delay(0, 1) == 0.0

    def test_delays_grow_exponentially_to_the_cap(self):
        policy = BackoffPolicy(base=0.1, multiplier=2.0, cap=0.5, jitter=0.0)
        assert [policy.delay(0, n) for n in (2, 3, 4, 5, 6)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.5, 0.5]
        )

    def test_jitter_is_deterministic_and_bounded(self):
        policy = BackoffPolicy(base=1.0, jitter=0.5, seed=7)
        draws = [policy.delay(cell, 3) for cell in range(50)]
        assert draws == [policy.delay(cell, 3) for cell in range(50)]
        assert all(1.0 <= d <= 3.0 for d in draws)  # 2.0 +/- 50%
        assert len(set(draws)) > 1  # decorrelated across cells

    def test_seed_changes_the_schedule(self):
        a = BackoffPolicy(base=1.0, jitter=0.5, seed=1)
        b = BackoffPolicy(base=1.0, jitter=0.5, seed=2)
        assert [a.delay(c, 2) for c in range(8)] != [
            b.delay(c, 2) for c in range(8)
        ]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=-1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=2.0)


class TestLeaseSupervisor:
    def test_happy_path_grants_in_index_order_and_completes(self):
        sup = supervisor(n=3)
        granted = []
        while True:
            cell = sup.next_ready(0.0)
            if cell is None:
                break
            sup.grant(cell.index, worker=1, now=0.0)
            granted.append(cell.index)
        assert granted == [0, 1, 2]
        for index in granted:
            assert sup.complete(index)
        assert sup.done() and sup.outstanding() == 0

    def test_double_grant_is_rejected(self):
        sup = supervisor()
        sup.grant(0, worker=1, now=0.0)
        with pytest.raises(ValueError, match="already leased"):
            sup.grant(0, worker=2, now=0.0)

    def test_heartbeat_renews_and_expiry_fires_without_it(self):
        sup = supervisor(lease_timeout=10.0)
        sup.grant(0, worker=1, now=0.0)
        sup.grant(1, worker=2, now=0.0)
        assert sup.heartbeat(1, now=8.0) == 1
        expired = sup.expired_leases(now=12.0)
        assert [lease.cell_index for lease in expired] == [1]
        assert sup.renewals == 1

    def test_worker_lost_requeues_with_backoff(self):
        sup = supervisor(n=1, backoff=BackoffPolicy(base=2.0, jitter=0.0))
        sup.grant(0, worker=1, now=0.0)
        outcomes = sup.worker_lost(1, now=5.0)
        assert outcomes == [None]  # requeued, not poisoned
        assert sup.retries == 1
        assert sup.next_ready(5.0) is None  # held back by backoff
        assert sup.next_ready_at() == pytest.approx(7.0)
        cell = sup.next_ready(7.5)
        assert cell is not None and cell.index == 0
        lease = sup.grant(0, worker=3, now=7.5)
        assert lease.attempt == 2

    def test_retry_budget_exhaustion_poisons(self):
        sup = supervisor(max_retries=1)
        for attempt in (1, 2):
            sup.grant(0, worker=attempt, now=float(attempt))
            outcomes = sup.worker_lost(attempt, now=float(attempt))
        (poisoned,) = outcomes
        assert isinstance(poisoned, PoisonedCell)
        assert poisoned.cell_index == 0 and poisoned.attempts == 2
        assert poisoned.history == ["lost", "lost"]
        assert 0 in sup.poisoned
        assert sup.outstanding() == len(sup.cells) - 1
        # A poisoned cell never comes back out of the ready queue.
        seen = set()
        while True:
            cell = sup.next_ready(100.0)
            if cell is None:
                break
            seen.add(cell.index)
            sup.grant(cell.index, worker=9, now=100.0)
        assert 0 not in seen

    def test_fail_records_the_error_on_the_poison(self):
        sup = supervisor(max_retries=0)
        sup.grant(2, worker=1, now=0.0)
        poisoned = sup.fail(2, now=0.0, error="ValueError: boom")
        assert isinstance(poisoned, PoisonedCell)
        assert poisoned.error == "ValueError: boom"
        assert poisoned.as_dict() == {
            "index": 2, "attempts": 1, "error": "ValueError: boom",
        }

    def test_straggler_result_unpoisons(self):
        sup = supervisor(max_retries=0)
        sup.grant(0, worker=1, now=0.0)
        sup.worker_lost(1, now=0.0)
        assert 0 in sup.poisoned
        # The "dead" worker's result arrives anyway: prefer the value.
        assert sup.complete(0)
        assert 0 not in sup.poisoned
        assert not sup.complete(0)  # duplicate is ignored

    def test_completed_cell_ignores_late_failures(self):
        sup = supervisor()
        sup.grant(0, worker=1, now=0.0)
        sup.complete(0)
        assert sup.worker_lost(1, now=0.0) == []
        assert sup.fail(0, now=0.0, error="late") is None
        assert sup.retries == 0

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            supervisor(lease_timeout=0.0)
        with pytest.raises(ValueError):
            supervisor(max_retries=-1)


class TestChaosPlan:
    def test_parse_combined_spec(self):
        plan = ChaosPlan.parse("kill-workers:0.2,fail-cells:1", seed=7)
        assert plan.kill_rate == 0.2
        assert plan.fail_rate == 1.0
        assert plan.hang_rate == 0.0
        assert plan.seed == 7 and plan.enabled

    def test_parse_empty_spec_is_disabled(self):
        assert not ChaosPlan.parse(None).enabled
        assert not ChaosPlan.parse("").enabled
        assert ChaosPlan.from_payload(None) is None
        assert ChaosPlan.from_payload(ChaosPlan.parse("").as_payload()) is None

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(ChaosError, match="unknown chaos mode"):
            ChaosPlan.parse("explode-everything:1")
        with pytest.raises(ChaosError, match="bad chaos rate"):
            ChaosPlan.parse("kill-workers:lots")
        with pytest.raises(ChaosError, match="in \\[0, 1\\]"):
            ChaosPlan.parse("kill-workers:1.5")

    def test_decisions_are_deterministic_and_rate_shaped(self):
        plan = ChaosPlan.parse("kill-workers:0.2", seed=7)
        fates = [plan.decision(cell, 1) for cell in range(500)]
        assert fates == [plan.decision(cell, 1) for cell in range(500)]
        kills = sum(1 for fate in fates if fate == "kill")
        assert 50 <= kills <= 150  # ~20% of 500
        # Retried attempts draw independently: a killed attempt's retry
        # usually survives, so grids complete under partial mortality.
        retried = [plan.decision(cell, 2)
                   for cell, fate in enumerate(fates) if fate == "kill"]
        assert any(fate is None for fate in retried)

    def test_deadlier_mode_wins(self):
        plan = ChaosPlan.parse(
            "kill-workers:1,hang-workers:1,fail-cells:1", seed=1
        )
        assert plan.decision(0, 1) == "kill"

    def test_payload_roundtrip(self):
        plan = ChaosPlan.parse("hang-workers:0.3", seed=9)
        assert ChaosPlan.from_payload(plan.as_payload()) == plan

"""Unit tests for the vectorised columnar kernel and its dispatch gates.

The property suite (``tests/property/test_batch_parity.py``) proves
observational equivalence on random streams; these tests pin the
*mechanics* — dispatcher gating, column/interval mirror caching, block
adaptation, and the dense-trace bail-out — with deterministic traces.
"""

import pytest

from repro.core import vectorized
from repro.core.config import PIFTConfig
from repro.core.events import ColumnArrays, EventColumns, load, store
from repro.core.ranges import AddressRange, RangeSet
from repro.core.taint_storage import paper_default_storage
from repro.core.tracker import _VECTORIZED_MIN_EVENTS, PIFTTracker

SOURCE = AddressRange(0, 15)


def untainted_stream(count, start_index=0, pid=0):
    """Loads/stores far away from SOURCE: every event is irrelevant."""
    out = []
    for i in range(count):
        base = 10_000 + 16 * i
        maker = load if i % 2 == 0 else store
        out.append(maker(base, base + 3, start_index + i, pid))
    return out


def tainting_stream(count, start_index=0, pid=0):
    """Every load hits SOURCE: maximally relevant (dense) trace."""
    out = []
    for i in range(count):
        maker = load if i % 2 == 0 else store
        out.append(maker(0, 3, start_index + i, pid))
    return out


def churn_stream(count, start_index=0, pid=0):
    """Taint/untaint churn: every store is a content mutation.

    With ``window_size=50, max_propagations=1``: each triple is a hit
    load (reopens the window), a store tainting a fresh disjoint range
    (cap reached), then a store over the previous triple's range — past
    the cap and overlapping, so it untaints.  The dense executor's
    mutation budget trips immediately, forcing the density bail-out.
    """
    out = []
    for i in range(count):
        k = start_index + i
        phase = i % 3
        if phase == 0:
            out.append(load(0, 3, k, pid))
        elif phase == 1:
            base = 20_000 + i * 8
            out.append(store(base, base + 3, k, pid))
        else:
            base = 20_000 + (i - 1) * 8
            out.append(store(base, base + 3, k, pid))
    return out


def make_tracker(vectorized_on=True, **kwargs):
    tracker = PIFTTracker(PIFTConfig(vectorized=vectorized_on), **kwargs)
    tracker.taint_source(SOURCE)
    return tracker


class TestDispatch:
    def test_long_rangeset_slice_uses_kernel(self, monkeypatch):
        calls = []
        real = vectorized.observe_columns
        monkeypatch.setattr(
            vectorized,
            "observe_columns",
            lambda *a: calls.append(a) or real(*a),
        )
        tracker = make_tracker()
        tracker.observe_columns(
            EventColumns.from_events(
                untainted_stream(_VECTORIZED_MIN_EVENTS)
            )
        )
        assert len(calls) == 1

    def test_short_slice_stays_scalar(self, monkeypatch):
        monkeypatch.setattr(
            vectorized,
            "observe_columns",
            lambda *a: pytest.fail("kernel used on short slice"),
        )
        tracker = make_tracker()
        tracker.observe_columns(
            EventColumns.from_events(
                untainted_stream(_VECTORIZED_MIN_EVENTS - 1)
            )
        )
        assert tracker.stats.loads_observed > 0

    def test_config_off_stays_scalar(self, monkeypatch):
        monkeypatch.setattr(
            vectorized,
            "observe_columns",
            lambda *a: pytest.fail("kernel used with vectorized=False"),
        )
        tracker = make_tracker(vectorized_on=False)
        tracker.observe_columns(
            EventColumns.from_events(
                untainted_stream(_VECTORIZED_MIN_EVENTS * 2)
            )
        )

    def test_bounded_backend_stays_scalar(self, monkeypatch):
        monkeypatch.setattr(
            vectorized,
            "observe_columns",
            lambda *a: pytest.fail("kernel used with bounded backend"),
        )
        tracker = PIFTTracker(
            PIFTConfig(vectorized=True), state_factory=paper_default_storage
        )
        tracker.taint_source(SOURCE)
        tracker.observe_columns(
            EventColumns.from_events(
                untainted_stream(_VECTORIZED_MIN_EVENTS * 2)
            )
        )

    def test_telemetry_shadow_stays_per_event(self, monkeypatch):
        from repro.telemetry import Telemetry

        monkeypatch.setattr(
            vectorized,
            "observe_columns",
            lambda *a: pytest.fail("kernel used under telemetry shadow"),
        )
        tracker = PIFTTracker(
            PIFTConfig(vectorized=True), telemetry=Telemetry()
        )
        tracker.taint_source(SOURCE)
        tracker.observe_columns(
            EventColumns.from_events(
                untainted_stream(_VECTORIZED_MIN_EVENTS * 2)
            )
        )
        assert tracker.stats.loads_observed > 0

    def test_forced_hook_runs_kernel_on_short_slices(self, monkeypatch):
        calls = []
        real = vectorized.observe_columns
        monkeypatch.setattr(
            vectorized,
            "observe_columns",
            lambda *a: calls.append(a) or real(*a),
        )
        tracker = make_tracker()
        tracker.observe_columns_vectorized(
            EventColumns.from_events(untainted_stream(8))
        )
        assert len(calls) == 1


class TestColumnArrays:
    def test_arrays_cached_per_columns(self):
        columns = EventColumns.from_events(untainted_stream(10))
        first = columns.arrays()
        assert isinstance(first, ColumnArrays)
        assert columns.arrays() is first

    def test_arrays_match_columns(self):
        stream = untainted_stream(6, pid=3) + tainting_stream(
            6, start_index=6, pid=5
        )
        arrays = EventColumns.from_events(stream).arrays()
        assert arrays.starts.tolist() == [
            e.address_range.start for e in stream
        ]
        assert arrays.ends.tolist() == [e.address_range.end for e in stream]
        assert arrays.is_load.tolist() == [e.is_load for e in stream]
        assert arrays.indices.tolist() == [
            e.instruction_index for e in stream
        ]
        assert arrays.pids.tolist() == [e.pid for e in stream]
        assert arrays.pid_values == (3, 5)


class TestRangeSetMirror:
    def test_mirror_matches_and_caches(self):
        rs = RangeSet()
        rs.add(AddressRange(10, 19))
        rs.add(AddressRange(40, 49))
        starts, ends = rs.as_arrays()
        assert starts.tolist() == [10, 40]
        assert ends.tolist() == [19, 49]
        again = rs.as_arrays()
        assert again[0] is starts and again[1] is ends

    def test_mirror_refreshes_on_mutation(self):
        rs = RangeSet()
        rs.add(AddressRange(10, 19))
        rs.as_arrays()
        rs.add(AddressRange(30, 39))
        starts, ends = rs.as_arrays()
        assert starts.tolist() == [10, 30]
        rs.remove(AddressRange(10, 19))
        starts, ends = rs.as_arrays()
        assert starts.tolist() == [30]
        assert ends.tolist() == [39]

    def test_total_size_incremental(self):
        rs = RangeSet()
        rs.add(AddressRange(0, 9))
        rs.add(AddressRange(20, 29))
        assert rs.total_size == 20
        rs.add(AddressRange(5, 24))  # merges everything into [0, 29]
        assert rs.total_size == 30
        rs.remove(AddressRange(10, 19))
        assert rs.total_size == 20
        rs.clear()
        assert rs.total_size == 0


class TestKernelMechanics:
    def test_skip_accounts_counters_exactly(self):
        stream = untainted_stream(2000)
        reference = make_tracker(vectorized_on=False)
        reference.observe_columns(EventColumns.from_events(stream))
        tracker = make_tracker()
        tracker.observe_columns_vectorized(EventColumns.from_events(stream))
        assert tracker.stats.as_dict() == reference.stats.as_dict()

    def test_multi_pid_skip_accounting(self):
        stream = []
        for i in range(400):
            stream.extend(untainted_stream(1, start_index=i, pid=i % 3))
        reference = make_tracker(vectorized_on=False)
        reference.observe_columns(EventColumns.from_events(stream))
        tracker = make_tracker()
        tracker.observe_columns_vectorized(EventColumns.from_events(stream))
        assert tracker.stats.as_dict() == reference.stats.as_dict()
        assert tracker.instructions_per_pid == reference.instructions_per_pid

    def test_dense_trace_executes_vectorised(self, monkeypatch):
        # The taint-dense regime that used to bail out wholesale now runs
        # through the dense executor: window evolution and contained
        # taint-adds are bulk-committed, with no scalar spans at all.
        stream = tainting_stream(vectorized.BAILOUT_AFTER * 4)
        columns = EventColumns.from_events(stream)
        tracker = make_tracker()
        monkeypatch.setattr(
            tracker,
            "observe_columns_scalar",
            lambda *a, **k: pytest.fail("scalar loop used on dense trace"),
        )
        tracker.observe_columns_vectorized(columns)
        reference = make_tracker(vectorized_on=False)
        reference.observe_columns(columns)
        assert tracker.stats.as_dict() == reference.stats.as_dict()

    def test_churn_trace_bails_out_bounded_and_reprobes(self, monkeypatch):
        # Taint/untaint churn defeats the dense executor (every event is
        # a content mutation), so the density bail-out engages — but in
        # bounded REPROBE_EVERY chunks, and once the sparse tail starts
        # the kernel re-probes and regains wholesale skipping.
        prefix = churn_stream(vectorized.BAILOUT_AFTER * 6)
        tail_start = len(prefix)
        stream = prefix + untainted_stream(
            vectorized.REPROBE_EVERY * 4, start_index=tail_start
        )
        columns = EventColumns.from_events(stream)
        config = PIFTConfig(window_size=50, max_propagations=1)
        tracker = PIFTTracker(config)
        tracker.taint_source(SOURCE)
        spans = []
        real = tracker.observe_columns_scalar

        def spy(cols, start=0, stop=None):
            spans.append((start, stop))
            return real(cols, start, stop)

        monkeypatch.setattr(tracker, "observe_columns_scalar", spy)
        tracker.observe_columns_vectorized(columns)
        assert spans, "churn prefix should force scalar spans"
        # Satellite: no span may hand the whole remainder to the scalar
        # loop — every bail-out chunk is bounded.
        assert all(
            stop - start <= vectorized.REPROBE_EVERY
            for start, stop in spans
        )
        # The sparse tail is re-probed and skipped, not nibbled scalar.
        tail_margin = tail_start + vectorized.REPROBE_EVERY
        assert all(start < tail_margin for start, _ in spans)
        reference = PIFTTracker(config)
        reference.taint_source(SOURCE)
        reference.observe_columns_scalar(columns)
        assert tracker.stats.as_dict() == reference.stats.as_dict()
        assert tracker.snapshot() == reference.snapshot()

    def test_window_lower_edge_excludes_regressed_stores(self):
        # A store whose per-PID index regressed below the window-opening
        # load is outside the tainting window (the window is the NI
        # instructions *following* the load) — on all three paths.
        config = PIFTConfig(
            window_size=10, max_propagations=4, untainting=False
        )
        stream = [load(0, 3, 100)]  # opens the window at k=100
        stream += [store(5_000, 5_003, 50)]  # regressed: below the load
        stream += [store(6_000, 6_003, 105)]  # inside [100, 110]
        stream += untainted_stream(1200, start_index=200)
        columns = EventColumns.from_events(stream)
        trackers = []
        for _ in range(3):
            tracker = PIFTTracker(config)
            tracker.taint_source(SOURCE)
            trackers.append(tracker)
        for event in columns.events:
            trackers[0].observe(event)
        trackers[1].observe_columns_scalar(columns)
        trackers[2].observe_columns_vectorized(columns)
        for tracker in trackers:
            assert tracker.stats.taint_operations == 1
            assert not tracker.check(AddressRange(5_000, 5_003))
            assert tracker.check(AddressRange(6_000, 6_003))
        assert trackers[0].snapshot() == trackers[1].snapshot()
        assert trackers[1].snapshot() == trackers[2].snapshot()

    def test_numpy_absence_falls_back_scalar_with_one_warning(
        self, monkeypatch
    ):
        stream = tainting_stream(600)
        columns = EventColumns.from_events(stream)
        monkeypatch.setattr(vectorized, "_np", None)
        monkeypatch.setattr(vectorized, "_numpy_fallback_warned", False)
        monkeypatch.setattr(
            EventColumns,
            "arrays",
            lambda self: pytest.fail("fallback must not build numpy arrays"),
        )
        tracker = make_tracker()
        with pytest.warns(RuntimeWarning, match="falling back"):
            tracker.observe_columns_vectorized(columns)
        reference = make_tracker(vectorized_on=False)
        reference.observe_columns_scalar(columns)
        assert tracker.stats.as_dict() == reference.stats.as_dict()
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")  # second call: no warning
            tracker.observe_columns_vectorized(columns)

    def test_mostly_untainted_trace_skips_wholesale(self, monkeypatch):
        stream = untainted_stream(vectorized.BLOCK_MIN * 8)
        columns = EventColumns.from_events(stream)
        tracker = make_tracker()
        monkeypatch.setattr(
            tracker,
            "observe_columns_scalar",
            lambda *a, **k: pytest.fail(
                "scalar loop used on fully-irrelevant trace"
            ),
        )
        tracker.observe_columns_vectorized(columns)
        assert tracker.stats.loads_observed == len(columns) // 2
        assert tracker.stats.stores_observed == len(columns) - (
            len(columns) // 2
        )

    def test_kernel_respects_slice_bounds(self):
        stream = untainted_stream(1500)
        columns = EventColumns.from_events(stream)
        tracker = make_tracker()
        tracker.observe_columns_vectorized(columns, 100, 900)
        reference = make_tracker(vectorized_on=False)
        reference.observe_columns(columns, 100, 900)
        assert tracker.stats.as_dict() == reference.stats.as_dict()

    def test_window_relevance_catches_far_stores(self):
        # A tainted load opens a window; a store to a far-away address
        # inside the window must still be classified relevant (it gets
        # tainted), not skipped as "no overlap".
        config = PIFTConfig(window_size=10, max_propagations=2)
        stream = [load(0, 3, 0)]  # tainted load at SOURCE
        stream += [store(50_000 + 8 * i, 50_003 + 8 * i, 2 + i) for i in range(4)]
        stream += untainted_stream(1200, start_index=100)
        columns = EventColumns.from_events(stream)
        tracker = PIFTTracker(config)
        tracker.taint_source(SOURCE)
        tracker.observe_columns_vectorized(columns)
        reference = PIFTTracker(config)
        reference.taint_source(SOURCE)
        reference.observe_columns_scalar(columns)
        assert tracker.stats.as_dict() == reference.stats.as_dict()
        assert tracker.snapshot() == reference.snapshot()
        assert tracker.stats.taint_operations >= 2


class TestNumpyAbsentReplayDegradation:
    """Replay-level numpy degradation: with numpy gone, both the plain and
    the coloured replay must fall back to the scalar loop behind exactly
    one RuntimeWarning — and produce verdicts identical to the
    numpy-enabled run (the fallback is an execution strategy, never a
    semantics change)."""

    @staticmethod
    def _recorded_run():
        import random

        from repro.android.device import (
            RecordedRun, SinkCheck, SourceRegistration,
        )
        from repro.core.events import load as mk_load, store as mk_store

        rng = random.Random(7)
        run = RecordedRun()
        for slot, name in enumerate(("imei", "location")):
            lo = slot * 8192
            run.sources.append(
                SourceRegistration(AddressRange(lo, lo + 4095), 0, name)
            )
        index = 0
        for i in range(800):
            index += 1
            if i % 5 == 0:
                lo = (i // 5) % 2 * 8192
                a = lo + rng.randrange(0, 4080)
                run.trace.append(mk_load(a, a + 3, index))
            else:
                a = 1 << 16 | rng.randrange(0, 2040)
                run.trace.append(mk_store(a, a + 7, index))
        run.trace.note_instruction(index + 1)
        run.sink_checks.append(
            SinkCheck(
                AddressRange(1 << 16, (1 << 16) + 255),
                index + 1, "network", "socket",
            )
        )
        return run

    def test_replays_degrade_with_one_warning_and_identical_verdicts(
        self, monkeypatch
    ):
        import warnings

        from repro.analysis.replay import replay, replay_coloured
        from repro.core import PIFTConfig

        recorded = self._recorded_run()
        config = PIFTConfig(window_size=13, max_propagations=3)

        def verdicts(result):
            return [
                (o.sink_name, o.channel, o.instruction_index, o.pid,
                 o.tainted, o.colours)
                for o in result.sink_outcomes
            ]

        with_numpy_plain = verdicts(replay(recorded, config))
        with_numpy_coloured = verdicts(replay_coloured(recorded, config))

        monkeypatch.setattr(vectorized, "_np", None)
        monkeypatch.setattr(vectorized, "_numpy_fallback_warned", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            without_numpy_plain = verdicts(replay(recorded, config))
            without_numpy_coloured = verdicts(replay_coloured(recorded, config))
        fallback_warnings = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "falling back" in str(w.message)
        ]
        assert len(fallback_warnings) == 1  # one-shot across both replays

        assert without_numpy_plain == with_numpy_plain
        assert without_numpy_coloured == with_numpy_coloured
        # The replay actually exercised taint: at least one tainted
        # verdict with attributed colours, or the parity claim is vacuous.
        assert any(v[4] for v in without_numpy_coloured)
        assert all(v[4] == bool(v[5]) for v in without_numpy_coloured)

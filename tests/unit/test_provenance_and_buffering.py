"""Unit tests for labelled provenance tracking and buffered processing."""

import pytest

from repro.core.buffered import BufferedPIFT
from repro.core.config import PIFTConfig
from repro.core.events import load, store
from repro.core.provenance import ProvenanceTracker
from repro.core.ranges import AddressRange

IMEI = AddressRange(0x1000, 0x100F)
PHONE = AddressRange(0x3000, 0x300F)
CONFIG = PIFTConfig(5, 2)


class TestProvenance:
    def make(self):
        tracker = ProvenanceTracker(CONFIG)
        tracker.taint_source("device_id", IMEI)
        tracker.taint_source("phone_number", PHONE)
        return tracker

    def test_labels_listed(self):
        assert self.make().labels() == ["device_id", "phone_number"]

    def test_single_label_flow(self):
        tracker = self.make()
        tracker.run([load(0x1000, 0x1003, 0), store(0x5000, 0x5003, 1)])
        assert tracker.check(AddressRange(0x5000, 0x5003)) == {"device_id"}

    def test_mixed_flow_carries_both_labels(self):
        tracker = self.make()
        tracker.run(
            [
                load(0x1000, 0x1003, 0),
                store(0x5000, 0x5003, 1),  # device_id
                load(0x3000, 0x3003, 10),
                store(0x5004, 0x5007, 11),  # phone_number, adjacent
            ]
        )
        assert tracker.check(AddressRange(0x5000, 0x5007)) == {
            "device_id",
            "phone_number",
        }

    def test_clean_range_returns_empty(self):
        tracker = self.make()
        assert tracker.check(AddressRange(0x9000, 0x9003)) == frozenset()
        assert not tracker.leaks

    def test_leak_log_records_labels(self):
        tracker = self.make()
        tracker.run([load(0x3000, 0x3003, 0), store(0x5000, 0x5003, 1)])
        tracker.check(AddressRange(0x5000, 0x5003), sink_name="sms")
        (leak,) = tracker.leaks
        assert leak.sink_name == "sms"
        assert leak.labels == {"phone_number"}

    def test_per_label_windows_are_independent(self):
        # A window opened by one label's load must not taint for another.
        tracker = self.make()
        tracker.run(
            [
                load(0x1000, 0x1003, 0),  # device_id window opens
                store(0x5000, 0x5003, 2),
            ]
        )
        assert tracker.check(AddressRange(0x5000, 0x5003)) == {"device_id"}

    def test_union_tainted_bytes(self):
        tracker = self.make()
        assert tracker.union_tainted_bytes() == IMEI.size + PHONE.size


class TestBufferedPIFT:
    def leaky_stream(self):
        return [load(0x1000, 0x1003, 0), store(0x5000, 0x5003, 1)]

    def test_blocking_check_sees_through_buffer(self):
        buffered = BufferedPIFT(CONFIG, capacity=64)
        buffered.taint_source(IMEI)
        for event in self.leaky_stream():
            buffered.on_memory_event(event)
        assert buffered.queue_depth == 2
        assert buffered.check_blocking(AddressRange(0x5000, 0x5003))
        assert buffered.queue_depth == 0
        assert buffered.stats.blocking_drain_events == 2

    def test_immediate_check_can_be_stale(self):
        buffered = BufferedPIFT(CONFIG, capacity=64)
        buffered.taint_source(IMEI)
        for event in self.leaky_stream():
            buffered.on_memory_event(event)
        # Detection semantics: the in-flight flow is not yet visible...
        assert not buffered.check_immediate(
            AddressRange(0x5000, 0x5003), sink_name="sms"
        )
        buffered.drain_all()
        # ...but is reported late once the buffer drains.
        assert buffered.stats.stale_negatives == 1
        (late,) = buffered.late_detections
        assert late.sink_name == "sms"
        assert late.events_behind == 2

    def test_immediate_check_true_when_state_current(self):
        buffered = BufferedPIFT(CONFIG, capacity=64)
        buffered.taint_source(IMEI)
        for event in self.leaky_stream():
            buffered.on_memory_event(event)
        buffered.drain_all()
        assert buffered.check_immediate(AddressRange(0x5000, 0x5003))
        assert buffered.stats.stale_negatives == 0

    def test_watermark_auto_drain(self):
        buffered = BufferedPIFT(CONFIG, capacity=4, drain_batch=2)
        buffered.taint_source(IMEI)
        for index in range(12):
            buffered.on_memory_event(load(0x8000, 0x8003, index))
        assert buffered.queue_depth < 12  # the FIFO drained itself
        assert buffered.stats.drains >= 1
        assert buffered.stats.max_queue_depth <= 4

    def test_source_registration_is_synchronous(self):
        buffered = BufferedPIFT(CONFIG, capacity=64)
        buffered.on_memory_event(load(0x1000, 0x1003, 0))
        buffered.taint_source(IMEI)  # forces a drain first
        assert buffered.queue_depth == 0

    def test_verdicts_match_unbuffered_after_drain(self):
        from repro.core.tracker import PIFTTracker

        events = [
            load(0x1000, 0x1003, 0),
            store(0x5000, 0x5003, 1),
            store(0x5000, 0x5003, 50),  # untainted again later
            load(0x1004, 0x1007, 60),
            store(0x6000, 0x6003, 61),
        ]
        reference = PIFTTracker(CONFIG)
        reference.taint_source(IMEI)
        reference.run(events)
        buffered = BufferedPIFT(CONFIG, capacity=2, drain_batch=1)
        buffered.taint_source(IMEI)
        for event in events:
            buffered.on_memory_event(event)
        buffered.drain_all()
        for probe in (AddressRange(0x5000, 0x5003), AddressRange(0x6000, 0x6003)):
            assert buffered.tracker.check(probe) == reference.check(probe)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BufferedPIFT(CONFIG, capacity=0)
        with pytest.raises(ValueError):
            BufferedPIFT(CONFIG, drain_batch=0)

"""Edge-case tests for intrinsics and the builder/VM surface."""

import pytest

from repro.isa.cpu import CPU
from repro.dalvik import DalvikVM, MethodBuilder, VMError, VMString
from repro.dalvik.translator import fuse_dispatch, MterpTranslator
from repro.dalvik.bytecode import Instr, opcode


@pytest.fixture
def vm():
    return DalvikVM(CPU())


_COUNTER = [0]


def run_main(vm, build, registers=14):
    _COUNTER[0] += 1
    name = f"E.main{_COUNTER[0]}"
    builder = MethodBuilder(name, registers=registers)
    build(builder)
    vm.register_method(builder.build())
    return vm.call(name)


def returned_string(vm, reference) -> str:
    return vm.heap.deref(reference).value()


class TestStringEdgeCases:
    def test_empty_string_constant(self, vm):
        def build(b):
            b.const_string(0, "")
            b.invoke("String.length", 0)
            b.move_result(1)
            b.return_value(1)

        assert run_main(vm, build) == 0

    def test_concat_with_empty(self, vm):
        def build(b):
            b.const_string(0, "")
            b.const_string(1, "tail")
            b.invoke("String.concat", 0, 1)
            b.move_result_object(2)
            b.return_object(2)

        assert returned_string(vm, run_main(vm, build)) == "tail"

    def test_substring_empty_result(self, vm):
        def build(b):
            b.const_string(0, "abc")
            b.const(1, 1)
            b.invoke("String.substring", 0, 1, 1)
            b.move_result_object(2)
            b.return_object(2)

        assert returned_string(vm, run_main(vm, build)) == ""

    def test_substring_out_of_bounds_raises(self, vm):
        def build(b):
            b.const_string(0, "abc")
            b.const(1, 2)
            b.const(2, 9)
            b.invoke("String.substring", 0, 1, 2)
            b.return_void()

        with pytest.raises(IndexError):
            run_main(vm, build)

    def test_char_at_out_of_bounds_raises(self, vm):
        def build(b):
            b.const_string(0, "ab")
            b.const(1, 5)
            b.invoke("String.charAt", 0, 1)
            b.return_void()

        with pytest.raises(IndexError):
            run_main(vm, build)

    def test_equals_different_lengths(self, vm):
        def build(b):
            b.const_string(0, "abc")
            b.const_string(1, "ab")
            b.invoke("String.equals", 0, 1)
            b.move_result(2)
            b.return_value(2)

        assert run_main(vm, build) == 0

    def test_to_char_array_of_empty(self, vm):
        def build(b):
            b.const_string(0, "")
            b.invoke("String.toCharArray", 0)
            b.move_result_object(1)
            b.array_length(2, 1)
            b.return_value(2)

        assert run_main(vm, build) == 0

    def test_unicode_string_roundtrip(self, vm):
        def build(b):
            b.const_string(0, "héllo wörld")
            b.const_string(1, " — ünïcode")
            b.invoke("String.concat", 0, 1)
            b.move_result_object(2)
            b.return_object(2)

        assert returned_string(vm, run_main(vm, build)) == "héllo wörld — ünïcode"


class TestBuilderErrors:
    def test_empty_method_rejected(self, vm):
        with pytest.raises(VMError):
            MethodBuilder("E.empty", registers=4).build()

    def test_too_many_ins_rejected(self, vm):
        with pytest.raises(VMError):
            builder = MethodBuilder("E.bad", registers=2, ins=3)
            builder.return_void()
            builder.build()

    def test_unknown_label_rejected(self, vm):
        builder = MethodBuilder("E.badlabel", registers=4)
        builder.goto("nowhere")
        builder.return_void()
        vm.register_method(builder.build())
        with pytest.raises(VMError):
            vm.call("E.badlabel")

    def test_fall_off_end_rejected(self, vm):
        builder = MethodBuilder("E.falloff", registers=4)
        builder.const(0, 1)  # no return
        vm.register_method(builder.build())
        with pytest.raises(VMError):
            vm.call("E.falloff")

    def test_duplicate_registration_rejected(self, vm):
        builder = MethodBuilder("E.dup", registers=4)
        builder.return_void()
        vm.register_method(builder.build())
        rebuilt = MethodBuilder("E.dup", registers=4)
        rebuilt.return_void()
        with pytest.raises(VMError):
            vm.register_method(rebuilt.build())

    def test_intrinsic_name_collision_rejected(self, vm):
        builder = MethodBuilder("String.length", registers=4)
        builder.return_void()
        with pytest.raises(VMError):
            vm.register_method(builder.build())


class TestFusedDispatch:
    def test_fuse_removes_only_dispatch_tail(self):
        translator = MterpTranslator()
        routine = translator.binop_2addr_int(
            Instr(opcode("add-int/2addr"), a=1, b=2)
        )
        fused = fuse_dispatch(routine)
        mnemonics = [i.mnemonic for i in fused.instructions]
        assert "and" not in mnemonics  # GET_INST_OPCODE gone
        assert mnemonics[-1] == "str"  # GOTO_OPCODE gone
        assert len(fused.instructions) == len(routine.instructions) - 2

    def test_fuse_remaps_marker_indices(self):
        translator = MterpTranslator()
        routine = translator.binop_2addr_int(
            Instr(opcode("add-int/2addr"), a=1, b=2)
        )
        fused = fuse_dispatch(routine)
        load = fused.instructions[fused.data_load_index]
        store = fused.instructions[fused.data_store_index]
        assert load.mnemonic == "ldr"
        assert store.mnemonic == "str"
        # Distance shrinks by exactly the removed in-gap crack instruction.
        assert fused.load_store_distance == routine.load_store_distance - 1

    def test_fused_vm_computes_same_results(self):
        plain = DalvikVM(CPU())
        fused = DalvikVM(CPU(), fused_dispatch=True)
        for vm in (plain, fused):
            builder = MethodBuilder("E.calc", registers=8)
            builder.const(1, 6)
            builder.const(2, 7)
            builder.mul_int(0, 1, 2)
            builder.add_int_lit8(0, 0, -2)
            builder.return_value(0)
            vm.register_method(builder.build())
        assert plain.call("E.calc") == fused.call("E.calc") == 40

    def test_fused_vm_executes_fewer_instructions(self):
        plain = DalvikVM(CPU())
        fused = DalvikVM(CPU(), fused_dispatch=True)
        for vm in (plain, fused):
            builder = MethodBuilder("E.loop", registers=8)
            builder.const(0, 0)
            builder.const(1, 20)
            builder.label("loop")
            builder.if_ge(0, 1, "done")
            builder.add_int_lit8(0, 0, 1)
            builder.goto("loop")
            builder.label("done")
            builder.return_value(0)
            vm.register_method(builder.build())
            vm.call("E.loop")
        assert fused.cpu.instruction_count() < plain.cpu.instruction_count()


class TestArraysFill:
    def test_fill_semantics(self, vm):
        def build(b):
            b.const(0, 6)
            b.new_array(1, 0, "[B")
            b.const(2, 1)
            b.const(3, 4)
            b.const(4, 0x41)
            b.invoke_static("Arrays.fill", 1, 2, 3, 4)
            b.return_object(1)

        array = vm.heap.deref(run_main(vm, build))
        assert [array.get(i) for i in range(6)] == [0, 0x41, 0x41, 0x41, 0, 0]

    def test_fill_bad_bounds_raises(self, vm):
        def build(b):
            b.const(0, 4)
            b.new_array(1, 0, "[B")
            b.const(2, 2)
            b.const(3, 9)
            b.const(4, 1)
            b.invoke_static("Arrays.fill", 1, 2, 3, 4)
            b.return_void()

        with pytest.raises(IndexError):
            run_main(vm, build)

"""Unit tests for deterministic fault injection, overflow policies,
degraded-confidence answers, and checkpoint/restore."""

import json

import pytest

from repro.core import (
    AddressRange,
    BufferConfig,
    BufferedPIFT,
    FaultPlan,
    FaultRates,
    OverflowPolicy,
    PIFTConfig,
    PIFTHardwareModule,
    load,
    parse_fault_spec,
    store,
)
from repro.core.taint_storage import BoundedRangeCache, EvictionPolicy
from repro.core.tracker import PIFTTracker

IMEI = AddressRange(0x1000, 0x100F)
CONFIG = PIFTConfig(5, 2)


def leaky_workload(n=200):
    """A stream with a tainted load + store pair per iteration."""
    events = []
    for i in range(n):
        events.append(load(0x1000, 0x1003, 3 * i))
        events.append(store(0x5000 + 4 * i, 0x5003 + 4 * i, 3 * i + 1))
    return events


class TestFaultSpec:
    def test_empty_spec_is_fault_free(self):
        rates = parse_fault_spec("")
        assert not rates.any_active
        assert not FaultPlan(seed=9, rates=rates).enabled

    def test_round_trip_keys(self):
        rates = parse_fault_spec(
            "loss=1e-3,dup=2e-4,reorder=0.01,window=8,corrupt=1e-5,"
            "bits=16,drop=1e-4,storm=1e-6,storm_size=4,stall=0.5,"
            "stall_cycles=300"
        )
        assert rates.event_loss == 1e-3
        assert rates.event_duplication == 2e-4
        assert rates.reorder_window == 8
        assert rates.corrupt_bits == 16
        assert rates.stall_cycles == 300
        assert rates.any_active

    def test_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            parse_fault_spec("flip=0.1")

    def test_rejects_bad_item(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_fault_spec("loss")

    def test_rejects_out_of_range_rate(self):
        with pytest.raises(ValueError):
            FaultRates(event_loss=1.5)
        with pytest.raises(ValueError):
            FaultRates(reorder_window=0)

    def test_with_rates_returns_new_plan(self):
        plan = FaultPlan(seed=3)
        lossy = plan.with_rates(event_loss=0.5)
        assert not plan.enabled
        assert lossy.enabled and lossy.seed == 3

    def test_as_dict_is_json_compatible(self):
        plan = FaultPlan.from_spec("loss=0.1", seed=2)
        assert json.loads(json.dumps(plan.as_dict()))["seed"] == 2


class TestInjectorDeterminism:
    def deliveries(self, plan, n=500):
        injector = plan.injector()
        out = []
        for event in leaky_workload(n):
            out.extend(injector.feed(event))
        out.extend(injector.flush())
        return out, injector.stats

    def test_same_seed_same_stream(self):
        plan = FaultPlan(seed=11, rates=FaultRates(
            event_loss=0.02, event_duplication=0.02, event_reorder=0.02,
            address_corruption=0.02,
        ))
        first, stats1 = self.deliveries(plan)
        second, stats2 = self.deliveries(plan)
        assert first == second
        assert stats1.as_dict() == stats2.as_dict()
        assert stats1.total_injections > 0

    def test_different_seed_different_stream(self):
        rates = FaultRates(event_loss=0.05)
        a, _ = self.deliveries(FaultPlan(seed=1, rates=rates))
        b, _ = self.deliveries(FaultPlan(seed=2, rates=rates))
        assert a != b

    def test_loss_is_nested_across_rates(self):
        """Common-random-numbers coupling: events lost at a low rate are a
        subset of those lost at a higher rate (same seed)."""
        events = leaky_workload(400)

        def survivors(rate):
            injector = FaultPlan(
                seed=5, rates=FaultRates(event_loss=rate)
            ).injector()
            kept = []
            for event in events:
                kept.extend(injector.feed(event))
            return {e.instruction_index for e in kept}

        low, high = survivors(0.01), survivors(0.2)
        # Higher rate keeps strictly fewer events, and everything it kept
        # also survived the lower rate.
        assert high < low

    def test_zero_rate_plan_is_identity(self):
        events = leaky_workload(100)
        injector = FaultPlan(seed=77).injector()
        out = []
        for event in events:
            out.extend(injector.feed(event))
        assert out == events
        assert injector.flush() == []
        assert injector.stats.total_injections == 0

    def test_duplication_delivers_twice(self):
        out, stats = self.deliveries(
            FaultPlan(seed=1, rates=FaultRates(event_duplication=0.2)), n=300
        )
        assert stats.events_duplicated > 0
        assert len(out) == 600 + stats.events_duplicated

    def test_corruption_preserves_size(self):
        events = leaky_workload(300)
        injector = FaultPlan(
            seed=1, rates=FaultRates(address_corruption=0.2)
        ).injector()
        out = []
        for event in events:
            out.extend(injector.feed(event))
        assert injector.stats.addresses_corrupted > 0
        by_index = {e.instruction_index: e for e in events}
        changed = [
            e for e in out if e.address_range != by_index[e.instruction_index].address_range
        ]
        assert len(changed) == injector.stats.addresses_corrupted
        for event in changed:
            original = by_index[event.instruction_index]
            assert event.address_range.size == original.address_range.size
            # Exactly one low address bit differs.
            flipped = event.address_range.start ^ original.address_range.start
            assert flipped and (flipped & (flipped - 1)) == 0

    def test_reorder_is_bounded_and_lossless(self):
        events = leaky_workload(300)
        injector = FaultPlan(
            seed=1, rates=FaultRates(event_reorder=0.1, reorder_window=4)
        ).injector()
        out = []
        for event in events:
            out.extend(injector.feed(event))
        out.extend(injector.flush())
        assert injector.stats.events_reordered > 0
        # Lossless: every event is delivered exactly once.
        assert sorted(e.instruction_index for e in out) == [
            e.instruction_index for e in events
        ]

    def test_state_drop_removes_a_range(self):
        tracker = PIFTTracker(CONFIG)
        tracker.taint_source(IMEI)
        tracker.taint_source(AddressRange(0x2000, 0x200F))
        injector = FaultPlan(
            seed=1, rates=FaultRates(state_drop=1.0)
        ).injector()
        before = tracker.range_count
        injector.state_faults(tracker, pid=0)
        assert tracker.range_count == before - 1
        assert injector.stats.state_entries_dropped == 1

    def test_storm_and_stall_hit_bounded_storage(self):
        tracker = PIFTTracker(
            CONFIG, state_factory=lambda: BoundedRangeCache(8)
        )
        for i in range(8):
            tracker.taint_source(AddressRange(0x1000 + 0x100 * i,
                                              0x100F + 0x100 * i))
        injector = FaultPlan(
            seed=1,
            rates=FaultRates(eviction_storm=1.0, storm_size=4,
                             storage_stall=1.0, stall_cycles=250),
        ).injector()
        injector.state_faults(tracker, pid=0)
        assert injector.stats.eviction_storms == 1
        assert injector.stats.stall_events == 1
        assert injector.stats.stall_cycles == 250
        state = tracker.state(0)
        assert state.stats.evictions >= 4


class TestParity:
    """A zero-rate plan — and no plan at all — must leave every stat and
    verdict byte-identical to the fault-free build."""

    def run_buffered(self, faults):
        buffered = BufferedPIFT(CONFIG, capacity=32, drain_batch=8,
                                faults=faults)
        buffered.taint_source(IMEI)
        for event in leaky_workload(150):
            buffered.on_memory_event(event)
        buffered.check_immediate(AddressRange(0x5000, 0x5003), sink_name="s")
        buffered.drain_all()
        return buffered

    def test_buffered_parity(self):
        plain = self.run_buffered(None)
        zero = self.run_buffered(FaultPlan(seed=123))
        assert plain.stats.as_dict() == zero.stats.as_dict()
        assert plain.tracker.stats.as_dict() == zero.tracker.stats.as_dict()
        assert plain.late_detections == zero.late_detections

    def test_hw_module_parity(self):
        def run(faults):
            hw = PIFTHardwareModule(CONFIG, faults=faults)
            hw.tracker.taint_source(IMEI)
            for event in leaky_workload(150):
                hw.on_memory_event(event)
            return hw

        plain, zero = run(None), run(FaultPlan(seed=9))
        assert plain.stats.as_dict() == zero.stats.as_dict()
        assert plain.fault_stats is None
        assert zero.fault_stats.total_injections == 0

    def test_suite_verdict_parity(self):
        """Zero-rate faulted replay reproduces the fault-free suite verdicts
        app for app at the paper's (13, 3) cell."""
        from repro.core import PAPER_DEFAULT
        from repro.apps.droidbench import all_apps, record_suite
        from repro.analysis.accuracy import evaluate_suite
        from repro.analysis.degradation import evaluate_suite_with_faults

        apps = record_suite(all_apps()[:8])
        baseline = evaluate_suite(apps, PAPER_DEFAULT)
        faulted, stats = evaluate_suite_with_faults(
            apps, PAPER_DEFAULT, FaultPlan(seed=42)
        )
        assert faulted.as_dict() == baseline.as_dict()
        assert stats.total_injections == 0


class TestOverflowPolicies:
    def fill(self, policy, n=100, **kwargs):
        buffered = BufferedPIFT(CONFIG, capacity=16, drain_batch=4,
                                policy=policy, **kwargs)
        buffered.taint_source(IMEI)
        for i in range(n):
            buffered.on_memory_event(store(0x5000 + i, 0x5000 + i, i))
        return buffered

    def test_block_never_drops(self):
        buffered = self.fill(OverflowPolicy.BLOCK)
        assert buffered.stats.forced_drops == 0
        assert buffered.stats.spilled_events == 0
        assert buffered.stats.drains >= 1
        assert not buffered.degraded

    def test_drop_oldest_counts_forced_drops(self):
        buffered = self.fill(OverflowPolicy.DROP_OLDEST)
        assert buffered.stats.forced_drops == 100 - 16
        assert buffered.queue_depth == 16
        assert buffered.degraded
        # The newest events survived.
        assert [e.instruction_index for e in buffered._queue] == list(range(84, 100))

    def test_drop_newest_counts_forced_drops(self):
        buffered = self.fill(OverflowPolicy.DROP_NEWEST)
        assert buffered.stats.forced_drops == 100 - 16
        assert buffered.degraded
        # The oldest events survived.
        assert [e.instruction_index for e in buffered._queue] == list(range(16))

    def test_spill_loses_nothing(self):
        buffered = self.fill(OverflowPolicy.SPILL)
        assert buffered.stats.forced_drops == 0
        assert buffered.stats.spilled_events > 0
        assert buffered.queue_depth + buffered.spill_depth == 100
        assert not buffered.degraded
        drained = buffered.drain_all()
        assert drained == 100
        assert buffered.tracker.stats.stores_observed == 100

    def test_spill_drains_in_fifo_order(self):
        buffered = self.fill(OverflowPolicy.SPILL, n=40)
        seen = []
        original_observe = buffered.tracker.observe
        buffered.tracker.observe = lambda e: (
            seen.append(e.instruction_index), original_observe(e)
        )[1]
        buffered.drain_all()
        assert seen == sorted(seen)

    def test_block_stats_unchanged_from_seed_behaviour(self):
        """BLOCK with default watermarks reproduces the historical
        drain-on-full accounting exactly."""
        buffered = BufferedPIFT(CONFIG, capacity=4, drain_batch=2)
        buffered.taint_source(IMEI)
        for index in range(12):
            buffered.on_memory_event(load(0x8000, 0x8003, index))
        assert buffered.queue_depth < 12
        assert buffered.stats.max_queue_depth <= 4
        assert buffered.stats.forced_drops == 0

    def test_from_config_builder(self):
        buffer_config = BufferConfig(capacity=8, drain_batch=2,
                                     policy=OverflowPolicy.DROP_NEWEST,
                                     high_watermark=6, low_watermark=2)
        buffered = BufferedPIFT.from_config(CONFIG, buffer_config)
        assert buffered.capacity == 8
        assert buffered.policy is OverflowPolicy.DROP_NEWEST

    def test_buffer_config_validation(self):
        with pytest.raises(ValueError):
            BufferConfig(capacity=0)
        with pytest.raises(ValueError):
            BufferConfig(high_watermark=2000)
        with pytest.raises(ValueError):
            BufferConfig(high_watermark=10, low_watermark=10)
        with pytest.raises(ValueError):
            BufferedPIFT(CONFIG, capacity=8, high_watermark=9)


class TestBackpressure:
    def test_watermark_hysteresis(self):
        buffered = BufferedPIFT(CONFIG, capacity=16, drain_batch=4,
                                policy=OverflowPolicy.DROP_OLDEST,
                                high_watermark=8, low_watermark=2)
        buffered.taint_source(IMEI)
        for i in range(8):
            buffered.on_memory_event(store(0x5000, 0x5000, i))
        assert buffered.backpressure
        assert buffered.stats.backpressure_engagements == 1
        # Draining above the low watermark does not release.
        buffered.drain(4)
        assert buffered.backpressure
        buffered.drain_all()
        assert not buffered.backpressure
        # Re-engaging counts again.
        for i in range(8):
            buffered.on_memory_event(store(0x5000, 0x5000, 8 + i))
        assert buffered.stats.backpressure_engagements == 2


class TestIncrementalReconcile:
    def test_partial_drain_settles_covered_checks(self):
        """A pending immediate check settles as soon as the events that
        were in flight at answer time have drained — not only when the
        queue is fully empty."""
        buffered = BufferedPIFT(CONFIG, capacity=64, drain_batch=2)
        buffered.taint_source(IMEI)
        buffered.on_memory_event(load(0x1000, 0x1003, 0))
        buffered.on_memory_event(store(0x5000, 0x5003, 1))
        assert not buffered.check_immediate(
            AddressRange(0x5000, 0x5003), sink_name="sms"
        )
        # More traffic arrives after the check.
        for i in range(6):
            buffered.on_memory_event(load(0x8000, 0x8003, 10 + i))
        # Partial drain: exactly the two in-flight events retire.
        buffered.drain(2)
        assert buffered.queue_depth == 6
        assert buffered.stats.stale_negatives == 1
        (late,) = buffered.late_detections
        assert late.sink_name == "sms" and late.events_behind == 2
        assert not late.degraded

    def test_forced_drops_still_settle_pending_checks(self):
        """DROP_OLDEST retires events without draining them; the barrier
        accounting must still settle the pending check."""
        buffered = BufferedPIFT(CONFIG, capacity=4, drain_batch=2,
                                policy=OverflowPolicy.DROP_OLDEST)
        buffered.taint_source(IMEI)
        buffered.on_memory_event(load(0x1000, 0x1003, 0))
        buffered.on_memory_event(store(0x5000, 0x5003, 1))
        assert not buffered.check_immediate(
            AddressRange(0x5000, 0x5003), sink_name="sms"
        )
        # Overflow forces the two in-flight events out of the queue.
        for i in range(6):
            buffered.on_memory_event(load(0x8000, 0x8003, 10 + i))
        assert buffered.stats.forced_drops >= 2
        buffered.drain(1)
        # The check settled (its events were force-dropped, the tracker
        # never saw the store, so the answer stays clean) — no leak
        # report, but also no stuck pending entry.
        assert buffered._pending_immediate == []


class TestDegradedConfidence:
    def test_clean_verdict_flags_known_loss(self):
        buffered = BufferedPIFT(CONFIG, capacity=4, drain_batch=2,
                                policy=OverflowPolicy.DROP_OLDEST)
        buffered.taint_source(IMEI)
        for i in range(10):
            buffered.on_memory_event(store(0x5000 + i, 0x5000 + i, i))
        verdict = buffered.check_immediate_verdict(
            AddressRange(0x9000, 0x9003), sink_name="sms"
        )
        assert not verdict.tainted
        assert verdict.degraded
        assert verdict.forced_drops == buffered.stats.forced_drops > 0
        assert buffered.stats.degraded_checks == 1

    def test_fault_loss_also_degrades(self):
        plan = FaultPlan(seed=1, rates=FaultRates(event_loss=0.5))
        buffered = BufferedPIFT(CONFIG, capacity=64, faults=plan)
        buffered.taint_source(IMEI)
        for event in leaky_workload(50):
            buffered.on_memory_event(event)
        verdict = buffered.check_immediate_verdict(AddressRange(0x9000, 0x9003))
        assert verdict.degraded
        assert verdict.fault_drops > 0
        assert verdict.forced_drops == 0

    def test_undegraded_verdict_is_clean(self):
        buffered = BufferedPIFT(CONFIG, capacity=64)
        buffered.taint_source(IMEI)
        buffered.on_memory_event(load(0x1000, 0x1003, 0))
        verdict = buffered.check_immediate_verdict(AddressRange(0x9000, 0x9003))
        assert not verdict.degraded
        assert buffered.stats.degraded_checks == 0

    def test_late_detection_carries_degraded_flag(self):
        plan = FaultPlan(seed=1, rates=FaultRates(event_loss=0.3))
        buffered = BufferedPIFT(CONFIG, capacity=1024, faults=plan)
        buffered.taint_source(IMEI)
        for event in leaky_workload(100):
            buffered.on_memory_event(event)
        buffered.check_immediate(AddressRange(0x5000, 0x5003), sink_name="s")
        buffered.drain_all()
        if buffered.late_detections:
            assert all(late.degraded for late in buffered.late_detections)

    def test_blocking_check_counts_degraded(self):
        buffered = BufferedPIFT(CONFIG, capacity=4, drain_batch=2,
                                policy=OverflowPolicy.DROP_NEWEST)
        buffered.taint_source(IMEI)
        for i in range(10):
            buffered.on_memory_event(store(0x5000, 0x5003, i))
        buffered.check_blocking(AddressRange(0x5000, 0x5003))
        assert buffered.stats.degraded_checks == 1


class TestSnapshotRestore:
    def test_tracker_round_trip_equals_uninterrupted_run(self):
        events = leaky_workload(120)
        straight = PIFTTracker(CONFIG)
        straight.taint_source(IMEI)
        straight.run(events)

        first = PIFTTracker(CONFIG)
        first.taint_source(IMEI)
        first.run(events[:47])
        snap = json.loads(json.dumps(first.snapshot()))
        second = PIFTTracker(CONFIG)
        second.restore(snap)
        second.run(events[47:])
        assert second.stats.as_dict() == straight.stats.as_dict()
        assert second.snapshot() == straight.snapshot()

    def test_bounded_cache_round_trip(self):
        cache = BoundedRangeCache(4, policy=EvictionPolicy.SPILL)
        for i in range(8):
            cache.add(AddressRange(0x1000 * (i + 1), 0x1000 * (i + 1) + 0xF))
        cache.overlaps(AddressRange(0x1000, 0x1003))
        snap = json.loads(json.dumps(cache.snapshot()))
        clone = BoundedRangeCache(4, policy=EvictionPolicy.SPILL)
        clone.restore(snap)
        assert clone.snapshot() == cache.snapshot()
        probe = AddressRange(0x5000, 0x500F)
        assert clone.overlaps(probe) == cache.overlaps(probe)

    def test_bounded_cache_rejects_geometry_mismatch(self):
        cache = BoundedRangeCache(4)
        other = BoundedRangeCache(8)
        with pytest.raises(ValueError, match="geometry"):
            other.restore(cache.snapshot())

    def test_buffered_round_trip_mid_stream(self):
        events = leaky_workload(100)
        straight = BufferedPIFT(CONFIG, capacity=32, drain_batch=8)
        straight.taint_source(IMEI)
        for event in events:
            straight.on_memory_event(event)
        straight.drain_all()

        first = BufferedPIFT(CONFIG, capacity=32, drain_batch=8)
        first.taint_source(IMEI)
        for event in events[:63]:
            first.on_memory_event(event)
        first.check_immediate(AddressRange(0x9000, 0x9003), sink_name="s")
        snap = json.loads(json.dumps(first.snapshot()))
        clone = BufferedPIFT(CONFIG, capacity=32, drain_batch=8)
        clone.restore(snap)
        for event in events[63:]:
            clone.on_memory_event(event)
        clone.drain_all()
        # The resumed run converges to the uninterrupted tracker state,
        # and both halves agree on the buffer accounting.
        assert clone.tracker.stats.as_dict() == straight.tracker.stats.as_dict()
        assert clone.stats.events_buffered == straight.stats.events_buffered
        assert clone.queue_depth == 0 and clone.spill_depth == 0

    def test_buffered_snapshot_preserves_pending_checks(self):
        buffered = BufferedPIFT(CONFIG, capacity=64)
        buffered.taint_source(IMEI)
        buffered.on_memory_event(load(0x1000, 0x1003, 0))
        buffered.on_memory_event(store(0x5000, 0x5003, 1))
        buffered.check_immediate(AddressRange(0x5000, 0x5003), sink_name="sms")
        snap = json.loads(json.dumps(buffered.snapshot()))
        clone = BufferedPIFT(CONFIG, capacity=64)
        clone.restore(snap)
        clone.drain_all()
        assert clone.stats.stale_negatives == 1
        (late,) = clone.late_detections
        assert late.sink_name == "sms"


class TestDeviceIntegration:
    def test_device_threads_fault_plan(self):
        from repro.apps.malware import sample_by_name, run_sample
        from repro.android.device import AndroidDevice

        sample = sample_by_name("LGRoot")
        plan = FaultPlan(seed=1, rates=FaultRates(event_loss=0.05))
        device = AndroidDevice(faults=plan)
        device.install(sample.build(device, 16))
        device.run(sample.entry)
        assert device.fault_stats is not None
        assert device.fault_stats.events_dropped > 0
        # The recorded trace stays pristine: replaying it fault-free sees
        # every event the CPU emitted.
        assert len(device.recorded.trace) == device.fault_stats.events_seen

    def test_device_without_plan_has_no_fault_stats(self):
        from repro.android.device import AndroidDevice

        assert AndroidDevice().fault_stats is None


class TestDegradationAnalysis:
    def test_faulted_replay_zero_plan_matches_replay(self):
        from repro.core import PAPER_DEFAULT
        from repro.apps.malware import record_lgroot_trace
        from repro.analysis.replay import replay
        from repro.analysis.degradation import faulted_replay

        recorded = record_lgroot_trace(work=24)
        baseline = replay(recorded, PAPER_DEFAULT)
        faulted, stats = faulted_replay(recorded, PAPER_DEFAULT, FaultPlan(seed=6))
        assert stats.total_injections == 0
        assert faulted.stats.as_dict() == baseline.stats.as_dict()
        assert faulted.sink_outcomes == baseline.sink_outcomes

    def test_degradation_curve_shape(self):
        from repro.core import PAPER_MALWARE_MINIMUM
        from repro.analysis.degradation import (
            degradation_curve,
            record_malware_runs,
        )

        runs = record_malware_runs(work=8)
        curve = degradation_curve(
            [], PAPER_MALWARE_MINIMUM, rates=(0.0, 0.1), seed=1,
            malware_runs=runs,
        )
        assert [p.rate for p in curve.points] == [0.0, 0.1]
        assert curve.points[0].malware_detected == 7
        assert curve.points[0].malware_total == 7
        payload = json.loads(json.dumps(curve.as_dict()))
        assert payload["site"] == "event_loss"

    def test_latency_table_lossless_row_is_clean(self):
        from repro.core import PAPER_DEFAULT
        from repro.apps.malware import record_lgroot_trace
        from repro.analysis.degradation import detection_latency_table

        rows = detection_latency_table(
            record_lgroot_trace(work=24), PAPER_DEFAULT,
            rates=(0.0,), seed=1,
        )
        (row,) = rows
        assert row.forced_drops == 0
        assert row.degraded_checks == 0
        assert row.missed == 0


class TestFaultsCLI:
    def test_faults_json_output(self, capsys):
        from repro.__main__ import main

        code = main([
            "faults", "--suite", "malware", "--rates", "0,0.1",
            "--work", "8", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "faults"
        points = payload["curve"]["points"]
        assert [p["rate"] for p in points] == [0.0, 0.1]
        assert points[0]["malware_detected"] == 7
        # Satellite: forced_drops is surfaced through the JSON output.
        assert all("forced_drops" in row for row in payload["latency"])

    def test_faults_help(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(["faults", "--help"])
        assert exc.value.code == 0
        assert "--fault-seed" in capsys.readouterr().out

    def test_bad_spec_raises(self):
        from repro.__main__ import main

        with pytest.raises(ValueError):
            main(["faults", "--suite", "malware", "--rates", "0",
                  "--faults", "bogus=1"])

"""Unit tests for the multi-colour taint layer.

Covers the colour registry and mask-carrying range set
(``repro.core.colours``), the single-pass coloured provenance wrapper
(``repro.core.provenance.ColourProvenance``), coloured buffered tracking
(``repro.core.buffered``), suite attribution
(``repro.analysis.provenance``), and the colour fields' journey through
the sweep journal and the run report.  The cross-strategy equivalences
live in ``tests/property/test_colour_parity.py``; this file pins the
small exact behaviours those properties quantify over.
"""

import pytest

from repro.core.colours import ColourRangeSet, ColourSpace
from repro.core.config import PIFTConfig
from repro.core.events import EventColumns, load, store
from repro.core.ranges import AddressRange
from repro.core.tracker import ColourTracker

IMEI, GPS, SMS = 0b001, 0b010, 0b100


def triples(crs):
    return list(crs.items())


class TestColourSpace:
    def test_registration_order_assigns_bits(self):
        space = ColourSpace()
        assert space.register("imei") == 1
        assert space.register("location") == 2
        assert space.register("imei") == 1  # idempotent
        assert space.names == ("imei", "location")
        assert space.mask_of("location") == 2
        assert "imei" in space and "sms" not in space

    def test_names_for_is_registration_ordered(self):
        space = ColourSpace(("a", "b", "c"))
        assert space.names_for(0b101) == ("a", "c")
        assert space.names_for(0) == ()

    def test_overflow_aliases_last_bit(self):
        space = ColourSpace()
        for i in range(70):
            space.register(f"s{i}")
        top = 1 << (ColourSpace.MAX_COLOURS - 1)
        assert space.mask_of("s63") == top
        assert space.mask_of("s69") == top  # aliased, not an error
        # The union projection stays exact; attribution degrades to the
        # overflow bucket (every aliased name reports).
        overflow_names = space.names_for(top)
        assert "s63" in overflow_names and "s69" in overflow_names

    def test_snapshot_round_trip(self):
        space = ColourSpace(("x", "y"))
        clone = ColourSpace.from_snapshot(space.snapshot())
        assert clone.names == space.names
        assert clone.mask_of("y") == space.mask_of("y")


class TestColourRangeSetAdd:
    def test_gap_insert_and_equal_mask_coalesce(self):
        crs = ColourRangeSet()
        crs.add(AddressRange(0, 9), IMEI)
        crs.add(AddressRange(20, 29), IMEI)
        assert triples(crs) == [(0, 9, IMEI), (20, 29, IMEI)]
        # Bridging gap insert with equal masks joins both neighbours.
        crs.add(AddressRange(10, 19), IMEI)
        assert triples(crs) == [(0, 29, IMEI)]
        assert crs.total_size == 30

    def test_gap_insert_between_different_masks_stays_separate(self):
        crs = ColourRangeSet()
        crs.add(AddressRange(0, 9), IMEI)
        crs.add(AddressRange(20, 29), GPS)
        crs.add(AddressRange(10, 19), SMS)
        assert triples(crs) == [(0, 9, IMEI), (10, 19, SMS), (20, 29, GPS)]

    def test_absorbed_add_is_a_version_noop(self):
        crs = ColourRangeSet()
        crs.add(AddressRange(0, 99), IMEI | GPS)
        version = crs._version
        starts_before, _ = crs.as_arrays()
        crs.add(AddressRange(10, 19), IMEI)  # subset mask, fully covered
        assert crs._version == version  # numpy mirrors stay cached
        starts_after, _ = crs.as_arrays()
        assert starts_after is starts_before
        assert triples(crs) == [(0, 99, IMEI | GPS)]

    def test_overlapping_add_ors_and_splits_at_boundaries(self):
        crs = ColourRangeSet()
        crs.add(AddressRange(0, 99), IMEI)
        crs.add(AddressRange(40, 59), GPS)
        assert triples(crs) == [
            (0, 39, IMEI), (40, 59, IMEI | GPS), (60, 99, IMEI),
        ]
        assert crs.total_size == 100  # coverage unchanged by colouring

    def test_add_straddling_multiple_ranges_fills_gaps(self):
        crs = ColourRangeSet()
        crs.add(AddressRange(0, 9), IMEI)
        crs.add(AddressRange(30, 39), GPS)
        crs.add(AddressRange(5, 34), SMS)
        assert triples(crs) == [
            (0, 4, IMEI),
            (5, 9, IMEI | SMS),
            (10, 29, SMS),
            (30, 34, GPS | SMS),
            (35, 39, GPS),
        ]

    def test_zero_mask_rejected(self):
        with pytest.raises(ValueError):
            ColourRangeSet().add(AddressRange(0, 1), 0)

    def test_add_many_extent_covers_batch(self):
        crs = ColourRangeSet()
        extent = crs.add_many([(10, 19), (40, 49)], IMEI)
        assert extent == (10, 49)
        assert crs.add_many([], IMEI) is None

    def test_add_many_steps_reports_per_step_counts(self):
        # One add spanning two gapped differently-masked ranges raises
        # the range count by 3 (splits at both colour boundaries) — no
        # static per-add budget bounds this, which is why the dense
        # executor's high-water bookkeeping needs the per-step counts.
        crs = ColourRangeSet()
        crs.add(AddressRange(1, 1), IMEI)
        crs.add(AddressRange(3, 3), GPS)
        extent, steps = crs.add_many_steps([(0, 4)], SMS)
        assert extent == (0, 4)
        assert steps == [(5, 5)]
        assert triples(crs) == [
            (0, 0, SMS),
            (1, 1, IMEI | SMS),
            (2, 2, SMS),
            (3, 3, GPS | SMS),
            (4, 4, SMS),
        ]
        assert crs.add_many_steps([], SMS) == (None, [])


class TestColourRangeSetRemove:
    def test_remove_is_colour_blind_and_keeps_remnant_masks(self):
        crs = ColourRangeSet()
        crs.add(AddressRange(0, 49), IMEI)
        crs.add(AddressRange(50, 99), GPS)
        crs.remove(AddressRange(40, 59))  # straddles both colours
        assert triples(crs) == [(0, 39, IMEI), (60, 99, GPS)]
        assert crs.total_size == 80

    def test_remove_many_reports_per_step(self):
        crs = ColourRangeSet()
        crs.add(AddressRange(0, 99), IMEI)
        steps = crs.remove_many([(10, 19), (200, 300), (10, 19)])
        assert [s[0] for s in steps] == [True, False, False]
        assert steps[0][1] == 90  # total after the split
        assert steps[0][2] == 2   # split grew the range count

    def test_mask_overlapping_unions(self):
        crs = ColourRangeSet()
        crs.add(AddressRange(0, 9), IMEI)
        crs.add(AddressRange(10, 19), GPS)
        assert crs.mask_overlapping(AddressRange(5, 15)) == IMEI | GPS
        assert crs.mask_overlapping(AddressRange(500, 600)) == 0


class TestColouredDenseHighWater:
    """Regression: the coloured dense executor's bulk taint commit once
    guarded per-step ``max_range_count`` bookkeeping with a static
    +2-per-add budget, but a coloured add spanning k gapped
    differently-masked ranges raises the count by k+1 — the vectorised
    run under-recorded the high-water mark the scalar loop saw."""

    def build(self, config):
        tracker = ColourTracker(config)
        tracker.taint_source(AddressRange(201, 201), colour="a")
        tracker.taint_source(AddressRange(203, 203), colour="b")
        tracker.taint_source(AddressRange(300, 310), colour="c")
        tracker.taint_source(AddressRange(400, 400), colour="d")
        tracker.taint_source(AddressRange(402, 402), colour="e")
        return tracker

    def test_splitting_bulk_add_records_range_count_high_water(self):
        config = PIFTConfig(
            window_size=50,
            max_propagations=8,
            untainting=True,
            vectorized=True,
        )
        # Five gapped source ranges set max_range_count = 5; the two
        # overwrites drop the live count back to 3, so the splitting add
        # below starts exactly 2 under the high-water mark — the case
        # the old +2-per-add budget wrongly waved through the fast path.
        events = [
            store(400, 400, 0),  # out-of-window overwrite: untaints "d"
            store(402, 402, 1),  # untaints "e"
            load(300, 310, 2),   # tainted load opens a window, mask "c"
            # In-window taint spanning [201]#a and [203]#b: one add, +3
            # ranges ([200]c [201]ac [202]c [203]bc [204]c) -> count 6.
            store(200, 204, 3),
        ]
        # Pad the same-PID run past DENSE_MIN so the dense executor (not
        # the scalar fallback loop) commits the mutations above.
        events += [
            load(10_000 + 16 * i, 10_000 + 16 * i + 3, 4 + i)
            for i in range(60)
        ]
        columns = EventColumns.from_events(events)
        scalar = self.build(config)
        scalar.observe_columns_scalar(columns)
        vector = self.build(config)
        vector.observe_columns_vectorized(columns)
        assert scalar.stats.max_range_count == 6
        assert vector.stats.as_dict() == scalar.stats.as_dict()


class TestColourRangeSetPersistence:
    def test_snapshot_restore_round_trip_with_masks(self):
        crs = ColourRangeSet()
        crs.add(AddressRange(0, 9), IMEI)
        crs.add(AddressRange(20, 29), GPS)
        clone = ColourRangeSet()
        clone.restore(crs.snapshot())
        assert clone == crs
        assert clone.total_size == crs.total_size

    def test_restore_of_maskless_snapshot_defaults_to_one_colour(self):
        # Snapshots written by colour-free builds carry no masks key.
        clone = ColourRangeSet()
        clone.restore({"starts": [0, 20], "ends": [9, 29]})
        assert triples(clone) == [(0, 9, 1), (20, 29, 1)]

    def test_copy_is_independent(self):
        crs = ColourRangeSet()
        crs.add(AddressRange(0, 9), IMEI)
        clone = crs.copy()
        clone.add(AddressRange(100, 109), GPS)
        assert len(crs) == 1 and len(clone) == 2

    def test_drop_nth_range_updates_total(self):
        crs = ColourRangeSet()
        crs.add(AddressRange(0, 9), IMEI)
        crs.add(AddressRange(20, 29), GPS)
        victim = crs.drop_nth_range(1)
        assert victim == AddressRange(20, 29)
        assert crs.total_size == 10


def _two_source_events():
    """imei flows into scratch in-window; gps never flows anywhere."""
    from repro.core.events import load, store

    return [
        load(0, 7, 10),          # tainted load (imei)
        store(1_000, 1_007, 12),  # in-window: tainted with imei's mask
        store(2_000, 2_007, 500),  # far out of window: clean
    ]


class TestColourProvenance:
    def test_single_pass_attribution(self):
        from repro.core.provenance import ColourProvenance

        prov = ColourProvenance(
            PIFTConfig(window_size=13, max_propagations=3)
        )
        prov.taint_source("imei", AddressRange(0, 15))
        prov.taint_source("gps", AddressRange(64, 79))
        prov.run(_two_source_events())
        assert prov.labels() == ["gps", "imei"]
        assert prov.check(
            AddressRange(1_000, 1_007), sink_name="network"
        ) == frozenset({"imei"})
        assert prov.check(AddressRange(2_000, 2_007)) == frozenset()
        assert [leak.sink_name for leak in prov.leaks] == ["network"]
        assert prov.leaks[0].labels == frozenset({"imei"})
        # sources (32) + the one tainted store (8)
        assert prov.union_tainted_bytes() == 40


class TestColouredBufferedPIFT:
    def _buffered(self, **kwargs):
        from repro.core.buffered import BufferedPIFT

        return BufferedPIFT(
            PIFTConfig(window_size=13, max_propagations=3),
            capacity=64,
            drain_batch=16,
            **kwargs,
        )

    def test_colour_label_on_plain_tracker_raises(self):
        buffered = self._buffered()
        with pytest.raises(ValueError, match="coloured tracker"):
            buffered.taint_source(AddressRange(0, 15), colour="imei")
        with pytest.raises(ValueError, match="coloured tracker"):
            buffered.check_blocking_colours(AddressRange(0, 15))

    def test_blocking_check_attributes_colours(self):
        buffered = self._buffered(colours=ColourSpace())
        buffered.taint_source(AddressRange(0, 15), colour="imei")
        buffered.taint_source(AddressRange(64, 79), colour="gps")
        for event in _two_source_events():
            buffered.on_memory_event(event)
        assert buffered.check_blocking_colours(
            AddressRange(1_000, 1_007)
        ) == ("imei",)
        assert buffered.check_blocking_colours(
            AddressRange(2_000, 2_007)
        ) == ()

    def test_immediate_verdict_and_late_detection_carry_colours(self):
        buffered = self._buffered(colours=ColourSpace())
        buffered.taint_source(AddressRange(0, 15), colour="imei")
        events = _two_source_events()
        for event in events[:2]:
            buffered.on_memory_event(event)
        # Queue is still undrained: the immediate answer is clean, the
        # reconciliation after draining must flag it as a late detection
        # carrying the contributing colour.
        verdict = buffered.check_immediate_verdict(
            AddressRange(1_000, 1_007), sink_name="network"
        )
        assert verdict.colours == ()
        buffered.drain_all()
        assert len(buffered.late_detections) == 1
        late = buffered.late_detections[0]
        assert late.colours == ("imei",)
        settled = buffered.check_immediate_verdict(
            AddressRange(1_000, 1_007), sink_name="network"
        )
        assert settled.tainted is True
        assert settled.colours == ("imei",)

    def test_snapshot_restore_keeps_colours(self):
        buffered = self._buffered(colours=ColourSpace())
        buffered.taint_source(AddressRange(0, 15), colour="imei")
        for event in _two_source_events():
            buffered.on_memory_event(event)
        buffered.drain_all()
        restored = self._buffered(colours=ColourSpace())
        restored.restore(buffered.snapshot())
        assert restored.check_blocking_colours(
            AddressRange(1_000, 1_007)
        ) == ("imei",)


def _suite_of_two_apps():
    from repro.analysis.accuracy import AppRun
    from repro.android.device import (
        RecordedRun, SinkCheck, SourceRegistration,
    )
    from repro.core.events import load, store

    def app(name, source_name, leaks):
        run = RecordedRun()
        run.sources.append(
            SourceRegistration(AddressRange(0, 15), 0, source_name)
        )
        run.trace.append(load(0, 7, 10))
        if leaks:
            run.trace.append(store(1_000, 1_007, 12))
        run.trace.note_instruction(600)
        run.sink_checks.append(
            SinkCheck(AddressRange(1_000, 1_063), 600, "network", "socket")
        )
        return AppRun(name=name, recorded=run, leaks=leaks)

    return [
        app("Leaky1", "imei", True),
        app("Leaky2", "imei", True),
        app("Clean1", "location", False),
    ]


class TestSuiteAttribution:
    CONFIG = PIFTConfig(window_size=13, max_propagations=3)

    def test_attribute_suite_folds_per_colour(self):
        from repro.analysis.provenance import attribute_suite

        suite = attribute_suite(_suite_of_two_apps(), self.CONFIG)
        assert suite.attributed_sink_hits == 2
        table = suite.table
        assert [row.colour for row in table] == ["imei"]
        assert table[0].apps == ["Leaky1", "Leaky2"]
        assert table[0].channels == {"socket": 2}
        payload = suite.as_dict()
        assert payload["attributed_sink_hits"] == 2
        assert payload["colours"][0]["app_count"] == 2
        # Clean apps are omitted from the per-app payload.
        assert [entry["app"] for entry in payload["apps"]] == [
            "Leaky1", "Leaky2",
        ]
        rendered = suite.render()
        assert "imei" in rendered and "socket:2" in rendered

    def test_attribution_agrees_with_plain_verdicts(self):
        from repro.analysis.provenance import attribute_app
        from repro.analysis.replay import replay

        for app in _suite_of_two_apps():
            attribution = attribute_app(app, self.CONFIG)
            plain = replay(app.recorded, self.CONFIG)
            assert attribution.alarm == any(
                o.tainted for o in plain.sink_outcomes
            )

    def test_empty_suite_renders_placeholder(self):
        from repro.analysis.provenance import SuiteAttribution

        assert "no attributed sink hits" in SuiteAttribution(
            config=self.CONFIG
        ).render()


class TestColoursThroughJournalAndReport:
    def _coloured_result(self, tmp_path):
        from repro.analysis.provenance import attribute_suite
        from repro.sweep.engine import CellResult

        suite = attribute_suite(
            _suite_of_two_apps(), TestSuiteAttribution.CONFIG
        )
        return CellResult(
            index=0,
            config=TestSuiteAttribution.CONFIG,
            rate=0.0,
            site="event_loss",
            seed=1,
            state_spec="rangeset",
            colours=suite.as_dict(),
            events_tracked=5,
            duration_seconds=0.25,
            worker=1234,
        )

    def test_journal_round_trips_colours(self, tmp_path):
        from repro.sweep.specs import SweepCell
        from repro.store.journal import RunJournal, cells_fingerprint

        cells = [
            SweepCell(index=0, config=TestSuiteAttribution.CONFIG,
                      colours=True),
        ]
        # The colours marker changes the identity: a colour-on grid must
        # not fingerprint-match a colour-off journal.
        plain_cells = [
            SweepCell(index=0, config=TestSuiteAttribution.CONFIG),
        ]
        assert cells_fingerprint(cells) != cells_fingerprint(plain_cells)
        assert plain_cells[0].key() + ("colours",) == cells[0].key()

        journal = RunJournal.create(
            tmp_path / "run.journal", cells, run_id="runc"
        )
        journal.append(self._coloured_result(tmp_path))
        loaded = RunJournal.load(tmp_path / "run.journal")
        rows = loaded.cell_rows()
        assert rows[0]["colours"]["attributed_sink_hits"] == 2
        result = loaded.completed_results()[0]
        assert result.colours["colours"][0]["colour"] == "imei"
        assert result.as_dict()["colours"] == result.colours

    def test_plain_results_carry_no_colours_key(self, tmp_path):
        from repro.sweep.engine import CellResult
        from repro.store.journal import cell_result_to_record

        plain = CellResult(
            index=0, config=TestSuiteAttribution.CONFIG, rate=0.0,
            site="event_loss", seed=1, state_spec="rangeset",
        )
        assert "colours" not in plain.as_dict()
        assert "colours" not in cell_result_to_record(plain)

    def test_run_report_folds_colour_attribution(self, tmp_path):
        from repro.analysis.report import build_run_report, render_run_report
        from repro.sweep.specs import SweepCell
        from repro.store.journal import RunJournal

        cells = [
            SweepCell(index=0, config=TestSuiteAttribution.CONFIG,
                      colours=True),
        ]
        journal = RunJournal.create(
            tmp_path / "run.journal", cells, run_id="runr"
        )
        journal.append(self._coloured_result(tmp_path))
        report = build_run_report(RunJournal.load(tmp_path / "run.journal"))
        attribution = report["colour_attribution"]
        assert attribution["cells"] == 1
        assert attribution["colours"] == [
            {"colour": "imei", "apps": ["Leaky1", "Leaky2"], "sink_hits": 2},
        ]
        rendered = render_run_report(report)
        assert "leak attribution (1 coloured cells):" in rendered
        assert "imei" in rendered

    def test_run_report_without_coloured_cells_is_none(self, tmp_path):
        from repro.analysis.report import build_run_report
        from repro.sweep.specs import SweepCell
        from repro.store.journal import RunJournal
        from repro.sweep.engine import CellResult

        cells = [SweepCell(index=0, config=TestSuiteAttribution.CONFIG)]
        journal = RunJournal.create(
            tmp_path / "run.journal", cells, run_id="runp"
        )
        journal.append(
            CellResult(
                index=0, config=TestSuiteAttribution.CONFIG, rate=0.0,
                site="event_loss", seed=1, state_spec="rangeset",
            )
        )
        report = build_run_report(RunJournal.load(tmp_path / "run.journal"))
        assert report["colour_attribution"] is None

"""The paper's Figure 4, step by step.

Figure 4 annotates an instruction stream under NT = 2:

    [k+0] ldr  rega, addrL1    <- tainted load: the TW of size NI starts
    [k+p] str  regb, addrS1    <- taint   (1st store in window)
    [k+q] strd regc, addrS2    <- taint   (2nd store in window)
    [k+r] str  regd, addrS3    <- untaint (NT = 2 exhausted)
    [k+s] strh rege, addrS4    <- untaint (outside the TW)
    [k+t] ldrd regf, addrL2    <- non-tainted load (no window restart)
    [k+u] str  regg, addrS5    <- untaint (outside the TW)

    "If NI > t and if the load instruction at [k+t] was a tainted load,
    then the Tainting Window starts over at [k+t]."
"""

import pytest

from repro.core.config import PIFTConfig
from repro.core.events import AccessKind, MemoryAccess, load, store
from repro.core.ranges import AddressRange
from repro.core.tracker import PIFTTracker

L1 = AddressRange(0x1000, 0x1003)  # the tainted source range
L2 = AddressRange(0x7000, 0x7007)  # a clean range (ldrd: 8 bytes)
S1 = AddressRange(0x2000, 0x2003)
S2 = AddressRange(0x2100, 0x2107)  # strd: 8 bytes
S3 = AddressRange(0x2200, 0x2203)
S4 = AddressRange(0x2300, 0x2301)  # strh: 2 bytes
S5 = AddressRange(0x2400, 0x2403)

K = 100  # k
P, Q, R = 2, 5, 8  # p < q < r <= NI
NI = 10
S, T, U = 14, 16, 18  # s, u > NI; t between them


def figure4_stream():
    return [
        load(L1.start, L1.end, K),  # [k+0] tainted load
        store(S1.start, S1.end, K + P),  # [k+p]
        MemoryAccess(AccessKind.STORE, S2, K + Q),  # [k+q] strd
        store(S3.start, S3.end, K + R),  # [k+r]
        MemoryAccess(AccessKind.STORE, S4, K + S),  # [k+s] strh
        MemoryAccess(AccessKind.LOAD, L2, K + T),  # [k+t] ldrd, clean
        store(S5.start, S5.end, K + U),  # [k+u]
    ]


@pytest.fixture
def tracker():
    t = PIFTTracker(PIFTConfig(window_size=NI, max_propagations=2))
    t.taint_source(L1)
    return t


class TestFigure4:
    def test_annotated_outcomes(self, tracker):
        # Pre-taint every store target so the 'untaint' arrows in the
        # figure are observable as actual removals.
        for victim in (S3, S4, S5):
            tracker.taint_source(victim)
        tracker.run(figure4_stream())
        assert tracker.check(S1), "[k+p] must be tainted (1st in TW)"
        assert tracker.check(S2), "[k+q] must be tainted (2nd in TW)"
        assert not tracker.check(S3), "[k+r] untainted: NT=2 exhausted"
        assert not tracker.check(S4), "[k+s] untainted: outside the TW"
        assert not tracker.check(S5), "[k+u] untainted: outside the TW"

    def test_clean_load_does_not_restart_window(self, tracker):
        tracker.run(figure4_stream())
        # The ldrd at [k+t] read clean memory: no window, so [k+u] is not
        # tainted even though u - t = 2 <= NI.
        assert not tracker.check(S5)

    def test_tainted_load_at_t_restarts_window(self):
        # The figure's closing remark: if [k+t] had been a tainted load,
        # the window starts over and [k+u] becomes tainted.
        tracker = PIFTTracker(PIFTConfig(window_size=NI, max_propagations=2))
        tracker.taint_source(L1)
        tracker.taint_source(L2)  # now [k+t] is a tainted load
        tracker.run(figure4_stream())
        assert tracker.check(S5)

    def test_taint_counts_match_figure(self, tracker):
        stats = tracker.run(figure4_stream())
        assert stats.taint_operations == 2  # S1 and S2
        assert stats.tainted_loads == 1  # only [k+0]
        assert stats.loads_observed == 2
        assert stats.stores_observed == 5

    def test_event_widths_as_drawn(self):
        # The figure's stores are 1, 2, 4, > 4 bytes long "depending on
        # the specific store instruction"; our events carry exact ranges.
        assert S2.size == 8  # strd
        assert S4.size == 2  # strh
        assert S1.size == 4  # str

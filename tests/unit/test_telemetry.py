"""Unit tests for the repro.telemetry subsystem.

Covers registry/instrument semantics, histogram percentile math on known
distributions, nested span timing, the JSONL writer round-trip, the
critical "telemetry changes nothing" parity guarantee for the tracker,
and the CLI surface (``--telemetry`` / ``--metrics-dump`` / ``--json``).
"""

import io
import json

import pytest

from repro.core.config import PIFTConfig
from repro.core.events import load, store
from repro.core.ranges import AddressRange
from repro.core.tracker import PIFTTracker
from repro.core.buffered import BufferedPIFT
from repro.telemetry import (
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Telemetry,
    TelemetryWriter,
    read_events,
    snapshot_json,
    to_prometheus_text,
)
from repro.__main__ import main


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_semantics(self):
        registry = MetricsRegistry()
        counter = registry.counter("tracker.events", "events seen")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_semantics(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("tracker.tainted_bytes", "bytes")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12
        assert gauge.max_value == 15
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.max_value == 15  # high-water mark survives

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("cpu.instructions", "n")
        b = registry.counter("cpu.instructions", "n")
        assert a is b

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("vm.bytecodes", "n")
        with pytest.raises(TypeError):
            registry.gauge("vm.bytecodes", "n")

    def test_family_is_prefix_before_first_dot(self):
        registry = MetricsRegistry()
        registry.counter("tracker.events", "n")
        registry.counter("tracker.loads", "n")
        registry.gauge("buffer.queue_depth", "n")
        assert registry.families() == ["buffer", "tracker"]
        assert [m.name for m in registry.family("tracker")] == [
            "tracker.events",
            "tracker.loads",
        ]

    def test_as_dict_nests_by_family(self):
        registry = MetricsRegistry()
        registry.counter("tracker.events", "n").inc(3)
        snapshot = registry.as_dict()
        assert snapshot["tracker"]["tracker.events"]["value"] == 3
        assert snapshot["tracker"]["tracker.events"]["kind"] == "counter"

    def test_labels_key_distinct_series(self):
        registry = MetricsRegistry()
        plain = registry.counter("sweep.cells", "n")
        labelled = registry.counter("sweep.cells", "n",
                                    labels={"worker_id": "3"})
        assert plain is not labelled
        assert registry.counter(
            "sweep.cells", labels={"worker_id": "3"}
        ) is labelled
        plain.inc(2)
        labelled.inc(5)
        assert registry.get("sweep.cells").value == 2
        assert registry.get("sweep.cells", {"worker_id": "3"}).value == 5

    def test_labelled_series_in_snapshot(self):
        from repro.telemetry import labeled_name

        registry = MetricsRegistry()
        registry.counter("sweep.cells", "n",
                         labels={"worker_id": "3"}).inc(1)
        key = labeled_name("sweep.cells", {"worker_id": "3"})
        assert key == "sweep.cells{worker_id=3}"
        entry = registry.as_dict()["sweep"][key]
        assert entry["labels"] == {"worker_id": "3"}

    def test_null_registry_is_inert(self):
        registry = NullRegistry()
        counter = registry.counter("tracker.events", "n")
        counter.inc(100)
        gauge = registry.gauge("tracker.tainted_bytes", "n")
        gauge.set(5)
        histogram = registry.histogram("span.x", "s")
        histogram.observe(1.0)
        assert registry.as_dict() == {}


# ---------------------------------------------------------------------------
# Histogram percentile math
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_counts_land_in_correct_buckets(self):
        h = Histogram("t.h", "test", buckets=[1.0, 10.0, 100.0])
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        d = h.as_dict()
        assert d["count"] == 4
        assert d["sum"] == pytest.approx(555.5)
        # Cumulative (Prometheus-style) bucket counts.
        assert d["buckets"] == {"1.0": 1, "10.0": 2, "100.0": 3, "+Inf": 4}

    def test_percentiles_on_uniform_distribution(self):
        # 100 samples spread uniformly over (0, 100) with bucket bounds
        # every 10: percentiles should come back within a bucket's width.
        h = Histogram("t.h", "test", buckets=[float(b) for b in range(10, 101, 10)])
        for i in range(100):
            h.observe(i + 0.5)
        assert h.percentile(50) == pytest.approx(50.0, abs=10.0)
        assert h.percentile(90) == pytest.approx(90.0, abs=10.0)
        assert h.percentile(99) == pytest.approx(99.0, abs=10.0)

    def test_percentile_interpolates_within_bucket(self):
        h = Histogram("t.h", "test", buckets=[10.0, 20.0])
        for _ in range(10):
            h.observe(15.0)  # all samples in the (10, 20] bucket
        p50 = h.percentile(50)
        assert 10.0 <= p50 <= 20.0

    def test_min_max_track_exact_extremes(self):
        h = Histogram("t.h", "test", buckets=[1.0])
        h.observe(0.25)
        h.observe(7.5)
        d = h.as_dict()
        assert d["min"] == 0.25
        assert d["max"] == 7.5

    def test_empty_histogram(self):
        h = Histogram("t.h", "test", buckets=DEFAULT_TIME_BUCKETS)
        assert h.percentile(50) == 0.0
        assert h.as_dict()["count"] == 0


# ---------------------------------------------------------------------------
# JSONL writer
# ---------------------------------------------------------------------------


class TestWriter:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetryWriter(path) as writer:
            writer.emit("taint", pid=0, index=3, start=100, size=4)
            writer.emit("untaint", pid=1, index=9, start=200, size=8)
        events = read_events(str(path))
        assert [e["type"] for e in events] == ["taint", "untaint"]
        assert events[0]["seq"] == 0 and events[1]["seq"] == 1
        assert events[1]["pid"] == 1 and events[1]["size"] == 8
        # Timestamps are monotonic, relative to writer creation.
        assert 0 <= events[0]["t"] <= events[1]["t"]

    def test_every_line_is_standalone_json(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetryWriter(path) as writer:
            for i in range(100):
                writer.emit("x", i=i)
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 100
        for line in lines:
            json.loads(line)

    def test_buffering_defers_then_flushes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        writer = TelemetryWriter(path, buffer_lines=1000)
        writer.emit("x")
        assert path.read_text() == ""  # still buffered
        writer.flush()
        assert len(path.read_text().strip().split("\n")) == 1
        writer.close()

    def test_emit_after_close_raises(self, tmp_path):
        writer = TelemetryWriter(tmp_path / "e.jsonl")
        writer.close()
        with pytest.raises(ValueError):
            writer.emit("x")


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


class TestSpans:
    def test_nested_spans_record_depth_and_parent(self):
        buffer = io.StringIO()
        with Telemetry(writer=TelemetryWriter(buffer)) as telemetry:
            with telemetry.span("outer"):
                with telemetry.span("inner", detail=1):
                    pass
        events = read_events(buffer)
        # Inner closes first in the stream.
        inner, outer = events
        assert inner["name"] == "inner" and inner["depth"] == 1
        assert inner["parent"] == "outer" and inner["detail"] == 1
        assert outer["name"] == "outer" and outer["depth"] == 0
        assert outer["parent"] is None
        assert outer["duration_us"] >= inner["duration_us"]

    def test_span_observes_duration_histogram(self):
        telemetry = Telemetry()
        with telemetry.span("work"):
            pass
        with telemetry.span("work"):
            pass
        snapshot = telemetry.snapshot()
        assert snapshot["span"]["span.work"]["count"] == 2

    def test_span_records_error_flag(self):
        buffer = io.StringIO()
        telemetry = Telemetry(writer=TelemetryWriter(buffer))
        with pytest.raises(RuntimeError):
            with telemetry.span("bad"):
                raise RuntimeError("boom")
        telemetry.close()
        (event,) = read_events(buffer)
        assert event["error"] == "RuntimeError"

    def test_disabled_hub_spans_are_noops(self):
        telemetry = Telemetry.disabled()
        with telemetry.span("x"):
            pass
        assert telemetry.snapshot() == {}


# ---------------------------------------------------------------------------
# Tracker parity: telemetry must not change results
# ---------------------------------------------------------------------------


def _workload():
    events = [load(0, 3, 1)]
    for k in range(2, 60):
        if k % 7 == 0:
            events.append(load(k * 8, k * 8 + 3, k))
        elif k % 11 == 0:
            events.append(load(0, 3, k))  # re-tainted load
        else:
            events.append(store(1000 + k * 4, 1003 + k * 4, k))
    events.append(store(1008, 1011, 120))  # far out-of-window untaint
    return events


class TestTrackerParity:
    def test_stats_identical_with_telemetry_on_and_off(self):
        config = PIFTConfig(13, 3)
        plain = PIFTTracker(config)
        buffer = io.StringIO()
        telemetry = Telemetry(writer=TelemetryWriter(buffer))
        instrumented = PIFTTracker(config, telemetry=telemetry)
        for tracker in (plain, instrumented):
            tracker.taint_source(AddressRange(0, 3))
            tracker.run(_workload())
        verdict_plain = plain.check(AddressRange(1000, 1200))
        verdict_instrumented = instrumented.check(AddressRange(1000, 1200))
        telemetry.close()
        assert plain.stats.as_dict() == instrumented.stats.as_dict()
        assert verdict_plain == verdict_instrumented
        assert len(read_events(buffer)) > 0  # telemetry did actually fire

    def test_event_stream_mirrors_stats(self):
        buffer = io.StringIO()
        telemetry = Telemetry(writer=TelemetryWriter(buffer))
        tracker = PIFTTracker(PIFTConfig(13, 3), telemetry=telemetry)
        tracker.taint_source(AddressRange(0, 3))
        tracker.run(_workload())
        telemetry.close()
        events = read_events(buffer)
        by_type = {}
        for event in events:
            by_type.setdefault(event["type"], []).append(event)
        assert len(by_type["taint"]) == tracker.stats.taint_operations
        assert len(by_type["untaint"]) == tracker.stats.untaint_operations
        assert len(by_type["source_taint"]) == 1
        assert len(by_type["window_open"]) >= 1
        tracker_metrics = telemetry.snapshot()["tracker"]
        assert (
            tracker_metrics["tracker.events"]["value"]
            == tracker.stats.loads_observed + tracker.stats.stores_observed
        )
        assert (
            tracker_metrics["tracker.taint_ops"]["value"]
            == tracker.stats.taint_operations
        )

    def test_disabled_tracker_has_seed_methods(self):
        tracker = PIFTTracker(PIFTConfig(13, 3))
        # No instance-level overrides: the hot path is the class methods.
        assert "observe" not in tracker.__dict__
        assert "taint_source" not in tracker.__dict__
        assert "check" not in tracker.__dict__

    def test_reset_clears_state_but_keeps_wiring(self):
        telemetry = Telemetry()
        tracker = PIFTTracker(PIFTConfig(13, 3), telemetry=telemetry)
        tracker.taint_source(AddressRange(0, 3))
        tracker.run(_workload())
        assert tracker.stats.instructions_observed > 0
        tracker.reset()
        assert tracker.stats.instructions_observed == 0
        assert tracker.tainted_bytes == 0
        assert tracker.range_count == 0
        # Wiring survives: instrumented observe is still bound.
        assert "observe" in tracker.__dict__


class TestStatsAsDict:
    def test_tracker_stats_as_dict_round_trips_json(self):
        tracker = PIFTTracker(PIFTConfig(13, 3), record_timeline=True)
        tracker.taint_source(AddressRange(0, 3))
        tracker.run(_workload())
        d = json.loads(json.dumps(tracker.stats.as_dict()))
        assert d["loads_observed"] == tracker.stats.loads_observed
        assert d["total_operations"] == tracker.stats.total_operations
        assert len(d["timeline"]) == len(tracker.stats.timeline)

    def test_buffer_stats_as_dict(self):
        buffered = BufferedPIFT(PIFTConfig(13, 3))
        for event in _workload():
            buffered.on_memory_event(event)
        buffered.drain_all()
        d = buffered.stats.as_dict()
        assert d["events_buffered"] == len(_workload())
        assert d["drains"] >= 1


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestExporters:
    def test_snapshot_json_parses(self):
        telemetry = Telemetry().preregister_standard()
        telemetry.metrics.counter("tracker.events", "n").inc(7)
        parsed = json.loads(snapshot_json(telemetry.metrics))
        assert parsed["tracker"]["tracker.events"]["value"] == 7
        for family in ("tracker", "buffer", "cpu", "vm", "manager"):
            assert family in parsed

    def test_prometheus_text_format(self):
        telemetry = Telemetry()
        telemetry.metrics.counter("tracker.events", "events seen").inc(3)
        telemetry.metrics.gauge("buffer.queue_depth", "depth").set(9)
        telemetry.metrics.histogram(
            "span.drain", "drain time", buckets=[0.1, 1.0]
        ).observe(0.5)
        text = to_prometheus_text(telemetry.metrics)
        assert "# TYPE pift_tracker_events counter" in text
        assert "pift_tracker_events_total 3" in text
        assert "pift_buffer_queue_depth 9" in text
        assert 'pift_span_drain_bucket{le="1.0"} 1' in text
        assert 'pift_span_drain_bucket{le="+Inf"} 1' in text
        assert "pift_span_drain_count 1" in text

    def test_prometheus_label_rendering_and_escaping(self):
        from repro.telemetry import escape_label_value

        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        telemetry = Telemetry()
        telemetry.metrics.counter(
            "sweep.cells", "n", labels={"site": 'we"ird\n\\'}
        ).inc(1)
        text = to_prometheus_text(telemetry.metrics)
        assert 'pift_sweep_cells_total{site="we\\"ird\\n\\\\"} 1' in text

    def test_prometheus_help_type_once_per_labelled_family(self):
        telemetry = Telemetry()
        m = telemetry.metrics
        m.histogram("sweep.cell.duration_seconds", "cell wall time",
                    buckets=[1.0]).observe(0.5)
        m.histogram("sweep.cell.duration_seconds", "cell wall time",
                    buckets=[1.0], labels={"worker_id": "7"}).observe(0.5)
        text = to_prometheus_text(telemetry.metrics)
        name = "pift_sweep_cell_duration_seconds"
        assert text.count(f"# TYPE {name} histogram") == 1
        assert text.count(f"# HELP {name} ") == 1
        assert f'{name}_bucket{{le="1.0"}} 1' in text
        assert f'{name}_bucket{{le="1.0",worker_id="7"}} 1' in text
        assert f'{name}_sum{{worker_id="7"}}' in text


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCLI:
    def test_malware_json_flag(self, capsys):
        assert main(["malware", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "malware"
        assert payload["detected"] == payload["total"] == len(payload["samples"])

    def test_malware_telemetry_and_metrics(self, tmp_path, capsys):
        stream = tmp_path / "run.jsonl"
        assert main([
            "malware", "--json", "--telemetry", str(stream), "--metrics-dump",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        families = set(payload["metrics"].keys())
        assert {"tracker", "buffer", "cpu", "vm", "manager"} <= families
        events = read_events(str(stream))
        assert events, "telemetry stream should not be empty"
        types = {event["type"] for event in events}
        assert "sink_check" in types and "source_register" in types

    def test_suite_json_flag(self, capsys):
        assert main(["suite", "--ni", "13", "--nt", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "suite"
        assert payload["config"] == {
            "ni": 13, "nt": 3, "untainting": True, "vectorized": True,
        }
        report = payload["report"]
        assert report["total"] == 57
        assert 0.0 <= report["accuracy"] <= 1.0

    def test_analyze_metrics_dump_prom(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.pift.gz")
        assert main(["trace", trace_path, "--work", "16"]) == 0
        capsys.readouterr()
        assert main(["analyze", trace_path, "--metrics-dump", "prom"]) == 0
        out = capsys.readouterr().out
        assert "pift_tracker_events_total" in out

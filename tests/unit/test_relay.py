"""Tests for the cross-process telemetry relay and the flight recorder.

Covers the wire format (metric deltas and merging), the worker-side
client's never-block/drop-count contract under a deliberately tiny
queue, the stall detector against a fake clock, Chrome trace export and
validation, and the headline parity guarantee: a telemetered ``jobs=4``
sweep yields the same grid bytes and the same per-cell span *set* as
``jobs=1``.
"""

import json
import multiprocessing
import queue as queue_module

import pytest

from repro.telemetry import (
    FlightRecorder,
    MetricsRegistry,
    StallDetector,
    Telemetry,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.telemetry.relay import (
    RelayClient,
    RelayWriter,
    TelemetryRelay,
    init_worker_telemetry,
    merge_wire,
    registry_wire_delta,
)


def _context():
    method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    return multiprocessing.get_context(method)


class TestWireFormat:
    def test_counter_delta_roundtrip(self):
        worker = MetricsRegistry()
        parent = MetricsRegistry()
        state = {}
        worker.counter("tracker.events").inc(10)
        merge_wire(parent, registry_wire_delta(worker, state))
        worker.counter("tracker.events").inc(5)
        merge_wire(parent, registry_wire_delta(worker, state))
        assert parent.get("tracker.events").value == 15

    def test_untouched_metrics_ship_nothing(self):
        worker = MetricsRegistry()
        state = {}
        worker.counter("tracker.events").inc(3)
        assert set(registry_wire_delta(worker, state)) == {"tracker.events"}
        # No mutation since the last delta: empty wire.
        assert registry_wire_delta(worker, state) == {}

    def test_histogram_delta_merges_counts(self):
        worker = MetricsRegistry()
        parent = MetricsRegistry()
        state = {}
        hist = worker.histogram("span.sweep.cell", buckets=(0.1, 1.0))
        hist.observe(0.05)
        merge_wire(parent, registry_wire_delta(worker, state))
        hist.observe(2.0)
        merge_wire(parent, registry_wire_delta(worker, state))
        merged = parent.get("span.sweep.cell")
        assert merged.count == 2
        assert merged.counts == [1, 0, 1]
        assert merged.min == 0.05
        assert merged.max == 2.0

    def test_gauge_lands_as_worker_labelled_series(self):
        worker = MetricsRegistry()
        parent = MetricsRegistry()
        worker.gauge("tracker.tainted_bytes").set(64)
        merge_wire(parent, registry_wire_delta(worker, {}), worker_id=3)
        series = parent.get("tracker.tainted_bytes", {"worker_id": "3"})
        assert series.value == 64
        assert parent.get("tracker.tainted_bytes") is None

    def test_labelled_counter_keeps_labels(self):
        worker = MetricsRegistry()
        parent = MetricsRegistry()
        worker.counter("sweep.cells", labels={"kind": "fast"}).inc(2)
        merge_wire(parent, registry_wire_delta(worker, {}))
        assert parent.get("sweep.cells", {"kind": "fast"}).value == 2


class TestRelayClient:
    def test_batches_until_max_batch(self):
        channel = queue_module.Queue()
        client = RelayClient(channel, worker_id=1, max_batch=3)
        client.emit_record({"type": "span"})
        client.emit_record({"type": "span"})
        assert channel.empty()
        client.emit_record({"type": "span"})
        message = channel.get_nowait()
        assert message["kind"] == "events"
        assert len(message["events"]) == 3
        assert message["worker_id"] == 1

    def test_full_queue_drops_and_counts_instead_of_blocking(self):
        channel = queue_module.Queue(maxsize=1)
        channel.put_nowait({"kind": "occupied"})  # jam the queue
        client = RelayClient(channel, worker_id=2, max_batch=2)
        for _ in range(6):
            client.emit_record({"type": "span"})
        assert client.dropped_events == 6
        assert client.dropped_messages == 3
        assert client.sent_messages == 0
        # The cumulative drop count rides every later message.
        channel.get_nowait()  # unjam
        client.heartbeat()
        assert channel.get_nowait()["dropped"] == 6

    def test_snapshot_flushes_pending_events_first(self):
        channel = queue_module.Queue()
        client = RelayClient(channel, worker_id=1, max_batch=64)
        registry = MetricsRegistry()
        registry.counter("tracker.events").inc(4)
        client.emit_record({"type": "span"})
        client.ship_snapshot(registry, cell_index=7)
        first = channel.get_nowait()
        second = channel.get_nowait()
        assert first["kind"] == "events"
        assert second["kind"] == "snapshot"
        assert second["cell_index"] == 7
        assert second["metrics"]["tracker.events"]["inc"] == 4

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            RelayClient(queue_module.Queue(), worker_id=1, max_batch=0)


class TestRelayWriter:
    def test_ships_only_whitelisted_types(self):
        channel = queue_module.Queue()
        client = RelayClient(channel, worker_id=1, max_batch=1)
        writer = RelayWriter(client)
        writer.emit("taint", index=1)  # per-mutation noise: filtered
        writer.emit("cpu_batch", n=64)
        assert channel.empty()
        writer.emit("span", name="sweep.cell", duration_us=5.0)
        message = channel.get_nowait()
        assert [event["type"] for event in message["events"]] == ["span"]

    def test_stamps_worker_and_current_cell(self):
        channel = queue_module.Queue()
        client = RelayClient(channel, worker_id=4, max_batch=1)
        client.current_cell = 11
        writer = RelayWriter(client)
        writer.emit("span", name="sweep.cell")
        record = channel.get_nowait()["events"][0]
        assert record["worker_id"] == 4
        assert record["cell_index"] == 11
        assert record["mono"] > 0


class TestStallDetector:
    def test_quiet_worker_with_active_cell_stalls_once(self):
        detector = StallDetector(timeout=1.0)
        detector.note(1, now=0.0, cell_index=5)
        assert detector.check(now=0.5) == []
        assert detector.check(now=2.0) == [(1, 5, 2.0)]
        # Still quiet: not re-reported until it recovers.
        assert detector.check(now=3.0) == []

    def test_idle_worker_never_stalls(self):
        detector = StallDetector(timeout=1.0)
        detector.note(1, now=0.0, cell_index=None)
        assert detector.check(now=10.0) == []

    def test_recovery_rearms(self):
        detector = StallDetector(timeout=1.0)
        detector.note(1, now=0.0, cell_index=5)
        assert detector.check(now=2.0)
        assert detector.note(1, now=2.1, cell_index=6) is True  # recovered
        assert detector.check(now=2.5) == []
        assert detector.check(now=4.0) == [(1, 6, pytest.approx(1.9))]

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            StallDetector(timeout=0)


class TestTelemetryRelayHandle:
    """Parent-side message handling, driven directly (no drain thread)."""

    def _relay(self, **kwargs):
        recorder = FlightRecorder()
        telemetry = Telemetry(writer=recorder)
        relay = TelemetryRelay(telemetry, _context(), **kwargs)
        return relay, telemetry, recorder

    def test_events_re_emit_into_parent_hub(self):
        relay, _, recorder = self._relay()
        relay._handle(
            {
                "kind": "events",
                "worker_id": 2,
                "pid": 4242,
                "dropped": 0,
                "events": [
                    {"type": "span", "name": "sweep.cell", "worker_id": 2,
                     "cell_index": 3, "mono": 1.0, "duration_us": 9.0},
                ],
            }
        )
        assert relay.events_merged == 1
        record = recorder.records[-1]
        assert record["type"] == "span"
        assert record["cell_index"] == 3
        assert record["pid"] == 4242

    def test_snapshot_merges_metrics(self):
        relay, telemetry, _ = self._relay()
        worker = MetricsRegistry()
        worker.counter("tracker.events").inc(8)
        relay._handle(
            {
                "kind": "snapshot", "worker_id": 1, "pid": 1, "dropped": 0,
                "cell_index": 0,
                "metrics": registry_wire_delta(worker, {}),
            }
        )
        assert telemetry.metrics.get("tracker.events").value == 8

    def test_stop_publishes_relay_accounting(self):
        relay, telemetry, recorder = self._relay()
        relay._handle(
            {"kind": "heartbeat", "worker_id": 1, "pid": 10, "dropped": 4,
             "cell_index": None, "mono": 0.0}
        )
        relay.stop()
        metrics = telemetry.metrics
        assert metrics.get("sweep.relay.heartbeats").value == 1
        assert metrics.get("sweep.relay.dropped_events").value == 4
        summary = [r for r in recorder.records
                   if r["type"] == "relay_summary"][-1]
        assert summary["dropped_events"] == 4
        assert summary["workers"] == 1

    def test_on_heartbeat_hook_receives_the_pid(self):
        """The queue backend renews leases off relay heartbeats."""
        beats = []
        relay, _, _ = self._relay(on_heartbeat=beats.append)
        relay._handle(
            {"kind": "heartbeat", "worker_id": 1, "pid": 777,
             "dropped": 0, "cell_index": 2, "mono": 0.0}
        )
        relay._handle(
            {"kind": "events", "worker_id": 1, "pid": 777, "dropped": 0,
             "events": []}
        )
        assert beats == [777]  # only heartbeats renew, not event batches

    def test_stall_counter_is_sweep_worker_stalls(self):
        import time

        relay, telemetry, _ = self._relay(stall_timeout=0.001)
        relay._handle(
            {"kind": "heartbeat", "worker_id": 1, "pid": 10,
             "dropped": 0, "cell_index": 3, "mono": 0.0}
        )
        time.sleep(0.01)
        relay._check_stalls()
        assert telemetry.metrics.get("sweep.worker.stalls").value == 1

    def test_dropped_counts_keep_high_water_per_worker(self):
        relay, _, _ = self._relay()
        for dropped in (5, 3):  # late message with a stale lower count
            relay._handle(
                {"kind": "heartbeat", "worker_id": 1, "pid": 1,
                 "dropped": dropped, "cell_index": None, "mono": 0.0}
            )
        assert relay.dropped == {1: 5}


class TestWorkerBootstrap:
    def test_worker_ids_are_sequential_and_hub_ships_spans(self):
        relay = TelemetryRelay(
            Telemetry(writer=FlightRecorder()), _context(),
            heartbeat_interval=0,  # no daemon thread in-process
        )
        payload = relay.worker_payload()
        first = init_worker_telemetry(payload)
        second = init_worker_telemetry(payload)
        assert first.relay_client.worker_id == 1
        assert second.relay_client.worker_id == 2
        with first.span("sweep.cell", cell_index=0):
            pass
        first.writer.flush()
        kinds = []
        for _ in range(4):
            try:
                kinds.append(relay.queue.get(timeout=2.0)["kind"])
            except queue_module.Empty:
                break
        assert "events" in kinds  # worker_start + the span shipped
        assert "heartbeat" in kinds


class TestTraceFormat:
    def _records(self):
        return [
            {"type": "worker_start", "mono": 1.0, "worker_id": 1,
             "pid": 100},
            {"type": "span", "name": "sweep.cell", "mono": 2.0,
             "duration_us": 5e5, "worker_id": 1, "cell_index": 0},
            {"type": "sweep_done", "mono": 2.5, "cells": 1},
        ]

    def test_chrome_trace_structure(self):
        document = to_chrome_trace(self._records(), run_id="run-7")
        summary = validate_chrome_trace(document)
        assert summary["spans"] == 1
        assert summary["instants"] == 2
        assert set(summary["tids"]) == {0, 1}
        span = [e for e in document["traceEvents"] if e["ph"] == "X"][0]
        assert span["name"] == "sweep.cell"
        assert span["tid"] == 1
        assert span["args"]["cell_index"] == 0
        assert span["dur"] == pytest.approx(5e5)
        names = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {"parent", "worker-1 (pid 100)"}
        assert document["otherData"]["run_id"] == "run-7"

    def test_trace_round_trips_json(self):
        document = to_chrome_trace(self._records())
        assert validate_chrome_trace(json.dumps(document))["events"] == 3

    def test_validator_rejects_malformed_documents(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"foo": 1})
        with pytest.raises(ValueError, match="non-empty"):
            validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ValueError, match="missing"):
            validate_chrome_trace({"traceEvents": [{"name": "x"}]})
        good = {"name": "x", "ph": "i", "s": "t", "ts": 5, "pid": 1, "tid": 0}
        backwards = dict(good, ts=1)
        with pytest.raises(ValueError, match="backwards"):
            validate_chrome_trace({"traceEvents": [good, backwards]})

    def test_flight_recorder_is_writer_shaped(self, tmp_path):
        recorder = FlightRecorder()
        recorder.emit("span", name="x", duration_us=1.0)
        recorder.emit("heartbeat", worker_id=2, mono=123.0)
        assert recorder.records[1]["mono"] == 123.0  # relayed stamp kept
        path = tmp_path / "stream.jsonl"
        count = recorder.dump_jsonl(path, extra=[{"type": "run_metrics"}])
        assert count == 3
        lines = path.read_text().splitlines()
        assert json.loads(lines[-1]) == {"type": "run_metrics"}


class TestSweepRelayParity:
    """Telemetry is observational: grids stay bit-identical at any jobs."""

    @pytest.fixture(scope="class")
    def cache(self):
        from repro.sweep import TraceCache

        cache = TraceCache(droidbench=TraceCache().droidbench_runs()[:6])
        cache.prime_replay_state()
        return cache

    def _sweep(self, cache, jobs, telemetry=None):
        from repro.sweep import GridSpec, run_sweep

        spec = GridSpec(window_sizes=(5, 13), propagation_caps=(2, 3),
                        rates=(0.0,), seed=3)
        return run_sweep(spec, cache=cache, jobs=jobs, telemetry=telemetry)

    @staticmethod
    def _cell_spans(recorder):
        return [r for r in recorder.records
                if r["type"] == "span" and r["name"] == "sweep.cell"]

    def test_grid_and_span_set_parity_serial_vs_parallel(self, cache):
        serial_recorder = FlightRecorder()
        parallel_recorder = FlightRecorder()
        plain = self._sweep(cache, jobs=1)
        serial = self._sweep(
            cache, jobs=1, telemetry=Telemetry(writer=serial_recorder)
        )
        parallel = self._sweep(
            cache, jobs=4, telemetry=Telemetry(writer=parallel_recorder)
        )
        # Bit-identical grids: telemetry off == on, jobs=1 == jobs=4.
        documents = [
            json.dumps(result.as_dict(), sort_keys=True)
            for result in (plain, serial, parallel)
        ]
        assert documents[0] == documents[1] == documents[2]
        # Same per-cell span set, order-independent.
        serial_spans = self._cell_spans(serial_recorder)
        parallel_spans = self._cell_spans(parallel_recorder)
        key = lambda span: (span["cell_index"], span["ni"], span["nt"])
        assert sorted(key(s) for s in serial_spans) == sorted(
            key(s) for s in parallel_spans
        )
        assert len(parallel_spans) == 4
        # The relayed spans actually came from pool workers.
        workers = {span["worker_id"] for span in parallel_spans}
        assert workers and 0 not in workers
        assert len(workers) >= 2

    def test_parallel_metrics_match_serial_totals(self, cache):
        serial_hub = Telemetry()
        parallel_hub = Telemetry()
        self._sweep(cache, jobs=1, telemetry=serial_hub)
        self._sweep(cache, jobs=4, telemetry=parallel_hub)
        for name in ("tracker.events", "tracker.loads", "tracker.stores",
                     "sweep.cells", "sweep.events_tracked"):
            assert (
                parallel_hub.metrics.get(name).value
                == serial_hub.metrics.get(name).value
            ), name
        serial_spans = serial_hub.metrics.get("span.sweep.cell")
        parallel_spans = parallel_hub.metrics.get("span.sweep.cell")
        assert serial_spans.count == parallel_spans.count == 4

    def test_per_worker_duration_series(self, cache):
        hub = Telemetry()
        result = self._sweep(cache, jobs=1, telemetry=hub)
        aggregate = hub.metrics.get("sweep.cell.duration_seconds")
        assert aggregate.count == 4
        pid = str(result.cells[0].worker)
        labelled = hub.metrics.get(
            "sweep.cell.duration_seconds", {"worker_id": pid}
        )
        assert labelled is not None
        assert labelled.count == 4  # serial: one worker did everything


class TestRunReport:
    def test_report_joins_journal_and_stream(self, tmp_path):
        from repro.analysis.report import build_run_report, render_run_report
        from repro.sweep import GridSpec, TraceCache, run_sweep
        from repro.store import RunJournal

        cache = TraceCache(droidbench=TraceCache().droidbench_runs()[:4])
        cache.prime_replay_state()
        spec = GridSpec(window_sizes=(5, 13), propagation_caps=(2,))
        cells = list(spec.cells())
        journal = RunJournal.create(tmp_path / "run-0.jsonl", cells, "run-0")
        recorder = FlightRecorder()
        telemetry = Telemetry(writer=recorder)
        run_sweep(cells, cache=cache, jobs=2, telemetry=telemetry,
                  journal=journal)

        records = list(recorder.records) + [
            {"type": "run_metrics", "metrics": telemetry.snapshot()}
        ]
        report = build_run_report(journal, records, slowest=1)
        assert report["run_id"] == "run-0"
        assert report["cells_completed"] == 2
        assert report["wall_seconds"] > 0
        assert len(report["per_cell"]) == 2
        assert len(report["slowest_cells"]) == 1
        assert sum(w["cells"] for w in report["per_worker"].values()) == 2
        for worker in report["per_worker"].values():
            assert 0 < worker["utilization"] <= 1.0
        assert report["telemetry"]["cell_spans"] == 2
        assert report["telemetry"]["dropped_events"] == 0

        text = render_run_report(report)
        assert "run run-0" in text
        assert "per-worker:" in text
        assert "slowest cells:" in text

    def test_report_surfaces_poison_and_retries(self, tmp_path):
        from repro.analysis.report import build_run_report, render_run_report
        from repro.sweep import GridSpec
        from repro.store import RunJournal

        spec = GridSpec(window_sizes=(5, 13), propagation_caps=(2,))
        cells = list(spec.cells())
        journal = RunJournal.create(tmp_path / "run-2.jsonl", cells, "run-2")
        journal.append_attempt(0, attempt=1, reason="lost")
        journal.append_attempt(0, attempt=2, reason="lost")
        journal.append_poison(0, attempts=3, error="RuntimeError: boom")

        report = build_run_report(journal)
        assert report["cells_poisoned"] == 1
        assert report["poisoned"] == [
            {"index": 0, "attempts": 3, "error": "RuntimeError: boom"}
        ]
        assert report["retried_cells"] == {"0": 2}

        text = render_run_report(report)
        assert "(1 poisoned)" in text
        assert "poisoned: cell 0 after 3 attempts (RuntimeError: boom)" in text
        assert "retries: 2 across cells 0" in text

    def test_report_without_telemetry_stream(self, tmp_path):
        from repro.analysis.report import build_run_report
        from repro.sweep import GridSpec, TraceCache, run_sweep
        from repro.store import RunJournal

        cache = TraceCache(droidbench=TraceCache().droidbench_runs()[:4])
        spec = GridSpec(window_sizes=(5,), propagation_caps=(2,))
        cells = list(spec.cells())
        journal = RunJournal.create(tmp_path / "run-1.jsonl", cells, "run-1")
        run_sweep(cells, cache=cache, journal=journal)
        report = build_run_report(journal)
        assert report["wall_seconds"] is None
        assert report["telemetry"] is None
        assert report["per_worker"]

"""Unit tests for the mterp translator: Table 1 distances and routine shape."""

import pytest

from repro.core.events import AccessKind
from repro.dalvik.bytecode import Instr, OPCODES, opcode
from repro.dalvik.translator import MterpTranslator
from repro.analysis.bytecode_stats import routine_for

TRANSLATOR = MterpTranslator()

KNOWN = [info for info in OPCODES if info.moves_data and info.load_store_distance is not None]
UNKNOWN = [info for info in OPCODES if info.moves_data and info.load_store_distance is None]


@pytest.mark.parametrize("info", KNOWN, ids=lambda i: i.name)
def test_routine_distance_matches_table1(info):
    """Every data-moving bytecode's routine measures to its Table 1 value."""
    routine = routine_for(info, TRANSLATOR)
    assert routine is not None, info.name
    assert routine.load_store_distance == info.load_store_distance


@pytest.mark.parametrize("info", UNKNOWN, ids=lambda i: i.name)
def test_helper_backed_routines_are_long(info):
    """'Unknown'-distance bytecodes run through ABI helpers: distance >= 10,
    consistent with the paper's GPS-needs-NI>=10 finding."""
    routine = routine_for(info, TRANSLATOR)
    assert routine is not None, info.name
    assert routine.load_store_distance is not None
    assert routine.load_store_distance >= 10


class TestFigure8Layout:
    """binop/2addr translates to the paper's Figure 8 structure."""

    def test_mul_int_2addr_shape(self):
        routine = TRANSLATOR.binop_2addr_int(
            Instr(opcode("mul-int/2addr"), a=3, b=4)
        )
        mnemonics = [i.mnemonic for i in routine.instructions]
        assert mnemonics == [
            "mov",  # r3 <- B
            "ubfx",  # r9 <- A
            "ldr",  # GET_VREG(r1, r3)
            "ldr",  # GET_VREG(r0, r9)
            "ldrh",  # FETCH_ADVANCE_INST
            "mul",  # the op
            "and",  # GET_INST_OPCODE
            "str",  # SET_VREG
            "add",  # GOTO_OPCODE
        ]
        assert routine.load_store_distance == 5

    def test_get_vreg_addresses_scale_by_four(self):
        # GET_VREG must be ldr rX, [rFP, vN, lsl #2].
        routine = TRANSLATOR.binop_2addr_int(Instr(opcode("add-int/2addr"), a=1, b=2))
        load = routine.instructions[routine.data_load_index]
        assert load.mnemonic == "ldr"
        assert load.address.base == 5  # rFP
        assert load.address.offset.shift_amount == 2


class TestControlRoutines:
    def test_if_test_has_no_stores(self):
        routine = TRANSLATOR.if_test(Instr(opcode("if-eq"), a=1, b=2))
        assert all(i.mnemonic[:3] != "str" for i in routine.instructions)

    def test_goto_is_single_marker(self):
        routine = TRANSLATOR.goto(Instr(opcode("goto"), symbol="x"))
        assert len(routine.instructions) == 1

    def test_refetch_reloads_rinst(self):
        routine = TRANSLATOR.refetch()
        assert routine.instructions[0].mnemonic == "ldrh"

    def test_sparse_switch_scales_with_comparisons(self):
        instr = Instr(opcode("sparse-switch"), a=1, keys=(1, 2, 3), targets=("a", "b", "c"))
        short = TRANSLATOR.sparse_switch(instr, 0x40000000, comparisons=1)
        long = TRANSLATOR.sparse_switch(instr, 0x40000000, comparisons=3)
        assert len(long.instructions) - len(short.instructions) == 6

    def test_throw_stores_to_exception_slot(self):
        routine = TRANSLATOR.throw(Instr(opcode("throw"), a=1))
        assert routine.load_store_distance == 1
        store = routine.instructions[routine.data_store_index]
        assert store.address.base == 6  # rSELF


class TestInvokePlumbing:
    def test_arg_copies_have_distance_one(self):
        routine = TRANSLATOR.invoke_arg_copies([3, 4, 5])
        loads = [i for i, ins in enumerate(routine.instructions) if ins.mnemonic == "ldr"]
        stores = [i for i, ins in enumerate(routine.instructions) if ins.mnemonic == "str"]
        assert len(loads) == len(stores) == 3
        for load, store in zip(loads, stores):
            assert store - load == 1

    def test_frame_push_saves_rpc_and_rfp(self):
        routine = TRANSLATOR.frame_push(0x41000100)
        stores = [i for i in routine.instructions if i.mnemonic == "str"]
        assert len(stores) == 2
        assert {s.rd for s in stores} == {4, 5}  # rPC, rFP

    def test_frame_pop_restores_them(self):
        routine = TRANSLATOR.frame_pop()
        loads = [i for i in routine.instructions if i.mnemonic == "ldr"]
        assert {l.rd for l in loads} == {4, 5}


class TestEventKinds:
    def test_return_routine_events(self):
        from repro.isa.cpu import CPU

        cpu = CPU()
        cpu.registers["rFP"] = 0x41000000
        cpu.registers["rSELF"] = 0x60000000
        cpu.registers["rINST"] = opcode("return").value | (2 << 8)
        routine = TRANSLATOR.return_value(Instr(opcode("return"), a=2))
        kinds = []
        for instruction in routine.instructions:
            record = instruction.execute(cpu)
            kinds.append(record.kind)
        assert kinds == [None, AccessKind.LOAD, AccessKind.STORE]

"""Unit tests for the HW module, front end, and the Figure 3 software stack."""

import pytest

from repro.core.config import PIFTConfig
from repro.core.events import AccessKind
from repro.core.hw import (
    Command,
    CommandRequest,
    PIFTFrontEnd,
    PIFTHardwareModule,
)
from repro.core.manager import PIFTManager
from repro.core.module import PIFTKernelModule
from repro.core.native import AddressTranslationError, PIFTNative
from repro.core.ranges import AddressRange


def make_stack(ni=5, nt=2):
    hw = PIFTHardwareModule(PIFTConfig(window_size=ni, max_propagations=nt))
    module = PIFTKernelModule(hw)
    native = PIFTNative(module)
    manager = PIFTManager(native)
    return hw, module, native, manager


class FakeString:
    """Stand-in for a VM heap value with a known backing range."""

    def __init__(self, base, size):
        self.base = base
        self.size = size


def fake_translator(value):
    return [AddressRange.from_base_size(value.base, value.size)]


class TestHardwareModuleCommands:
    def test_register_then_check(self):
        hw, *_ = make_stack()
        r = AddressRange(0x100, 0x10F)
        assert hw.execute(CommandRequest(Command.REGISTER, address_range=r)).ok
        response = hw.execute(CommandRequest(Command.CHECK, address_range=r))
        assert response.ok and response.tainted

    def test_check_clean_range(self):
        hw, *_ = make_stack()
        response = hw.execute(
            CommandRequest(Command.CHECK, address_range=AddressRange(0, 3))
        )
        assert response.ok and not response.tainted

    def test_register_without_range_fails(self):
        hw, *_ = make_stack()
        assert not hw.execute(CommandRequest(Command.REGISTER)).ok

    def test_configure_updates_parameters(self):
        hw, *_ = make_stack(ni=5, nt=2)
        hw.execute(
            CommandRequest(Command.CONFIGURE, window_size=13, max_propagations=3)
        )
        assert hw.config.window_size == 13
        assert hw.config.max_propagations == 3

    def test_configure_partial_keeps_other_parameter(self):
        hw, *_ = make_stack(ni=5, nt=2)
        hw.execute(CommandRequest(Command.CONFIGURE, window_size=9))
        assert hw.config.window_size == 9
        assert hw.config.max_propagations == 2


class TestFrontEnd:
    def test_counts_all_instructions(self):
        hw, *_ = make_stack()
        fe = PIFTFrontEnd(hw)
        fe.on_instruction()  # non-memory
        fe.on_instruction()  # non-memory
        idx = fe.on_instruction(AccessKind.LOAD, AddressRange(0x100, 0x103))
        assert idx == 2
        assert fe.instruction_count() == 3

    def test_memory_instruction_requires_range(self):
        hw, *_ = make_stack()
        fe = PIFTFrontEnd(hw)
        with pytest.raises(ValueError):
            fe.on_instruction(AccessKind.LOAD)

    def test_per_process_counters(self):
        hw, *_ = make_stack()
        fe = PIFTFrontEnd(hw)
        fe.context_switch(1)
        fe.on_instruction()
        fe.on_instruction()
        fe.context_switch(2)
        fe.on_instruction()
        assert fe.instruction_count(1) == 2
        assert fe.instruction_count(2) == 1

    def test_events_reach_tracker_with_pid(self):
        hw, *_ = make_stack(ni=5, nt=2)
        fe = PIFTFrontEnd(hw)
        fe.context_switch(7)
        hw.execute(
            CommandRequest(
                Command.REGISTER, pid=7, address_range=AddressRange(0x100, 0x103)
            )
        )
        fe.on_instruction(AccessKind.LOAD, AddressRange(0x100, 0x103))
        fe.on_instruction(AccessKind.STORE, AddressRange(0x200, 0x203))
        tainted = hw.execute(
            CommandRequest(
                Command.CHECK, pid=7, address_range=AddressRange(0x200, 0x203)
            )
        ).tainted
        assert tainted


class TestKernelModule:
    def test_leak_event_emitted_on_tainted_sink(self):
        hw, module, *_ = make_stack()
        seen = []
        module.subscribe(seen.append)
        r = AddressRange(0x100, 0x103)
        module.register_range(r)
        assert module.check_range(r, sink_description="sendTextMessage")
        assert len(seen) == 1
        assert seen[0].sink_description == "sendTextMessage"
        assert module.leak_events == seen

    def test_no_event_on_clean_sink(self):
        hw, module, *_ = make_stack()
        assert not module.check_range(AddressRange(0x900, 0x903))
        assert not module.leak_events

    def test_configure_passthrough(self):
        hw, module, *_ = make_stack()
        module.configure(window_size=18, max_propagations=3)
        assert hw.config.window_size == 18


class TestNativeTranslation:
    def test_register_and_check_value(self):
        hw, module, native, _ = make_stack()
        native.register_translator(FakeString, fake_translator)
        imei = FakeString(0x3000, 30)
        native.register_value(imei)
        assert native.check_value(imei)

    def test_translator_resolved_via_mro(self):
        class SubString(FakeString):
            pass

        hw, module, native, _ = make_stack()
        native.register_translator(FakeString, fake_translator)
        assert native.translate(SubString(0x100, 4)) == [AddressRange(0x100, 0x103)]

    def test_unknown_type_raises(self):
        hw, module, native, _ = make_stack()
        with pytest.raises(AddressTranslationError):
            native.translate(object())


class TestManager:
    def test_source_to_sink_detection(self):
        hw, module, native, manager = make_stack()
        native.register_translator(FakeString, fake_translator)
        imei = FakeString(0x3000, 30)
        manager.register_source("TelephonyManager.getDeviceId", imei)
        assert manager.check_sink("SmsManager.sendTextMessage", imei)
        assert manager.leak_detected
        assert manager.sources_registered[0].source_name == (
            "TelephonyManager.getDeviceId"
        )
        assert manager.sink_reports[0].tainted

    def test_clean_sink_reports_untainted(self):
        hw, module, native, manager = make_stack()
        native.register_translator(FakeString, fake_translator)
        manager.register_source("source", FakeString(0x3000, 30))
        assert not manager.check_sink("sink", FakeString(0x8000, 30))
        assert not manager.leak_detected

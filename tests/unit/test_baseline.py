"""Unit tests for the full register-level DIFT baseline."""

import pytest

from repro.core.ranges import AddressRange
from repro.isa import asm
from repro.isa.cpu import CPU, FullTraceRecorder
from repro.baseline import FullDIFTTracker


@pytest.fixture
def cpu():
    return CPU()


def run_tracked(cpu, instructions, tainted_ranges):
    recorder = FullTraceRecorder()
    cpu.add_observer(recorder)
    tracker = FullDIFTTracker()
    for r in tainted_ranges:
        tracker.taint_source(r)
    cpu.run(instructions)
    tracker.run(recorder.records)
    return tracker


class TestRegisterPropagation:
    def test_load_taints_register_store_taints_memory(self, cpu):
        cpu.registers["r1"] = 0x1000
        cpu.registers["r2"] = 0x2000
        tracker = run_tracked(
            cpu,
            [asm.ldr("r0", "r1"), asm.str_("r0", "r2")],
            [AddressRange(0x1000, 0x1003)],
        )
        assert tracker.check(AddressRange(0x2000, 0x2003))

    def test_alu_propagates_through_registers(self, cpu):
        cpu.registers["r1"] = 0x1000
        cpu.registers["r2"] = 0x2000
        tracker = run_tracked(
            cpu,
            [
                asm.ldr("r0", "r1"),
                asm.add("r3", "r0", 5),  # r3 derives from tainted r0
                asm.mov("r4", asm.reg("r3")),
                asm.str_("r4", "r2"),
            ],
            [AddressRange(0x1000, 0x1003)],
        )
        assert tracker.check(AddressRange(0x2000, 0x2003))

    def test_clean_overwrite_clears_register(self, cpu):
        cpu.registers["r1"] = 0x1000
        cpu.registers["r2"] = 0x2000
        tracker = run_tracked(
            cpu,
            [
                asm.ldr("r0", "r1"),
                asm.mov("r0", 7),  # constant overwrite: r0 now clean
                asm.str_("r0", "r2"),
            ],
            [AddressRange(0x1000, 0x1003)],
        )
        assert not tracker.check(AddressRange(0x2000, 0x2003))

    def test_clean_store_untaints_memory(self, cpu):
        cpu.registers["r2"] = 0x1000
        tracker = run_tracked(
            cpu,
            [asm.mov("r0", 0), asm.str_("r0", "r2")],
            [AddressRange(0x1000, 0x1003)],
        )
        assert not tracker.check(AddressRange(0x1000, 0x1003))

    def test_arbitrary_distance_tracked_exactly(self, cpu):
        # Unlike PIFT, the baseline follows flows of any length.
        cpu.registers["r1"] = 0x1000
        cpu.registers["r2"] = 0x2000
        program = [asm.ldr("r0", "r1")]
        program += [asm.add("r0", "r0", 1)] * 100  # 100-instruction gap
        program += [asm.str_("r0", "r2")]
        tracker = run_tracked(cpu, program, [AddressRange(0x1000, 0x1003)])
        assert tracker.check(AddressRange(0x2000, 0x2003))

    def test_untainted_flow_stays_clean(self, cpu):
        cpu.registers["r1"] = 0x5000  # clean source
        cpu.registers["r2"] = 0x2000
        tracker = run_tracked(
            cpu,
            [asm.ldr("r0", "r1"), asm.str_("r0", "r2")],
            [AddressRange(0x1000, 0x1003)],
        )
        assert not tracker.check(AddressRange(0x2000, 0x2003))

    def test_patch_instruction_preserves_dataflow(self, cpu):
        cpu.registers["r1"] = 0x1000
        cpu.registers["r2"] = 0x2000
        tracker = run_tracked(
            cpu,
            [
                asm.ldr("r0", "r1"),
                asm.patch("r0", 1234, reads=("r0",), mnemonic="mov"),
                asm.str_("r0", "r2"),
            ],
            [AddressRange(0x1000, 0x1003)],
        )
        assert tracker.check(AddressRange(0x2000, 0x2003))

    def test_address_registers_do_not_carry_data_taint(self, cpu):
        cpu.registers["r1"] = 0x1000
        cpu.registers["r2"] = 0x2000
        tracker = run_tracked(
            cpu,
            [
                asm.ldr("r0", "r1"),  # r0 tainted
                asm.str_("r3", "r2"),  # r3 clean; r2 is just the address
            ],
            [AddressRange(0x1000, 0x1003)],
        )
        assert not tracker.check(AddressRange(0x2000, 0x2003))


class TestCostModel:
    def test_ops_counted_per_instruction(self, cpu):
        cpu.registers["r1"] = 0x1000
        cpu.registers["r2"] = 0x2000
        tracker = run_tracked(
            cpu,
            [
                asm.ldr("r0", "r1"),
                asm.add("r0", "r0", 1),
                asm.nop(),
                asm.str_("r0", "r2"),
            ],
            [AddressRange(0x1000, 0x1003)],
        )
        stats = tracker.stats
        assert stats.instructions_processed == 4
        assert stats.propagation_operations >= 2  # load + alu
        assert stats.memory_taint_operations == 1  # store

    def test_baseline_busier_than_pift(self, cpu):
        """The paper's §2 argument: full tracking works on (almost) every
        instruction, PIFT only on loads and stores."""
        from repro.core import PIFTConfig, PIFTTracker, MemoryAccess

        recorder = FullTraceRecorder()
        pift_events = []

        def pift_observer(record, index, pid):
            if record.is_memory:
                pift_events.append(
                    MemoryAccess(record.kind, record.address_range, index, pid)
                )

        cpu.add_observer(recorder)
        cpu.add_observer(pift_observer)
        cpu.registers["r1"] = 0x1000
        cpu.registers["r2"] = 0x2000
        program = [asm.ldr("r0", "r1")]
        program += [asm.add("r0", "r0", 1), asm.eor("r3", "r0", 7)] * 20
        program += [asm.str_("r0", "r2")]
        cpu.run(program)

        baseline = FullDIFTTracker()
        baseline.taint_source(AddressRange(0x1000, 0x1003))
        baseline.run(recorder.records)
        baseline_ops = (
            baseline.stats.propagation_operations
            + baseline.stats.memory_taint_operations
        )
        # PIFT touches only the 2 memory events; the baseline touched all 42.
        assert len(pift_events) == 2
        assert baseline_ops >= 40

"""Execution coverage for array/field width variants and quick/volatile
accessors — every encodable access path runs end to end."""

import pytest

from repro.isa.cpu import CPU
from repro.dalvik import DalvikVM, MethodBuilder

_COUNTER = [0]


def fresh_name():
    _COUNTER[0] += 1
    return f"W.main{_COUNTER[0]}"


@pytest.fixture
def vm():
    return DalvikVM(CPU())


class TestArrayWidthVariants:
    @pytest.mark.parametrize(
        "kind, class_name, value, expected",
        [
            ("", "[I", 0x12345678, 0x12345678),
            ("-object", "[L", None, None),  # ref roundtrip, value filled below
            ("-boolean", "[Z", 1, 1),
            ("-byte", "[B", 0x7F, 0x7F),
            ("-char", "[C", 0xBEEF, 0xBEEF),
            ("-short", "[S", 0x7FEE, 0x7FEE),
        ],
    )
    def test_aget_aput_roundtrip(self, vm, kind, class_name, value, expected):
        name = fresh_name()
        b = MethodBuilder(name, registers=10)
        b.const(0, 4)
        b.new_array(1, 0, class_name)
        b.const(2, 2)  # index
        if kind == "-object":
            b.const_string(3, "an element")
        else:
            b.const(3, value)
        b.raw(f"aput{kind}", a=3, b=1, c=2)
        b.raw(f"aget{kind}", a=4, b=1, c=2)
        if kind == "-object":
            b.return_object(4)
        else:
            b.return_value(4)
        vm.register_method(b.build())
        result = vm.call(name)
        if kind == "-object":
            assert vm.heap.deref(result).value() == "an element"
        else:
            assert result == expected

    def test_aget_byte_sign_extends(self, vm):
        name = fresh_name()
        b = MethodBuilder(name, registers=10)
        b.const(0, 2)
        b.new_array(1, 0, "[B")
        b.const(2, 0)
        b.const(3, 0xFF)
        b.raw("aput-byte", a=3, b=1, c=2)
        b.raw("aget-byte", a=4, b=1, c=2)
        b.return_value(4)
        vm.register_method(b.build())
        assert vm.call(name) == 0xFFFFFFFF  # -1 sign-extended

    def test_wide_array_roundtrip(self, vm):
        name = fresh_name()
        b = MethodBuilder(name, registers=10)
        b.const(0, 3)
        b.new_array(1, 0, "[J")
        b.const(2, 1)
        b.const_wide(4, 2**45 + 7)
        b.raw("aput-wide", a=4, b=1, c=2)
        b.raw("aget-wide", a=6, b=1, c=2)
        b.return_wide(6)
        vm.register_method(b.build())
        vm.call(name)
        assert vm.retval_wide == 2**45 + 7


class TestFieldAccessVariants:
    @pytest.mark.parametrize(
        "iget_name, iput_name",
        [
            ("iget", "iput"),
            ("iget-boolean", "iput-boolean"),
            ("iget-byte", "iput-byte"),
            ("iget-char", "iput-char"),
            ("iget-short", "iput-short"),
            ("iget-quick", "iput-quick"),
            ("iget-volatile", "iput-volatile"),
        ],
    )
    def test_field_roundtrip_variants(self, vm, iget_name, iput_name):
        class_name = f"W/C{_COUNTER[0]}_{iget_name.replace('-', '_')}"
        vm.heap.define_class(class_name, fields=[("v", 4)])
        name = fresh_name()
        b = MethodBuilder(name, registers=10)
        b.new_instance(1, class_name)
        b.const(2, 77)
        b.raw(iput_name, a=2, b=1, symbol=f"{class_name}.v")
        b.raw(iget_name, a=3, b=1, symbol=f"{class_name}.v")
        b.return_value(3)
        vm.register_method(b.build())
        assert vm.call(name) == 77

    def test_wide_quick_field(self, vm):
        vm.heap.define_class("W/Wide", fields=[("big", 8)])
        name = fresh_name()
        b = MethodBuilder(name, registers=10)
        b.new_instance(1, "W/Wide")
        b.const_wide(2, 2**50 + 3)
        b.raw("iput-wide-quick", a=2, b=1, symbol="W/Wide.big")
        b.raw("iget-wide-quick", a=4, b=1, symbol="W/Wide.big")
        b.return_wide(4)
        vm.register_method(b.build())
        vm.call(name)
        assert vm.retval_wide == 2**50 + 3

    @pytest.mark.parametrize(
        "sget_name, sput_name",
        [
            ("sget", "sput"),
            ("sget-boolean", "sput-boolean"),
            ("sget-char", "sput-char"),
            ("sget-volatile", "sput-volatile"),
        ],
    )
    def test_static_variants(self, vm, sget_name, sput_name):
        name = fresh_name()
        slot = f"W.slot_{sget_name.replace('-', '_')}"
        b = MethodBuilder(name, registers=10)
        b.const(1, 1234)
        b.raw(sput_name, a=1, symbol=slot)
        b.raw(sget_name, a=0, symbol=slot)
        b.return_value(0)
        vm.register_method(b.build())
        assert vm.call(name) == 1234

    def test_static_wide(self, vm):
        name = fresh_name()
        b = MethodBuilder(name, registers=10)
        b.const_wide(0, -(2**40))
        b.raw("sput-wide", a=0, symbol="W.wide_slot")
        b.raw("sget-wide", a=2, symbol="W.wide_slot")
        b.return_wide(2)
        vm.register_method(b.build())
        vm.call(name)
        assert vm.retval_wide == (-(2**40)) & (2**64 - 1)


class TestRemainingOpcodes:
    def test_const_high16(self, vm):
        name = fresh_name()
        b = MethodBuilder(name, registers=6)
        b.raw("const/high16", a=0, literal=0x7F00)
        b.return_value(0)
        vm.register_method(b.build())
        assert vm.call(name) == 0x7F000000

    def test_const_wide_high16(self, vm):
        name = fresh_name()
        b = MethodBuilder(name, registers=6)
        b.raw("const-wide/high16", a=0, literal=0x4030)
        b.return_wide(0)
        vm.register_method(b.build())
        vm.call(name)
        assert vm.retval_wide >> 48 == 0x4030

    def test_monitor_pair(self, vm):
        name = fresh_name()
        b = MethodBuilder(name, registers=6)
        b.new_instance(0, "java/lang/Object")
        b.raw("monitor-enter", a=0)
        b.const(1, 5)
        b.raw("monitor-exit", a=0)
        b.return_value(1)
        vm.register_method(b.build())
        assert vm.call(name) == 5

    def test_goto_16_and_32(self, vm):
        name = fresh_name()
        b = MethodBuilder(name, registers=6)
        b.raw("goto/16", symbol="mid")
        b.const(0, -1)
        b.return_value(0)
        b.label("mid")
        b.raw("goto/32", symbol="end")
        b.const(0, -2)
        b.return_value(0)
        b.label("end")
        b.const(0, 99)
        b.return_value(0)
        vm.register_method(b.build())
        assert vm.call(name) == 99

    def test_cmpl_cmpg_float(self, vm):
        from repro.dalvik import float_to_bits

        name = fresh_name()
        b = MethodBuilder(name, registers=8)
        b.const(1, float_to_bits(2.0))
        b.const(2, float_to_bits(3.0))
        b.raw("cmpl-float", a=0, b=1, c=2)
        b.return_value(0)
        vm.register_method(b.build())
        assert vm.call(name) == 0xFFFFFFFF  # -1: 2.0 < 3.0

    def test_neg_float(self, vm):
        from repro.dalvik import bits_to_float, float_to_bits

        name = fresh_name()
        b = MethodBuilder(name, registers=8)
        b.const(1, float_to_bits(1.5))
        b.raw("neg-float", a=0, b=1)
        b.return_value(0)
        vm.register_method(b.build())
        assert bits_to_float(vm.call(name)) == -1.5

    def test_float_binop_2addr(self, vm):
        from repro.dalvik import bits_to_float, float_to_bits

        name = fresh_name()
        b = MethodBuilder(name, registers=8)
        b.const(0, float_to_bits(2.5))
        b.const(1, float_to_bits(4.0))
        b.raw("mul-float/2addr", a=0, b=1)
        b.return_value(0)
        vm.register_method(b.build())
        assert bits_to_float(vm.call(name)) == 10.0

    def test_long_shift_variants(self, vm):
        name = fresh_name()
        b = MethodBuilder(name, registers=10)
        b.const_wide(0, -(2**40))
        b.const(2, 8)
        b.raw("shr-long", a=4, b=0, c=2)
        b.return_wide(4)
        vm.register_method(b.build())
        vm.call(name)
        raw = vm.retval_wide
        value = raw - 2**64 if raw & (1 << 63) else raw
        assert value == -(2**32)

"""Regenerate the golden trace fixtures (``golden_v2/v3.pift.gz``).

Run from the repo root::

    PYTHONPATH=src python tests/data/make_golden_traces.py

The traces are pure functions of the seeds below.  They exist to freeze
the on-disk format AND the replay semantics: ``test_golden_traces.py``
asserts the exact sink verdicts, instruction counts, and tracker stats
these runs produce, so any change to the tracefile codec, the replay
scheduler, Algorithm 1, or the vectorised kernel that shifts observable
behaviour trips the test.  If a change is *intentional*, re-run this
script and update the expectations in the test.
"""

import gzip
import json
import random
from pathlib import Path

from repro.android.device import RecordedRun, SinkCheck, SourceRegistration
from repro.core.events import EventTrace, load, store
from repro.core.ranges import AddressRange
from repro.analysis import tracefile

HERE = Path(__file__).parent

SCRATCH = 1_000          # small region stores near sources land in
HEAP = 100_000           # wide untainted background region


def _background_event(rng, index, pid):
    base = HEAP + rng.randrange(0, 500_000)
    maker = load if rng.random() < 0.5 else store
    return maker(base, base + rng.choice((0, 3, 7)), index, pid)


def build_v3_run():
    """Two processes, interleaved; taint flows in PID 1, PID 2 stays clean."""
    rng = random.Random(2026)
    run = RecordedRun()
    cursors = {1: 0, 2: 0}
    run.sources.append(
        SourceRegistration(AddressRange(0, 15), 0, "imei", pid=1)
    )
    for i in range(3_000):
        pid = 1 if rng.random() < 0.6 else 2
        cursors[pid] += rng.randint(1, 4)
        index = cursors[pid]
        if pid == 1 and i % 400 == 0:
            # Tainted load from the source, then stores into scratch that
            # fall inside the freshly opened window.
            run.trace.append(load(0, 7, index, pid))
            for k in range(3):
                cursors[pid] += 2
                a = SCRATCH + 16 * ((i // 400) * 3 + k)
                run.trace.append(store(a, a + 7, cursors[pid], pid))
        elif pid == 1 and i % 900 == 899:
            # Wide scratch store: exercises untainting.
            run.trace.append(store(SCRATCH, SCRATCH + 255, index, pid))
        else:
            run.trace.append(_background_event(rng, index, pid))
    final = {p: c + 5 for p, c in cursors.items()}
    for pid, c in final.items():
        run.trace.note_instruction(c, pid=pid)
    run.sink_checks.extend(
        [
            SinkCheck(AddressRange(0, 3), final[1], "network", "socket", pid=1),
            SinkCheck(
                AddressRange(SCRATCH, SCRATCH + 63),
                final[1],
                "network",
                "socket",
                pid=1,
            ),
            SinkCheck(
                AddressRange(HEAP, HEAP + 4_095), final[1], "log", "logcat", pid=1
            ),
            SinkCheck(AddressRange(0, 3), final[2], "network", "socket", pid=2),
            SinkCheck(
                AddressRange(SCRATCH, SCRATCH + 63),
                final[2],
                "network",
                "socket",
                pid=2,
            ),
        ]
    )
    return run


def build_v2_run():
    """Single-process run matching what a version-2 writer could express."""
    rng = random.Random(777)
    run = RecordedRun()
    run.sources.append(
        SourceRegistration(AddressRange(64, 95), 0, "location")
    )
    index = 0
    for i in range(2_000):
        index += rng.randint(1, 3)
        if i % 500 == 0:
            run.trace.append(load(64, 71, index))
            for k in range(2):
                index += 1
                a = SCRATCH + 8 * ((i // 500) * 2 + k)
                run.trace.append(store(a, a + 7, index))
        else:
            run.trace.append(_background_event(rng, index, 0))
    run.trace.note_instruction(index + 3)
    run.sink_checks.extend(
        [
            SinkCheck(AddressRange(64, 67), index + 3, "sms", "sms"),
            SinkCheck(
                AddressRange(SCRATCH, SCRATCH + 31), index + 3, "sms", "sms"
            ),
            SinkCheck(
                AddressRange(HEAP, HEAP + 1_023), index + 3, "log", "logcat"
            ),
        ]
    )
    return run


def build_dense_run():
    """Taint-dense single-process run: Algorithm 1 fires on nearly every
    event (a tainted load every 4th event, 8-byte stores into an already
    tainted working buffer between them).  Nothing is skippable, so this
    freezes the dense *executor* — the numpy window simulation and bulk
    range-set commits — against the scalar loop, byte for byte."""
    rng = random.Random(82_026)
    run = RecordedRun()
    run.sources.append(SourceRegistration(AddressRange(0, 4_095), 0, "imei"))
    run.sources.append(
        SourceRegistration(AddressRange(8_192, 40_959), 0, "buffer")
    )
    index = 0
    for i in range(6_000):
        index += 1
        if i % 4 == 0:
            a = rng.randrange(0, 4_088)
            run.trace.append(load(a, a + 3, index))
        else:
            a = 8_192 + rng.randrange(0, 32_760)
            run.trace.append(store(a, a + 7, index))
    run.trace.note_instruction(index + 1)
    run.sink_checks.extend(
        [
            SinkCheck(AddressRange(8_192, 8_255), index + 1, "network",
                      "socket"),
            SinkCheck(AddressRange(HEAP, HEAP + 63), index + 1, "log",
                      "logcat"),
        ]
    )
    return run


def build_dense_prefix_run():
    """Taint/untaint churn prefix, then a long sparse tail.

    Each prefix triple taints a fresh range in-window then untaints it
    with an out-of-window overlapping store, so every store is a content
    mutation: the dense executor's mutation budget trips and the density
    bail-out engages.  The sparse tail must then re-enter the skip fast
    path via the bounded re-probe.  Freezes the bail-out + re-probe
    control flow end to end."""
    rng = random.Random(47)
    run = RecordedRun()
    run.sources.append(SourceRegistration(AddressRange(0, 15), 0, "imei"))
    index = 0
    for i in range(0, 1_500, 3):
        index += 1
        run.trace.append(load(0, 3, index))
        index += 1
        a = 50_000 + i * 16
        run.trace.append(store(a, a + 3, index))
        index += 20  # jump past NI=13: the overlap store untaints
        run.trace.append(store(a, a + 3, index))
    for _ in range(4_500):
        index += rng.randint(1, 3)
        a = 10_000_000 + rng.randrange(0, 500_000)
        maker = load if rng.random() < 0.5 else store
        run.trace.append(maker(a, a + 3, index))
    run.trace.note_instruction(index + 1)
    run.sink_checks.extend(
        [
            SinkCheck(AddressRange(0, 3), index + 1, "network", "socket"),
            SinkCheck(AddressRange(50_000, 50_063), index + 1, "network",
                      "socket"),
        ]
    )
    return run


def build_colours_run():
    """Multi-source run with *distinct* per-source flows — the coloured
    replay's attribution freeze.

    Three sources leak into three disjoint scratch areas, and a fourth
    area receives in-window stores from imei and location windows at
    different times, so its intervals carry a two-colour mask.  Sinks
    cover: a single-colour hit per flow, the mixed area (two colours on
    one verdict), and a clean heap region (no colours, untainted).  The
    union projection of this run is also frozen through the plain GOLDEN
    table — the same fixture pins both the verdict bits and the labels.
    """
    rng = random.Random(20_262)
    run = RecordedRun()
    area = {"imei": 2_000, "location": 3_000, "phone_number": 4_000}
    mixed = 5_000
    for slot, name in enumerate(area):
        lo = 64 * slot
        run.sources.append(
            SourceRegistration(AddressRange(lo, lo + 31), 0, name)
        )
    index = 0
    for i in range(2_400):
        index += 1
        cycle = i % 300
        if cycle in (0, 100, 200):
            name = list(area)[cycle // 100]
            run.trace.append(load(64 * (cycle // 100), 64 * (cycle // 100) + 7,
                                  index))
            for k in range(2):
                index += 2
                a = area[name] + 16 * ((i // 300) * 2 + k)
                run.trace.append(store(a, a + 7, index))
            # Every flow also drips into the shared mixed area — imei and
            # location only, so its masks settle at exactly two colours.
            if name != "phone_number":
                index += 2
                a = mixed + 16 * ((i // 300) % 8)
                run.trace.append(store(a, a + 7, index))
        else:
            run.trace.append(_background_event(rng, index, 0))
    run.trace.note_instruction(index + 1)
    run.sink_checks.extend(
        [
            SinkCheck(AddressRange(area["imei"], area["imei"] + 63),
                      index + 1, "network", "socket"),
            SinkCheck(AddressRange(area["location"], area["location"] + 63),
                      index + 1, "sms", "sms"),
            SinkCheck(AddressRange(area["phone_number"],
                                   area["phone_number"] + 63),
                      index + 1, "network", "socket"),
            SinkCheck(AddressRange(mixed, mixed + 127), index + 1,
                      "network", "socket"),
            SinkCheck(AddressRange(HEAP, HEAP + 1_023), index + 1,
                      "log", "logcat"),
        ]
    )
    return run


def write_v2(run: RecordedRun, path: Path) -> None:
    """Serialise the way the version-2 writer did: no pid fields at all."""
    document = {
        "format": tracefile.FORMAT_NAME,
        "version": 2,
        "events": tracefile._encode_events(run.trace),
        "sources": [
            {
                "start": s.address_range.start,
                "size": s.address_range.size,
                "index": s.instruction_index,
                "name": s.source_name,
            }
            for s in run.sources
        ],
        "sink_checks": [
            {
                "start": c.address_range.start,
                "size": c.address_range.size,
                "index": c.instruction_index,
                "name": c.sink_name,
                "channel": c.channel,
            }
            for c in run.sink_checks
        ],
    }
    assert "pids" not in document["events"], "v2 fixture must be single-PID"
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))


def main() -> None:
    v3 = build_v3_run()
    tracefile.save_recorded_run(v3, HERE / "golden_v3.pift.gz")
    v2 = build_v2_run()
    write_v2(v2, HERE / "golden_v2.pift.gz")
    dense = build_dense_run()
    tracefile.save_recorded_run(dense, HERE / "golden_dense_v1.pift.gz")
    prefix = build_dense_prefix_run()
    tracefile.save_recorded_run(
        prefix, HERE / "golden_dense_prefix_v1.pift.gz"
    )
    colours = build_colours_run()
    tracefile.save_recorded_run(colours, HERE / "golden_colours_v1.pift.gz")
    for name, run in (
        ("v3", v3), ("v2", v2), ("dense_v1", dense),
        ("dense_prefix_v1", prefix), ("colours_v1", colours),
    ):
        print(
            f"golden_{name}: {len(run.trace)} events, "
            f"{run.instruction_count} instructions, "
            f"{len(run.sources)} sources, {len(run.sink_checks)} checks"
        )


if __name__ == "__main__":
    main()

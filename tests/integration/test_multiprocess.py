"""Integration: one PIFT hardware module shared by multiple processes.

The paper's §3.3 front end tags every event with a process-specific ID
(PID / TTBR) and the taint storage keeps a PID per entry, so one on-chip
module serves the whole system.  Here two independent CPU+VM stacks (two
'processes') feed a single hardware module under different PIDs.
"""

import pytest

from repro.core import (
    Command,
    CommandRequest,
    MemoryAccess,
    PIFTConfig,
    PIFTHardwareModule,
)
from repro.core.ranges import AddressRange
from repro.isa.cpu import CPU
from repro.dalvik import DalvikVM, MethodBuilder, VMString


def make_process(hardware: PIFTHardwareModule, pid: int):
    cpu = CPU()
    cpu.context_switch(pid)
    cpu.add_observer(
        lambda record, index, process: hardware.on_memory_event(
            MemoryAccess(record.kind, record.address_range, index, process)
        )
        if record.is_memory
        else None
    )
    return cpu, DalvikVM(cpu)


def leak_program(vm: DalvikVM, secret_text: str):
    secret = vm.heap.new_string(secret_text)
    builder = MethodBuilder("P.main", registers=10, ins=1)
    builder.const_string(0, "out:")
    builder.invoke("String.concat", 0, 9)
    builder.move_result_object(1)
    builder.return_object(1)
    vm.register_method(builder.build())
    return secret


class TestSharedHardwareModule:
    def test_taint_isolated_by_pid(self):
        hardware = PIFTHardwareModule(PIFTConfig(13, 3))
        cpu1, vm1 = make_process(hardware, pid=1)
        cpu2, vm2 = make_process(hardware, pid=2)

        secret1 = leak_program(vm1, "SECRET-ONE-111")
        secret2 = leak_program(vm2, "public-data-22")
        # Only process 1's string is registered sensitive.
        hardware.execute(
            CommandRequest(
                Command.REGISTER, pid=1, address_range=secret1.data_range()
            )
        )

        out1 = vm1.heap.deref(vm1.call("P.main", [secret1.address]))
        out2 = vm2.heap.deref(vm2.call("P.main", [secret2.address]))

        assert hardware.execute(
            CommandRequest(Command.CHECK, pid=1, address_range=out1.data_range())
        ).tainted
        assert not hardware.execute(
            CommandRequest(Command.CHECK, pid=2, address_range=out2.data_range())
        ).tainted

    def test_same_addresses_different_pids_do_not_collide(self):
        """Two processes use overlapping virtual addresses; the PID tag
        keeps their taint states apart (the Figure 6 lookup condition)."""
        hardware = PIFTHardwareModule(PIFTConfig(5, 2))
        shared_range = AddressRange(0x5000, 0x500F)
        hardware.execute(
            CommandRequest(Command.REGISTER, pid=1, address_range=shared_range)
        )
        assert hardware.execute(
            CommandRequest(Command.CHECK, pid=1, address_range=shared_range)
        ).tainted
        assert not hardware.execute(
            CommandRequest(Command.CHECK, pid=2, address_range=shared_range)
        ).tainted

    def test_per_process_windows_do_not_bleed(self):
        """An open tainting window in one process must not taint stores
        retired by another process (per-process instruction counters)."""
        from repro.core.events import load, store

        hardware = PIFTHardwareModule(PIFTConfig(10, 3))
        hardware.execute(
            CommandRequest(
                Command.REGISTER, pid=1, address_range=AddressRange(0x100, 0x103)
            )
        )
        hardware.on_memory_event(load(0x100, 0x103, 0, pid=1))  # window: pid 1
        hardware.on_memory_event(store(0x200, 0x203, 1, pid=2))  # pid 2 store
        assert not hardware.execute(
            CommandRequest(Command.CHECK, pid=2, address_range=AddressRange(0x200, 0x203))
        ).tainted
        hardware.on_memory_event(store(0x300, 0x303, 2, pid=1))
        assert hardware.execute(
            CommandRequest(Command.CHECK, pid=1, address_range=AddressRange(0x300, 0x303))
        ).tainted

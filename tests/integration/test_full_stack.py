"""Integration: end-to-end properties across the whole stack, including
the paper's §4.2 limitations (native-code evasion) and the full-DIFT
oracle agreement."""

import pytest

from repro.core import PAPER_DEFAULT, PIFTConfig
from repro.core.ranges import AddressRange
from repro.isa import asm
from repro.android import AndroidDevice
from repro.baseline import FullDIFTTracker
from repro.dalvik import MethodBuilder


def paper_example_device(config=PAPER_DEFAULT):
    """The §2 running example: msgZ = msgX + "&imei=" + id + "&dummy"."""
    device = AndroidDevice(config=config, keep_full_trace=True)
    b = MethodBuilder("Paper.main", registers=14)
    b.const_string(0, "type=sms")
    b.invoke_static("TelephonyManager.getDeviceId")
    b.move_result_object(1)
    b.new_instance(2, "java/lang/StringBuilder")
    b.invoke_direct("StringBuilder.<init>", 2)
    b.invoke("StringBuilder.append", 2, 0)
    b.const_string(3, "&imei=")
    b.invoke("StringBuilder.append", 2, 3)
    b.invoke("StringBuilder.append", 2, 1)
    b.const_string(3, "&dummy")
    b.invoke("StringBuilder.append", 2, 3)
    b.invoke("StringBuilder.toString", 2)
    b.move_result_object(4)
    b.const_string(5, "+15557654321")
    b.const(6, 0)
    b.invoke("SmsManager.sendTextMessage", 5, 6, 4)
    b.return_void()
    device.install([b.build()])
    device.run("Paper.main")
    return device


class TestPaperRunningExample:
    def test_detected_and_payload_correct(self):
        device = paper_example_device()
        assert device.leak_detected
        (event,) = device.sinks
        assert event.payload == f"type=sms&imei={device.secrets.imei}&dummy"

    def test_full_dift_oracle_agrees(self):
        device = paper_example_device()
        oracle = FullDIFTTracker()
        for source in device.recorded.sources:
            oracle.taint_source(source.address_range)
        oracle.run(device.full_trace.records)
        for check in device.recorded.sink_checks:
            assert oracle.check(check.address_range)

    def test_oracle_precise_on_message_bytes(self):
        """The byte-exact oracle taints exactly the IMEI's 15 characters of
        the message (30 bytes), not the constant prefix/suffix."""
        device = paper_example_device()
        oracle = FullDIFTTracker()
        for source in device.recorded.sources:
            oracle.taint_source(source.address_range)
        oracle.run(device.full_trace.records)
        check = device.recorded.sink_checks[0].address_range
        message = "type=sms&imei=" + device.secrets.imei + "&dummy"
        imei_start = check.start + 2 * message.index(device.secrets.imei)
        imei_range = AddressRange.from_base_size(imei_start, 2 * 15)
        assert oracle.check(imei_range)
        prefix = AddressRange(check.start, imei_start - 1)
        hits = oracle.memory_taint.overlapping(prefix)
        assert not hits  # constant prefix is byte-exactly clean


class TestNativeEvasion:
    """Paper §4.2: stretching the load->store distance with dummy native
    code between the load and the store defeats PIFT."""

    def _evasion_run(self, dummy_instructions: int):
        device = AndroidDevice(config=PAPER_DEFAULT)
        imei = device.vm.heap.new_string(device.secrets.imei)
        device.manager.register_source("TelephonyManager.getDeviceId", imei)
        stolen = device.vm.heap.new_string_buffer(imei.length)
        stolen.length = imei.length
        cpu = device.cpu
        # JNI-style hand-written native copy with dummy filler.
        for i in range(imei.length):
            cpu.registers["r1"] = imei.char_address(i)
            cpu.execute(asm.ldrh("r0", "r1"))  # tainted load
            for k in range(dummy_instructions):
                cpu.execute(asm.add("r2", "r2", 1))  # dummy computation
            cpu.registers["r3"] = stolen.char_address(i)
            cpu.execute(asm.strh("r0", "r3"))  # the real store
        return device, stolen

    def test_short_native_copy_is_caught(self):
        device, stolen = self._evasion_run(dummy_instructions=2)
        assert device.manager.check_sink("SmsManager.sendTextMessage", stolen)

    def test_long_dummy_blocks_defeat_pift(self):
        device, stolen = self._evasion_run(dummy_instructions=50)
        assert not device.manager.check_sink(
            "SmsManager.sendTextMessage", stolen
        )
        # ... while the byte-exact value really did escape:
        assert stolen.value() == device.secrets.imei


class TestBoundedStorageEndToEnd:
    def test_suite_accuracy_unchanged_with_paper_storage(self):
        """The 32KB cache-of-ranges (spill policy) loses no accuracy."""
        from repro.core.taint_storage import paper_default_storage
        from repro.apps.droidbench import app_by_name

        app = app_by_name("GeneralJava.StringFormatter")
        device = AndroidDevice(
            config=PAPER_DEFAULT, state_factory=paper_default_storage
        )
        device.install(app.build(device))
        device.run(app.entry)
        assert device.leak_detected

    def test_tiny_drop_storage_can_miss(self):
        """A drastically undersized DROP-policy storage loses flows —
        the paper's noted false-negative risk."""
        from repro.core.taint_storage import BoundedRangeCache, EvictionPolicy
        from repro.apps.droidbench import app_by_name

        app = app_by_name("GeneralJava.Loop1")
        device = AndroidDevice(
            config=PAPER_DEFAULT,
            state_factory=lambda: BoundedRangeCache(
                capacity_entries=1, policy=EvictionPolicy.DROP
            ),
        )
        device.install(app.build(device))
        device.run(app.entry)
        assert not device.leak_detected


class TestMultiProcessIsolation:
    def test_two_devices_do_not_share_taint(self):
        device_a = paper_example_device()
        device_b = AndroidDevice()
        b = MethodBuilder("Clean.main", registers=6)
        b.const_string(0, "hello")
        b.const_string(1, "+15550000000")
        b.const(2, 0)
        b.invoke("SmsManager.sendTextMessage", 1, 2, 0)
        b.return_void()
        device_b.install([b.build()])
        device_b.run("Clean.main")
        assert device_a.leak_detected
        assert not device_b.leak_detected

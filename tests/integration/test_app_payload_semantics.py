"""Semantic checks of the suite's sink payloads.

Detection tests ask *whether* PIFT flags an app; these ask whether the VM
executed the app *correctly* — the obfuscated payloads must be the exact
transformations the mini-Java source describes.  This exercises loops,
arithmetic, switches, exceptions, and string machinery end to end.
"""

import pytest

from repro.android import DeviceSecrets
from repro.apps.droidbench import app_by_name, run_app

SECRETS = DeviceSecrets()
IMEI = SECRETS.imei


def payload_of(app_name: str) -> str:
    device = run_app(app_by_name(app_name))
    assert device.sinks, app_name
    return device.sinks[-1].payload


class TestTransformedPayloads:
    def test_string_formatter_is_the_paper_example(self):
        assert payload_of("GeneralJava.StringFormatter") == (
            f"type=sms&imei={IMEI}&dummy"
        )

    def test_loop1_copies_exactly(self):
        assert payload_of("GeneralJava.Loop1") == IMEI

    def test_substring_takes_the_tac_prefix(self):
        assert payload_of("GeneralJava.Substring") == (
            "http://evil.example.com/?tac=" + IMEI[:8]
        )

    def test_integer_encoding_roundtrips_digits(self):
        digits = SECRETS.phone_number[2:8]
        assert payload_of("GeneralJava.IntegerEncoding") == f"num={int(digits)}"

    def test_reverse_string_reverses(self):
        assert payload_of("Misc.ReverseString") == IMEI[::-1]

    def test_xor_obfuscation_encodes_each_char(self):
        expected = "".join(chr(ord(c) ^ 0x2A) for c in IMEI)
        assert payload_of("Misc.XorObfuscation") == expected

    def test_split_reassemble_swaps_halves(self):
        assert payload_of("Misc.SplitReassemble") == (
            "frag=" + IMEI[7:15] + IMEI[:7]
        )

    def test_implicit_flow1_translates_digits_to_letters(self):
        expected = "".join(chr(ord("a") + int(c)) for c in IMEI)
        assert payload_of("ImplicitFlows.ImplicitFlow1") == expected

    def test_implicit_flow2_division_roundtrip_is_identity(self):
        # (c * 7919) / 7919 == c for every char value.
        assert payload_of("ImplicitFlows.ImplicitFlow2") == IMEI

    def test_implicit_flow3_uses_uppercase_alphabet(self):
        expected = "".join(chr(ord("A") + int(c)) for c in IMEI)
        assert payload_of("ImplicitFlows.ImplicitFlow3") == expected

    def test_exception1_carries_the_message(self):
        assert payload_of("GeneralJava.Exception1") == IMEI

    def test_char_array_copy_is_exact(self):
        assert payload_of("Misc.CharArrayCopy") == IMEI

    def test_location_http_formats_both_coordinates(self):
        payload = payload_of("Misc.LocationHTTP")
        assert payload == (
            f"http://geo.example.com/?lat={SECRETS.latitude!r}"
            f"&lon={SECRETS.longitude!r}"
        )

    def test_multi_source_concatenation(self):
        assert payload_of("Misc.MultiSourceLeak") == (
            f"id={IMEI}&num={SECRETS.phone_number}"
        )


class TestBenignPayloads:
    def test_benign_apps_send_exactly_their_clean_strings(self):
        expected = {
            "Aliasing.Merge1": "nothing to see",
            "ArraysAndLists.ArrayAccess1": "public data",
            "ArraysAndLists.ArrayAccess2": "public data",
            "ArraysAndLists.ListAccess1": "clean entry",
            "GeneralJava.Loop2": "public payload",
            "GeneralJava.Exception2": "something went wrong",
            "GeneralJava.UnreachableCode": "all quiet",
            "ImplicitFlows.ImplicitFlow4": "telemetry ping",
            "FieldAndObjectSensitivity.FieldSensitivity1": "model=flagship",
            "FieldAndObjectSensitivity.ObjectSensitivity1": "hello world",
            "Callbacks.CallbackOrdering": "cache dropped",
            "Lifecycle.ActivitySavedState": "default state",
            "Lifecycle.ApplicationLifecycle": "build-2016.04",
            "InterAppCommunication.IntentSink2": "see you at 6",
            "Dispatch.VirtualDispatch2": "dropped",
        }
        for name, payload in expected.items():
            assert payload_of(name) == payload, name

    def test_no_benign_payload_contains_a_secret(self):
        secrets = (
            IMEI, SECRETS.phone_number, SECRETS.sim_serial,
            str(SECRETS.latitude), str(SECRETS.longitude),
        )
        from repro.apps.droidbench import all_apps

        for app in all_apps():
            if app.leaks:
                continue
            device = run_app(app)
            for event in device.sinks:
                for secret in secrets:
                    assert secret not in event.payload, (
                        f"{app.name} ground truth is wrong: "
                        f"benign app sent {secret!r}"
                    )

    def test_every_leaky_payload_contains_a_stolen_secret(self):
        """Ground-truth audit: each leaky app's flagged payload really does
        carry sensitive data (or a deterministic transformation of it —
        covered by the transformation tests above)."""
        from repro.apps.droidbench import all_apps

        direct = (
            IMEI, IMEI[:8], SECRETS.phone_number, SECRETS.sim_serial,
            repr(SECRETS.latitude), repr(SECRETS.longitude),
        )
        transformed = {
            "Misc.ReverseString", "Misc.XorObfuscation",
            "Misc.SplitReassemble", "ImplicitFlows.ImplicitFlow1",
            "ImplicitFlows.ImplicitFlow3", "GeneralJava.IntegerEncoding",
            "Misc.LongDeviceId",
        }
        for app in all_apps():
            if not app.leaks or app.name in transformed:
                continue
            device = run_app(app)
            payloads = " ".join(event.payload for event in device.sinks)
            assert any(secret in payloads for secret in direct), app.name

"""Per-app verdicts at the paper's operating point — one test per app, so
a regression in any single flow idiom is named directly in the report."""

import pytest

from repro.core.config import PAPER_DEFAULT
from repro.analysis.replay import replay
from repro.apps.droidbench import all_apps, record_app

#: The designed single miss at (13, 3).
EXPECTED_MISSES = {"ImplicitFlows.ImplicitFlow2"}


@pytest.fixture(scope="module")
def verdicts():
    results = {}
    for app in all_apps():
        run = record_app(app)
        results[app.name] = (app.leaks, replay(run.recorded, PAPER_DEFAULT).alarm)
    return results


@pytest.mark.parametrize("app", all_apps(), ids=lambda a: a.name)
def test_verdict_at_paper_default(app, verdicts):
    truth, alarm = verdicts[app.name]
    if app.name in EXPECTED_MISSES:
        assert truth and not alarm, (
            f"{app.name} is the designed false negative at (13, 3)"
        )
    else:
        assert alarm == truth, (
            f"{app.name}: expected leak={truth}, PIFT said {alarm}"
        )

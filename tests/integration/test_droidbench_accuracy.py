"""Integration: the paper's §5.1 DroidBench results, end to end.

Headline numbers being reproduced:

* 57 apps (41 leaky, 16 benign),
* 98% accuracy at (NI=13, NT=3): 0% false positives, 2% false negatives
  (exactly one missed app, an obfuscated/implicit flow),
* 100% accuracy at (NI=18, NT=3),
* GPS-leaking apps require NI >= 10,
* no false positives anywhere on the sampled grid.
"""

import pytest

from repro.core.config import PAPER_DEFAULT, PAPER_PERFECT, PIFTConfig
from repro.analysis.accuracy import evaluate_suite
from repro.analysis.replay import replay
from repro.apps.droidbench import all_apps, record_app, record_suite


@pytest.fixture(scope="module")
def suite_runs():
    return record_suite()


@pytest.fixture(scope="module")
def runs_by_name(suite_runs):
    return {run.name: run for run in suite_runs}


class TestSuiteComposition:
    def test_counts_match_paper(self):
        apps = all_apps()
        assert len(apps) == 57
        assert sum(app.leaks for app in apps) == 41
        assert sum(not app.leaks for app in apps) == 16

    def test_names_unique(self):
        names = [app.name for app in all_apps()]
        assert len(names) == len(set(names))

    def test_categories_cover_droidbench(self):
        categories = {app.category for app in all_apps()}
        for expected in (
            "aliasing", "arrays_and_lists", "callbacks", "dispatch",
            "field_object_sensitivity", "general_java", "implicit_flows",
            "inter_app", "lifecycle", "misc",
        ):
            assert expected in categories


class TestHeadlineAccuracy:
    def test_paper_default_98_percent(self, suite_runs):
        report = evaluate_suite(suite_runs, PAPER_DEFAULT)
        assert report.false_positives == 0
        assert report.false_negatives == 1
        assert report.accuracy == pytest.approx(56 / 57)

    def test_single_miss_is_the_obfuscated_flow(self, suite_runs):
        report = evaluate_suite(suite_runs, PAPER_DEFAULT)
        assert report.missed_apps == ["ImplicitFlows.ImplicitFlow2"]

    def test_perfect_at_18_3(self, suite_runs):
        report = evaluate_suite(suite_runs, PAPER_PERFECT)
        assert report.accuracy == 1.0

    def test_accuracy_monotone_in_window(self, suite_runs):
        previous = 0.0
        for window in (1, 2, 5, 10, 13, 18, 20):
            accuracy = evaluate_suite(
                suite_runs, PIFTConfig(window, 3)
            ).accuracy
            assert accuracy >= previous - 1e-9, f"dip at NI={window}"
            previous = accuracy

    def test_no_false_positives_across_grid_sample(self, suite_runs):
        # Paper: "In all experiments, no false positive occurred."
        for window in (1, 5, 10, 13, 18, 20):
            for cap in (1, 3, 10):
                report = evaluate_suite(suite_runs, PIFTConfig(window, cap))
                assert report.false_positives == 0, (window, cap)


class TestGPSWindowRequirement:
    @pytest.mark.parametrize(
        "name",
        ["Callbacks.LocationLeak1", "Callbacks.LocationLeak2", "Misc.LocationHTTP"],
    )
    def test_missed_below_ni_10(self, runs_by_name, name):
        run = runs_by_name[name]
        assert not replay(run.recorded, PIFTConfig(9, 3)).alarm
        assert replay(run.recorded, PIFTConfig(10, 3)).alarm

    def test_gps_needs_multiple_propagations(self, runs_by_name):
        # The digit store is the third store of its window (soft-float
        # scratch spills), so NT must be >= 3 at NI=10.
        run = runs_by_name["Callbacks.LocationLeak1"]
        assert not replay(run.recorded, PIFTConfig(10, 2)).alarm
        assert replay(run.recorded, PIFTConfig(10, 3)).alarm


class TestPerAppWindowHints:
    def test_each_leaky_app_detected_at_its_hint(self, runs_by_name):
        for app in all_apps():
            if not app.leaks or app.min_window_hint is None:
                continue
            run = runs_by_name[app.name]
            config = PIFTConfig(max(app.min_window_hint, 1), 3)
            assert replay(run.recorded, config).alarm, (
                f"{app.name} not detected at NI={app.min_window_hint}"
            )

    def test_each_leaky_app_missed_just_below_its_hint(self, runs_by_name):
        for app in all_apps():
            if not app.leaks or not app.min_window_hint or app.min_window_hint <= 1:
                continue
            run = runs_by_name[app.name]
            config = PIFTConfig(app.min_window_hint - 1, 3)
            assert not replay(run.recorded, config).alarm, (
                f"{app.name} unexpectedly detected at NI={app.min_window_hint - 1}"
            )

    def test_benign_apps_silent_at_large_windows(self, runs_by_name):
        for app in all_apps():
            if app.leaks:
                continue
            run = runs_by_name[app.name]
            assert not replay(run.recorded, PIFTConfig(20, 10)).alarm, app.name


class TestLiveVersusReplay:
    def test_live_device_matches_replay_at_default(self, suite_runs):
        live = {}
        for app in all_apps():
            from repro.apps.droidbench import run_app

            live[app.name] = run_app(app, PAPER_DEFAULT).leak_detected
        for run in suite_runs:
            assert replay(run.recorded, PAPER_DEFAULT).alarm == live[run.name], run.name
